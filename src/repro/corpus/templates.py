"""Concurrency-bug templates.

Each builder assembles a complete application model around one injected
bug from the paper's taxonomy (Figure 1), returning the module, the
developer-verified ground truth, and a seed-indexed workload generator.
App modules instantiate these with their own vocabulary (struct/field/
function names, source files and lines) and add their own cold bulk, so
the 54 corpus bugs share failure *mechanics* without sharing code
shapes.

Two structural rules keep diagnosis faithful to the paper:

* **Fences.** Every target access is followed by a conditional branch
  (as real code always is: status checks, loop conditions).  A branch
  emits a TNT event, which is what lets the decoder close the access's
  time interval at the next timing packet; an access followed by a long
  branch-free delay would float with a huge interval and the partial
  order could not rank it.
* **Benign twins.** Interfering accesses also run on benign paths (a
  shared maintenance routine called at init, clears that land in idle
  phases).  Statistical diagnosis needs "satellite" patterns — shapes
  that embed or neighbour the true one — to occur in successful runs so
  their F1 drops below the root cause's.

Timing design: delays are quantized to the bug's quantum ``q`` so the
gaps between target events in failing interleavings land near
half-integer multiples of ``q`` (0.5q, 1.5q, ...), reproducing the
paper's §3 finding (no gap below ~91 us) while keeping failing and
successful seeds both common.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.appkit import AppProfile, add_cold_code, add_warm_worker
from repro.corpus.registry import EventLocator, GroundTruth
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import I64, LOCK, VOID, ptr

US = 1_000  # ns per us


@dataclass
class BugShape:
    """App vocabulary + timing for one templated bug."""

    profile: AppProfile
    bug_id: str
    file: str  # source file of the buggy code
    struct_name: str
    target_field: str
    aux_field: str
    global_name: str
    worker_name: str  # the victim thread's function
    rival_name: str  # the interfering thread's function
    helper_name: str  # warm (branchy) helper function
    base_line: int
    quantum_us: int  # dT scale (q)
    iters: int = 6
    cold_code: bool = True


def _new_app_module(shape: BugShape) -> tuple[Module, IRBuilder, str]:
    module = Module(f"{shape.profile.name}-{shape.bug_id}")
    b = IRBuilder(module)
    warm = add_warm_worker(
        b, shape.helper_name, shape.profile.main_file, 100 + shape.base_line % 50
    )
    if shape.cold_code:
        add_cold_code(module, b, shape.profile)
    return module, b, warm.name


def _fence(b: IRBuilder) -> None:
    """A status-check branch right after an access (see module docs)."""
    with b.if_then(b.cmp("eq", b.i64(0), 1)):
        pass  # the error path never runs


def _rng(shape: BugShape, seed: int) -> random.Random:
    return random.Random(f"{shape.bug_id}:{seed}")


def _q(shape: BugShape) -> int:
    return shape.quantum_us * US


# ---------------------------------------------------------------------------
# Order violation, WR shape: use-after-free (pbzip2-style)
# ---------------------------------------------------------------------------


def build_use_after_free(shape: BugShape):
    """Main tears down a shared resource while a worker still reads it."""
    m, b, warm = _new_app_module(shape)
    S = m.add_struct(
        shape.struct_name,
        [(shape.target_field, I64), (shape.aux_field, I64), ("guard", LOCK)],
    )
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file

    b.begin_function(shape.worker_name, VOID, [("iters", I64), ("d_iter", I64)])
    i = b.alloca(I64, "i")
    b.call(warm, [b.i64(2)])
    with b.for_range(i, 0, b.param("iters")):
        b.delay(b.param("d_iter"))
        with b.at_location(f, L + 10):
            q = b.load(G, "q")
        h = b.fieldaddr(q, shape.target_field, "h")
        with b.at_location(f, L + 11):
            v = b.load(h, "v")  # R target: crashes once the resource is freed
        ok = b.cmp("ge", v, 0)
        with b.if_then(ok):
            pass
    b.ret()

    b.begin_function("main", VOID, [("d_run", I64), ("iters", I64), ("d_iter", I64)])
    res = b.malloc(S, name="res")
    b.store_field(7, res, shape.target_field)
    b.store_field(1, res, shape.aux_field)
    b.store(res, G)
    _fence(b)
    t = b.spawn(shape.worker_name, [b.param("iters"), b.param("d_iter")], "t")
    j = b.alloca(I64, "j")
    with b.for_range(j, 0, 3) as jv:
        b.call(warm, [jv])
    b.delay(b.param("d_run"))
    q2 = b.load(G, "q2")
    with b.at_location(f, L + 40):
        b.free(q2)  # W target: the premature teardown
    _fence(b)
    b.join(t)
    b.ret()
    m.finalize()

    q = _q(shape)
    d_iter = int(q / 0.65)  # mean gap ~= 0.65 * d_iter = q
    iters = shape.iters

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        k = rng.randint(iters - 3, iters + 1)
        delta = rng.randint(int(0.10 * d_iter), int(0.60 * d_iter))
        return (k * d_iter + delta, iters, d_iter)

    truth = GroundTruth(
        kind="order-violation",
        pattern="WR",
        events=[EventLocator(f, L + 40, "W"), EventLocator(f, L + 11, "R")],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Order violation, RW shape: read-before-init (transmission-style)
# ---------------------------------------------------------------------------


def build_read_before_init(shape: BugShape):
    """A handler thread consumes a shared handle before main publishes it."""
    m, b, warm = _new_app_module(shape)
    S = m.add_struct(
        shape.struct_name, [(shape.target_field, I64), (shape.aux_field, I64)]
    )
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file

    b.begin_function(shape.worker_name, VOID, [("d_poll", I64), ("d_use", I64)])
    b.call(warm, [b.i64(3)])
    b.delay(b.param("d_poll"))
    with b.at_location(f, L + 10):
        p = b.load(G, "p")  # R target: may observe the unpublished null
    _fence(b)
    b.delay(b.param("d_use"))
    c = b.fieldaddr(p, shape.target_field, "c")
    with b.at_location(f, L + 12):
        v = b.load(c, "v")  # deferred crash when p was null
    ok = b.cmp("ge", v, 0)
    with b.if_then(ok):
        pass
    b.ret()

    b.begin_function("main", VOID, [("d_init", I64), ("d_poll", I64), ("d_use", I64)])
    t = b.spawn(shape.worker_name, [b.param("d_poll"), b.param("d_use")], "t")
    j = b.alloca(I64, "j")
    with b.for_range(j, 0, 3) as jv:
        b.call(warm, [jv])
    b.delay(b.param("d_init"))  # the slow initialization path
    res = b.malloc(S, name="res")
    b.store_field(11, res, shape.target_field)
    b.store_field(2, res, shape.aux_field)
    with b.at_location(f, L + 40):
        b.store(res, G)  # W target: the (too late) publication
    _fence(b)
    b.call(warm, [b.i64(1)])
    b.join(t)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        d_init = 6 * q + rng.randint(-4 * US, 4 * US)
        k = rng.choice([-3, -2, -1, 1, 2])  # k < 0: the read wins the race
        d_poll = d_init + k * q
        return (d_init, max(d_poll, q), 5 * q)

    truth = GroundTruth(
        kind="order-violation",
        pattern="RW",
        events=[EventLocator(f, L + 10, "R"), EventLocator(f, L + 40, "W")],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Order violation, WW shape: double free via check-then-act (httpd-21287-like)
# ---------------------------------------------------------------------------


def build_double_free(shape: BugShape):
    """Two threads race through an unsynchronized cleanup path."""
    m, b, warm = _new_app_module(shape)
    Buf = m.add_struct(f"{shape.struct_name}Buf", [("data", I64)])
    S = m.add_struct(
        shape.struct_name,
        [(shape.target_field, I64), ("payload", ptr(Buf))],  # target = cleaned flag
    )
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file

    b.begin_function(shape.worker_name, VOID, [("d_pre", I64), ("d_act", I64)])
    b.call(warm, [b.i64(1)])
    b.delay(b.param("d_pre"))
    s = b.load(G, "s")
    flag = b.fieldaddr(s, shape.target_field, "flag")
    with b.at_location(f, L + 10):
        cleaned = b.load(flag, "cleaned")  # R: the unguarded check
    not_cleaned = b.cmp("eq", cleaned, 0)
    with b.if_then(not_cleaned):
        b.delay(b.param("d_act"))  # the check-to-act window
        with b.at_location(f, L + 12):
            b.store(1, flag)  # W: mark cleaned
        _fence(b)
        pl = b.load_field(s, "payload", "pl")
        with b.at_location(f, L + 14):
            b.free(pl)  # the (possibly second) free
        _fence(b)
    b.ret()

    b.begin_function("main", VOID, [("d1", I64), ("d2", I64), ("d_act", I64)])
    s = b.malloc(S, name="conn")
    buf = b.malloc(Buf, name="buf")
    b.store_field(0, s, shape.target_field)
    b.store_field(buf, s, "payload")
    b.store(s, G)
    _fence(b)
    t1 = b.spawn(shape.worker_name, [b.param("d1"), b.param("d_act")], "t1")
    t2 = b.spawn(shape.worker_name, [b.param("d2"), b.param("d_act")], "t2")
    j = b.alloca(I64, "j")
    with b.for_range(j, 0, 2) as jv:
        b.call(warm, [jv])
    b.join(t1)
    b.join(t2)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        d1 = 2 * q + rng.randint(-3 * US, 3 * US)
        # offset between the two checks: 0.5q (racy) or >=3.5q (serialized)
        k = rng.choice([0, 0, 1, 1, 2])
        offset = 0.5 * q if k == 0 else (3.0 + k) * q
        return (d1, d1 + int(offset), 2 * q)

    truth = GroundTruth(
        kind="order-violation",
        pattern="WW",
        events=[EventLocator(f, L + 14, "W"), EventLocator(f, L + 14, "W")],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Atomicity violation, RWR: check-then-use of a clearable pointer (mysql-3596)
# ---------------------------------------------------------------------------


def build_atomicity_rwr(shape: BugShape):
    """Reader checks a shared pointer, rival clears it, reader dereferences."""
    m, b, warm = _new_app_module(shape)
    Buf = m.add_struct(f"{shape.struct_name}Info", [("c", I64)])
    S = m.add_struct(
        shape.struct_name, [(shape.target_field, ptr(Buf)), (shape.aux_field, I64)]
    )
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file

    # Shared maintenance routine: clear + re-install.  Called benignly by
    # main at startup and racily by the rival thread.
    b.begin_function(f"{shape.rival_name}_once", VOID, [("d_clear", I64)])
    s = b.load(G, "s")
    ip = b.fieldaddr(s, shape.target_field, "ip")
    with b.at_location(f, L + 30):
        b.store(b.null(Buf), ip)  # W: the clear
    _fence(b)
    b.delay(b.param("d_clear"))
    nb = b.malloc(Buf, name="nb")
    b.store_field(9, nb, "c")
    with b.at_location(f, L + 32):
        b.store(nb, ip)  # re-install
    _fence(b)
    b.ret()

    b.begin_function(shape.worker_name, VOID, [("n", I64), ("d_win", I64), ("d_idle", I64)])
    b.call(warm, [b.i64(2)])
    i = b.alloca(I64, "i")
    with b.for_range(i, 0, b.param("n")):
        s = b.load(G, "s")
        ip = b.fieldaddr(s, shape.target_field, "ip")
        with b.at_location(f, L + 10):
            p1 = b.load(ip, "p1")  # R1: the check
        nz = b.cmp("ne", b.cast(p1, I64), 0)
        with b.if_then(nz):
            b.delay(b.param("d_win"))  # check-to-use window
            with b.at_location(f, L + 12):
                p2 = b.load(ip, "p2")  # R2: the use (re-read)
            _fence(b)
            cp = b.fieldaddr(p2, "c", "cp")
            with b.at_location(f, L + 13):
                v = b.load(cp, "v")  # crashes when the rival cleared in between
            pos = b.cmp("ge", v, 0)
            with b.if_then(pos):
                pass
        b.delay(b.param("d_idle"))
    b.ret()

    b.begin_function(
        shape.rival_name, VOID, [("n", I64), ("off", I64), ("d_clear", I64), ("d_per", I64)]
    )
    b.call(warm, [b.i64(1)])
    b.delay(b.param("off"))
    k = b.alloca(I64, "k")
    with b.for_range(k, 0, b.param("n")):
        b.call(f"{shape.rival_name}_once", [b.param("d_clear")])
        b.delay(b.param("d_per"))
    b.ret()

    b.begin_function(
        "main",
        VOID,
        [("n", I64), ("d_win", I64), ("d_idle", I64), ("off", I64), ("d_clear", I64), ("d_per", I64)],
    )
    s = b.malloc(S, name="st")
    buf = b.malloc(Buf, name="info0")
    b.store_field(5, buf, "c")
    b.store_field(buf, s, shape.target_field)
    b.store_field(0, s, shape.aux_field)
    b.store(s, G)
    _fence(b)
    b.call(f"{shape.rival_name}_once", [b.i64(2 * US)])  # benign maintenance pass
    tr = b.spawn(shape.worker_name, [b.param("n"), b.param("d_win"), b.param("d_idle")], "tr")
    tw = b.spawn(
        shape.rival_name,
        [b.param("n"), b.param("off"), b.param("d_clear"), b.param("d_per")],
        "tw",
    )
    b.join(tr)
    b.join(tw)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        n = shape.iters
        d_win = 2 * q
        d_idle = q
        cycle = d_win + d_idle  # reader period ~ 3q
        slot = rng.choice([0.5, 1.5, 2.5])  # 2.5 -> idle phase (benign)
        k_cycle = rng.randint(0, n - 2)
        off = int(k_cycle * cycle + slot * q) + rng.randint(-3 * US, 3 * US)
        # The re-install lands well past the check-to-use window, so an
        # in-window clear always manifests (no silent near-misses).
        d_clear = 3 * q
        d_per = 3 * cycle  # one clear per ~3 reader cycles
        return (n, d_win, d_idle, off, d_clear, d_per)

    truth = GroundTruth(
        kind="atomicity-violation",
        pattern="RWR",
        events=[
            EventLocator(f, L + 10, "R"),
            EventLocator(f, L + 30, "W"),
            EventLocator(f, L + 12, "R"),
        ],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Atomicity violation, WWR: prepare/overwrite/check (memcached-style)
# ---------------------------------------------------------------------------


def build_atomicity_wwr(shape: BugShape):
    """Owner stages a value and re-checks it; rival overwrites in between."""
    m, b, warm = _new_app_module(shape)
    S = m.add_struct(
        shape.struct_name, [(shape.target_field, I64), (shape.aux_field, I64)]
    )
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file

    # Shared update routine: the rival's store, also used benignly by main.
    b.begin_function(f"{shape.rival_name}_once", VOID, [])
    s = b.load(G, "s")
    sp = b.fieldaddr(s, shape.target_field, "sp")
    with b.at_location(f, L + 30):
        b.store(2, sp)  # W2: the intrusion
    _fence(b)
    b.ret()

    b.begin_function(shape.worker_name, VOID, [("n", I64), ("d_win", I64), ("d_idle", I64)])
    b.call(warm, [b.i64(2)])
    i = b.alloca(I64, "i")
    with b.for_range(i, 0, b.param("n")):
        s = b.load(G, "s")
        sp = b.fieldaddr(s, shape.target_field, "sp")
        with b.at_location(f, L + 10):
            b.store(1, sp)  # W1: stage
        _fence(b)
        b.delay(b.param("d_win"))
        with b.at_location(f, L + 12):
            r = b.load(sp, "r")  # R3: re-check
        ok = b.cmp("eq", r, 1)
        with b.at_location(f, L + 13):
            b.assert_(ok, f"{shape.target_field} clobbered mid-transaction")
        b.store(0, sp)  # benign reset
        _fence(b)
        b.delay(b.param("d_idle"))
    b.ret()

    b.begin_function(shape.rival_name, VOID, [("n", I64), ("off", I64), ("d_per", I64)])
    b.call(warm, [b.i64(1)])
    b.delay(b.param("off"))
    k = b.alloca(I64, "k")
    with b.for_range(k, 0, b.param("n")):
        b.call(f"{shape.rival_name}_once", [])
        b.delay(b.param("d_per"))
    b.ret()

    b.begin_function(
        "main", VOID, [("n", I64), ("d_win", I64), ("d_idle", I64), ("off", I64), ("d_per", I64)]
    )
    s = b.malloc(S, name="st")
    b.store_field(0, s, shape.target_field)
    b.store_field(0, s, shape.aux_field)
    b.store(s, G)
    _fence(b)
    b.call(f"{shape.rival_name}_once", [])  # benign startup write
    t1 = b.spawn(shape.worker_name, [b.param("n"), b.param("d_win"), b.param("d_idle")], "t1")
    t2 = b.spawn(shape.rival_name, [b.param("n"), b.param("off"), b.param("d_per")], "t2")
    b.join(t1)
    b.join(t2)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        n = shape.iters
        d_win = 2 * q
        d_idle = q
        cycle = d_win + d_idle
        slot = rng.choice([0.5, 1.5, 2.5])  # 2.5 = idle phase, benign
        k_cycle = rng.randint(0, n - 2)
        off = int(k_cycle * cycle + slot * q) + rng.randint(-3 * US, 3 * US)
        return (n, d_win, d_idle, off, int(2.7 * cycle))

    truth = GroundTruth(
        kind="atomicity-violation",
        pattern="WWR",
        events=[
            EventLocator(f, L + 10, "W"),
            EventLocator(f, L + 30, "W"),
            EventLocator(f, L + 12, "R"),
        ],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Atomicity violation, RWW: stale pointer restore (httpd-25520-like)
# ---------------------------------------------------------------------------


def build_atomicity_rww(shape: BugShape):
    """Rotator saves and restores a buffer pointer non-atomically while a
    recycler swaps it out: the restore resurrects a freed buffer."""
    m, b, warm = _new_app_module(shape)
    Buf = m.add_struct(f"{shape.struct_name}Buf", [("data", I64)])
    S = m.add_struct(shape.struct_name, [(shape.target_field, ptr(Buf)), ("len", I64)])
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file

    # Shared swap routine (free old + null + install fresh), called
    # benignly by main at startup and racily by the recycler.
    b.begin_function(f"{shape.rival_name}_once", VOID, [("d_gap", I64)])
    s = b.load(G, "s")
    bp = b.fieldaddr(s, shape.target_field, "bp")
    p = b.load(bp, "p")
    pz = b.cmp("ne", b.cast(p, I64), 0)
    with b.if_then(pz):
        with b.at_location(f, L + 30):
            b.free(p)  # retire the old buffer
        with b.at_location(f, L + 31):
            b.store(b.null(Buf), bp)  # W2: swap out
        _fence(b)
    b.delay(b.param("d_gap"))
    nb = b.malloc(Buf, name="nb")
    b.store_field(3, nb, "data")
    with b.at_location(f, L + 33):
        b.store(nb, bp)  # re-install
    _fence(b)
    b.ret()

    b.begin_function(
        shape.worker_name, VOID,
        [("n", I64), ("d_win", I64), ("d_use", I64), ("d_idle", I64)],
    )
    b.call(warm, [b.i64(2)])
    i = b.alloca(I64, "i")
    with b.for_range(i, 0, b.param("n")):
        s = b.load(G, "s")
        bp = b.fieldaddr(s, shape.target_field, "bp")
        with b.at_location(f, L + 10):
            old = b.load(bp, "old")  # R1: save
        nz = b.cmp("ne", b.cast(old, I64), 0)
        with b.if_then(nz):
            b.delay(b.param("d_win"))
            with b.at_location(f, L + 12):
                b.store(old, bp)  # W3: restore (stale if swapped meanwhile)
            _fence(b)
            b.delay(b.param("d_use"))
            with b.at_location(f, L + 14):
                cur = b.load(bp, "cur")  # guarded re-read
            cnz = b.cmp("ne", b.cast(cur, I64), 0)
            with b.if_then(cnz):
                dp = b.fieldaddr(cur, "data", "dp")
                with b.at_location(f, L + 16):
                    v = b.load(dp, "v")  # crashes on a resurrected buffer
                pos = b.cmp("ge", v, 0)
                with b.if_then(pos):
                    pass
        b.delay(b.param("d_idle"))
    b.ret()

    b.begin_function(
        shape.rival_name, VOID, [("n", I64), ("off", I64), ("d_gap", I64), ("d_per", I64)]
    )
    b.call(warm, [b.i64(1)])
    b.delay(b.param("off"))
    k = b.alloca(I64, "k")
    with b.for_range(k, 0, b.param("n")):
        b.call(f"{shape.rival_name}_once", [b.param("d_gap")])
        b.delay(b.param("d_per"))
    b.ret()

    b.begin_function(
        "main",
        VOID,
        [("n", I64), ("d_win", I64), ("d_use", I64), ("d_idle", I64), ("off", I64), ("d_gap", I64), ("d_per", I64)],
    )
    s = b.malloc(S, name="st")
    buf = b.malloc(Buf, name="buf0")
    b.store_field(1, buf, "data")
    b.store_field(buf, s, shape.target_field)
    b.store_field(0, s, "len")
    b.store(s, G)
    _fence(b)
    b.call(f"{shape.rival_name}_once", [b.i64(2 * US)])  # benign startup swap
    t1 = b.spawn(
        shape.worker_name,
        [b.param("n"), b.param("d_win"), b.param("d_use"), b.param("d_idle")],
        "t1",
    )
    t2 = b.spawn(
        shape.rival_name,
        [b.param("n"), b.param("off"), b.param("d_gap"), b.param("d_per")],
        "t2",
    )
    b.join(t1)
    b.join(t2)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        n = shape.iters
        d_win = 2 * q
        d_use = q
        d_idle = q
        cycle = d_win + d_use + d_idle  # 4q
        # swap lands inside the save/restore window (fails), inside the
        # use gap (benign satellite), or in idle (fully benign)
        slot = rng.choice([0.5, 1.5, 2.4, 3.5])
        k_cycle = rng.randint(0, n - 2)
        off = int(k_cycle * cycle + slot * q) + rng.randint(-3 * US, 3 * US)
        # d_gap (swap-out to re-install) spans past the worker's re-read,
        # so a failing restore is observed before the fresh buffer lands.
        return (n, d_win, d_use, d_idle, off, 3 * q, 3 * cycle)

    truth = GroundTruth(
        kind="atomicity-violation",
        pattern="RWW",
        events=[
            EventLocator(f, L + 10, "R"),
            EventLocator(f, L + 31, "W"),
            EventLocator(f, L + 12, "W"),
        ],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Atomicity violation, WRW: torn write observed mid-update (aget-style)
# ---------------------------------------------------------------------------


def build_atomicity_wrw(shape: BugShape):
    """Writer updates a value in two steps; observer snapshots in between."""
    m, b, warm = _new_app_module(shape)
    S = m.add_struct(
        shape.struct_name, [(shape.target_field, I64), (shape.aux_field, I64)]
    )
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file
    PARTIAL = 1111
    FINAL = 2222

    b.begin_function(shape.worker_name, VOID, [("n", I64), ("d_win", I64), ("d_idle", I64)])
    b.call(warm, [b.i64(2)])
    i = b.alloca(I64, "i")
    with b.for_range(i, 0, b.param("n")):
        s = b.load(G, "s")
        vp = b.fieldaddr(s, shape.target_field, "vp")
        with b.at_location(f, L + 10):
            b.store(PARTIAL, vp)  # W1: first half of the update
        _fence(b)
        b.delay(b.param("d_win"))
        with b.at_location(f, L + 12):
            b.store(FINAL, vp)  # W3: second half
        _fence(b)
        b.delay(b.param("d_idle"))
    b.ret()

    b.begin_function(shape.rival_name, VOID, [("n", I64), ("off", I64), ("d_chk", I64), ("d_per", I64)])
    b.call(warm, [b.i64(1)])
    b.delay(b.param("off"))
    k = b.alloca(I64, "k")
    with b.for_range(k, 0, b.param("n")):
        s = b.load(G, "s")
        vp = b.fieldaddr(s, shape.target_field, "vp")
        with b.at_location(f, L + 30):
            r = b.load(vp, "snap")  # R2: the torn snapshot
        torn = b.cmp("eq", r, PARTIAL)
        whole = b.cmp("eq", torn, 0)
        with b.if_then(whole):
            pass  # fence: bounds the read
        b.delay(b.param("d_chk"))  # checkpoint write happens here
        with b.at_location(f, L + 33):
            b.assert_(whole, "checkpointed a torn value")
        b.delay(b.param("d_per"))
    b.ret()

    b.begin_function(
        "main", VOID, [("n", I64), ("d_win", I64), ("d_idle", I64), ("off", I64), ("d_chk", I64), ("d_per", I64)]
    )
    s = b.malloc(S, name="st")
    b.store_field(FINAL, s, shape.target_field)
    b.store_field(0, s, shape.aux_field)
    b.store(s, G)
    _fence(b)
    t1 = b.spawn(shape.worker_name, [b.param("n"), b.param("d_win"), b.param("d_idle")], "t1")
    t2 = b.spawn(shape.rival_name, [b.param("n"), b.param("off"), b.param("d_chk"), b.param("d_per")], "t2")
    b.join(t1)
    b.join(t2)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        n = shape.iters
        d_win = 2 * q
        d_idle = q
        cycle = d_win + d_idle
        slot = rng.choice([0.5, 1.5, 2.5])  # 2.5 = idle, benign
        k_cycle = rng.randint(0, n - 2)
        off = int(k_cycle * cycle + slot * q) + rng.randint(-3 * US, 3 * US)
        return (n, d_win, d_idle, off, 3 * q, int(2.6 * cycle))

    truth = GroundTruth(
        kind="atomicity-violation",
        pattern="WRW",
        events=[
            EventLocator(f, L + 10, "W"),
            EventLocator(f, L + 30, "R"),
            EventLocator(f, L + 12, "W"),
        ],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Deadlock: AB-BA lock ordering (sqlite-1672-style)
# ---------------------------------------------------------------------------


def build_ab_ba_deadlock(shape: BugShape):
    """Two subsystems acquire the same two locks in opposite orders."""
    m, b, warm = _new_app_module(shape)
    S = m.add_struct(
        shape.struct_name,
        [("m_a", LOCK), ("m_b", LOCK), (shape.target_field, I64), (shape.aux_field, I64)],
    )
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file

    b.begin_function(shape.worker_name, VOID, [("n", I64), ("d_hold", I64), ("d_idle", I64)])
    b.call(warm, [b.i64(2)])
    i = b.alloca(I64, "i")
    with b.for_range(i, 0, b.param("n")):
        s = b.load(G, "s")
        la = b.fieldaddr(s, "m_a", "la")
        lb = b.fieldaddr(s, "m_b", "lb")
        with b.at_location(f, L + 10):
            b.lock(la)  # hold A
        _fence(b)
        b.delay(b.param("d_hold"))
        with b.at_location(f, L + 12):
            b.lock(lb)  # then attempt B
        _fence(b)
        tp = b.fieldaddr(s, shape.target_field, "tp")
        b.store(b.add(b.load(tp), 1), tp)
        b.unlock(lb)
        b.unlock(la)
        _fence(b)
        b.delay(b.param("d_idle"))
    b.ret()

    b.begin_function(shape.rival_name, VOID, [("n", I64), ("off", I64), ("d_hold", I64), ("d_idle", I64)])
    b.call(warm, [b.i64(1)])
    b.delay(b.param("off"))
    k = b.alloca(I64, "k")
    with b.for_range(k, 0, b.param("n")):
        s = b.load(G, "s")
        la = b.fieldaddr(s, "m_a", "la")
        lb = b.fieldaddr(s, "m_b", "lb")
        with b.at_location(f, L + 30):
            b.lock(lb)  # hold B
        _fence(b)
        b.delay(b.param("d_hold"))
        with b.at_location(f, L + 32):
            b.lock(la)  # then attempt A -- opposite order
        _fence(b)
        ap = b.fieldaddr(s, shape.aux_field, "ap")
        b.store(b.add(b.load(ap), 1), ap)
        b.unlock(la)
        b.unlock(lb)
        _fence(b)
        b.delay(b.param("d_idle"))
    b.ret()

    b.begin_function(
        "main", VOID, [("n", I64), ("d_hold", I64), ("d_idle", I64), ("off", I64)]
    )
    s = b.malloc(S, name="db")
    la = b.fieldaddr(s, "m_a", "la")
    lb = b.fieldaddr(s, "m_b", "lb")
    b.lock_init(la)
    b.lock_init(lb)
    b.store_field(0, s, shape.target_field)
    b.store_field(0, s, shape.aux_field)
    b.store(s, G)
    _fence(b)
    t1 = b.spawn(shape.worker_name, [b.param("n"), b.param("d_hold"), b.param("d_idle")], "t1")
    t2 = b.spawn(shape.rival_name, [b.param("n"), b.param("off"), b.param("d_hold"), b.param("d_idle")], "t2")
    b.join(t1)
    b.join(t2)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        n = shape.iters
        d_hold = 2 * q  # hold the first lock for 2q before the second
        d_idle = 3 * q
        cycle = d_hold + d_idle
        # rival's first-lock time lands 0.5q/1.5q into a worker hold
        # (deadlock) or into the idle phase (benign)
        slot = rng.choice([0.5, 1.5, 3.0, 4.0])
        k_cycle = rng.randint(0, n - 2)
        off = int(k_cycle * cycle + slot * q) + rng.randint(-3 * US, 3 * US)
        return (n, d_hold, d_idle, off)

    truth = GroundTruth(
        kind="deadlock",
        pattern="deadlock",
        events=[
            EventLocator(f, L + 10, "L"),  # hold A (worker)
            EventLocator(f, L + 30, "L"),  # hold B (rival)
            EventLocator(f, L + 12, "L"),  # attempt B (worker)
            EventLocator(f, L + 32, "L"),  # attempt A (rival)
        ],
    )
    return m, truth, workload


TEMPLATES = {
    "WR": build_use_after_free,
    "RW": build_read_before_init,
    "WW": build_double_free,
    "RWR": build_atomicity_rwr,
    "WWR": build_atomicity_wwr,
    "RWW": build_atomicity_rww,
    "WRW": build_atomicity_wrw,
    "deadlock": build_ab_ba_deadlock,
}
