"""The bug corpus: 67 concurrency bugs across 17 application models.

Importing :mod:`repro.corpus` (or calling any registry accessor) loads
every app module, which registers its bugs.  See ``registry.py`` for
the spec format, ``templates.py`` for the shared-memory failure
mechanics and ``templates_sync.py`` for the condvar/rwlock/semaphore/
barrier classes.

The registry query surface is public API:

* :func:`bugs` — filter by kind, primitives, table or system;
* :func:`register` / :func:`make_spec` — add bugs (out-of-tree corpora
  register through the same path the in-tree apps use);
* :func:`all_bugs`, :func:`bug`, :func:`snorlax_bugs` — stable lookups.
"""

from __future__ import annotations

from repro.corpus.appkit import AppProfile, profile
from repro.corpus.registry import (
    BugSpec,
    EventLocator,
    GroundTruth,
    all_bugs,
    bug,
    bugs,
    bugs_by_system,
    register,
    snorlax_bugs,
    systems,
    table_bugs,
)
from repro.corpus.scenarios import (
    SCENARIOS,
    async_pipeline,
    db_pool,
    producer_consumer,
)
from repro.corpus.templates import TEMPLATES, BugShape
from repro.corpus.templates_sync import PRIMITIVE_TEMPLATES, TEMPLATE_PRIMITIVES

# Every template the spec factory can instantiate.  ``TEMPLATES`` keeps
# only the original shared-memory/mutex patterns (the check generator's
# kind vocabulary is frozen on it); the sync-primitive classes live in
# their own namespace and are merged here.
ALL_TEMPLATES = {**TEMPLATES, **PRIMITIVE_TEMPLATES}


class _TemplatedBug:
    """Lazily instantiates a template; keeps build/workload/truth in sync."""

    def __init__(self, shape: BugShape, pattern: str):
        self.shape = shape
        self.pattern = pattern
        self._built = None

    def _ensure(self):
        if self._built is None:
            self._built = ALL_TEMPLATES[self.pattern](self.shape)
        return self._built

    def build_module(self):
        # A fresh build every call (templates are deterministic); the
        # registry caches the shared instance itself.
        return ALL_TEMPLATES[self.pattern](self.shape)[0]

    @property
    def ground_truth(self) -> GroundTruth:
        return self._ensure()[1]

    def workload(self, seed: int) -> tuple:
        return self._ensure()[2](seed)


def make_spec(
    system: str,
    bug_id: str,
    table: int,
    pattern: str,
    quantum_us: int,
    description: str,
    *,
    file: str,
    struct_name: str,
    target_field: str,
    aux_field: str,
    global_name: str,
    worker_name: str,
    rival_name: str,
    helper_name: str,
    base_line: int,
    snorlax_eval: bool = False,
    iters: int = 6,
    primitives: tuple[str, ...] | None = None,
) -> BugSpec:
    """Register one templated bug with app-specific vocabulary."""
    shape = BugShape(
        profile=profile(system),
        bug_id=bug_id,
        file=file,
        struct_name=struct_name,
        target_field=target_field,
        aux_field=aux_field,
        global_name=global_name,
        worker_name=worker_name,
        rival_name=rival_name,
        helper_name=helper_name,
        base_line=base_line,
        quantum_us=quantum_us,
        iters=iters,
    )
    templated = _TemplatedBug(shape, pattern)
    if primitives is None:
        primitives = TEMPLATE_PRIMITIVES.get(pattern, ())
        if pattern == "deadlock":
            primitives = ("mutex",)
    spec = BugSpec(
        bug_id=bug_id,
        system=system,
        language=profile(system).language,
        table=table,
        description=description,
        builder=templated.build_module,
        workload=templated.workload,
        truth_source=lambda: templated.ground_truth,
        target_dt_us=_nominal_dt(pattern, quantum_us),
        snorlax_eval=snorlax_eval,
        primitives=tuple(primitives),
    )
    return register(spec)


def _nominal_dt(pattern: str, quantum_us: int) -> tuple[float, ...]:
    """The intended mean gap(s) between target events, in us."""
    if pattern in ("WR", "WW", "deadlock", "lost-wakeup", "lock-chain"):
        return (float(quantum_us),)
    if pattern in ("RW", "sema-underflow", "barrier-phase"):
        return (2.0 * quantum_us,)
    return (float(quantum_us), float(quantum_us))  # atomicity: dT1, dT2


__all__ = [
    "AppProfile",
    "profile",
    "BugSpec",
    "EventLocator",
    "GroundTruth",
    "all_bugs",
    "bug",
    "bugs",
    "bugs_by_system",
    "register",
    "snorlax_bugs",
    "systems",
    "table_bugs",
    "TEMPLATES",
    "PRIMITIVE_TEMPLATES",
    "ALL_TEMPLATES",
    "BugShape",
    "make_spec",
    "SCENARIOS",
    "producer_consumer",
    "db_pool",
    "async_pipeline",
]
