"""Programmatic scenario generators: correct programs, stressed schedules.

Where :mod:`repro.corpus.templates` builds programs with one injected
bug, this module builds programs that are *correct* under every legal
interleaving — bounded buffers, connection pools, pipelined stages —
and packages each one as a frozen :class:`repro.api.ScenarioSpec`.
They exist to exercise the scheduler and the sync-primitive tables at
realistic contention levels:

* the ``sim``/``collect`` check stages and the benchmarks need
  failure-free background load whose only interesting variable is the
  interleaving;
* scheduler policies (:class:`repro.api.SchedulerPolicy`) need programs
  that terminate under *any* policy, so a hang is always a scheduler or
  table bug, never the workload's fault;
* diagnosis-accuracy experiments need benign traffic to mix into
  evidence pools.

Every generator takes structural knobs (thread counts, items, pool
size), validates them eagerly, and returns a spec whose ``builder``
re-creates the module deterministically and whose ``workload`` maps a
seed to delay arguments — same shape as the corpus bugs, minus the bug.

The one subtle piece is the condvar in :func:`async_pipeline`: the
simulator's ``condwait`` is naked (no mutex handoff, no memory), so a
check-then-wait handshake can drop the wakeup — exactly the
``lost-wakeup`` bug class.  Correct code therefore re-notifies until
the sleeper acknowledges; see the scenario docstring.
"""

from __future__ import annotations

import random

from repro.api import ScenarioSpec, SchedulerPolicy
from repro.corpus.templates import US, _fence
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import BARRIER, COND, I64, LOCK, SEMA, RWLOCK, VOID, ptr


def _seeded(name: str, seed: int) -> random.Random:
    return random.Random(f"scenario:{name}:{seed}")


# ---------------------------------------------------------------------------
# Bounded buffer: semaphores metering a mutex-guarded ring
# ---------------------------------------------------------------------------


def producer_consumer(
    producers: int = 2,
    consumers: int = 2,
    items_per_producer: int = 4,
    capacity: int = 2,
    policy: SchedulerPolicy = SchedulerPolicy(),
) -> ScenarioSpec:
    """The textbook bounded buffer, written correctly.

    ``slots`` starts at ``capacity`` and meters producers; ``items``
    starts at zero and meters consumers; the counters themselves are
    mutated under a mutex.  Total production must divide evenly among
    the consumers — each consumer takes a fixed share, so the program
    terminates without any poison-pill protocol.
    """
    total = producers * items_per_producer
    if producers < 1 or consumers < 1 or items_per_producer < 1:
        raise ValueError("producers, consumers and items_per_producer must be >= 1")
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if total % consumers:
        raise ValueError(
            f"{total} items cannot be split evenly across {consumers} consumers"
        )
    share = total // consumers
    name = f"producer-consumer-{producers}p{consumers}c{items_per_producer}i{capacity}b"

    def build() -> Module:
        m = Module(name)
        b = IRBuilder(m)
        State = m.add_struct("Buffer", [("m", LOCK), ("produced", I64), ("consumed", I64)])
        G = m.add_global("buffer", ptr(State))
        SLOTS = m.add_global("slots", SEMA)
        ITEMS = m.add_global("items", SEMA)

        b.begin_function("producer", VOID, [("n", I64), ("d", I64)])
        i = b.alloca(I64, "i")
        with b.for_range(i, 0, b.param("n")):
            b.sem_wait(SLOTS)
            s = b.load(G, "s")
            mu = b.fieldaddr(s, "m", "mu")
            b.lock(mu)
            pp = b.fieldaddr(s, "produced", "pp")
            b.store(b.add(b.load(pp, "p"), 1), pp)
            b.unlock(mu)
            _fence(b)
            b.sem_post(ITEMS)
            b.delay(b.param("d"))
        b.ret()

        b.begin_function("consumer", VOID, [("n", I64), ("d", I64)])
        i = b.alloca(I64, "i")
        with b.for_range(i, 0, b.param("n")):
            b.sem_wait(ITEMS)
            s = b.load(G, "s")
            mu = b.fieldaddr(s, "m", "mu")
            b.lock(mu)
            cp = b.fieldaddr(s, "consumed", "cp")
            b.store(b.add(b.load(cp, "c"), 1), cp)
            b.unlock(mu)
            _fence(b)
            b.sem_post(SLOTS)
            b.delay(b.param("d"))
        b.ret()

        b.begin_function("main", VOID, [("d_prod", I64), ("d_cons", I64)])
        s = b.malloc(State, name="buf")
        mu = b.fieldaddr(s, "m", "mu0")
        b.lock_init(mu)
        b.store_field(0, s, "produced")
        b.store_field(0, s, "consumed")
        b.store(s, G)
        b.sem_init(SLOTS, capacity)
        b.sem_init(ITEMS, 0)
        _fence(b)
        handles = []
        for k in range(producers):
            handles.append(
                b.spawn(
                    "producer",
                    [b.i64(items_per_producer), b.param("d_prod")],
                    f"prod{k}",
                )
            )
        for k in range(consumers):
            handles.append(
                b.spawn("consumer", [b.i64(share), b.param("d_cons")], f"cons{k}")
            )
        for h in handles:
            b.join(h)
        b.ret()
        m.finalize()
        return m

    def workload(seed: int) -> tuple:
        rng = _seeded(name, seed)
        # asymmetric rates so both semaphores actually hit zero
        return (
            rng.randint(20, 120) * US,
            rng.randint(20, 120) * US,
        )

    return ScenarioSpec(name=name, builder=build, workload=workload, policy=policy)


# ---------------------------------------------------------------------------
# Connection pool: a semaphore gating rwlock-read clients, one writer
# ---------------------------------------------------------------------------


def db_pool(
    clients: int = 3,
    requests: int = 3,
    pool_size: int = 2,
    policy: SchedulerPolicy = SchedulerPolicy(),
) -> ScenarioSpec:
    """A database connection pool under mixed read/reconfigure load.

    Clients take a connection permit from the pool semaphore, read the
    live config under the read lock, hold the connection for the query,
    and return the permit.  A single admin thread periodically bumps the
    config generation under the write lock.  Permits are always
    returned and every lock acquisition is paired, so the scenario
    terminates under any scheduler — including writer-preference rwlock
    grant orders.
    """
    if clients < 1 or requests < 1:
        raise ValueError("clients and requests must be >= 1")
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    name = f"db-pool-{clients}c{requests}r{pool_size}p"

    def build() -> Module:
        m = Module(name)
        b = IRBuilder(m)
        State = m.add_struct("PoolState", [("rw", RWLOCK), ("generation", I64), ("served", I64)])
        G = m.add_global("pool_state", ptr(State))
        POOL = m.add_global("pool", SEMA)

        b.begin_function("client", VOID, [("n", I64), ("d_query", I64), ("d_think", I64)])
        i = b.alloca(I64, "i")
        with b.for_range(i, 0, b.param("n")):
            b.sem_wait(POOL)  # check out a connection
            s = b.load(G, "s")
            rw = b.fieldaddr(s, "rw", "rw")
            b.rw_rdlock(rw)
            gp = b.fieldaddr(s, "generation", "gp")
            g = b.load(gp, "g")
            b.rw_unlock(rw)
            ok = b.cmp("ge", g, 0)
            with b.if_then(ok):
                pass
            b.delay(b.param("d_query"))  # the query itself
            b.sem_post(POOL)  # connection back to the pool
            _fence(b)
            b.delay(b.param("d_think"))
        b.ret()

        b.begin_function("admin", VOID, [("n", I64), ("d_gap", I64)])
        i = b.alloca(I64, "i")
        with b.for_range(i, 0, b.param("n")):
            b.delay(b.param("d_gap"))
            s = b.load(G, "s")
            rw = b.fieldaddr(s, "rw", "rw")
            b.rw_wrlock(rw)
            gp = b.fieldaddr(s, "generation", "gp")
            b.store(b.add(b.load(gp, "g"), 1), gp)
            sp = b.fieldaddr(s, "served", "sp")
            b.store(b.add(b.load(sp, "v"), 1), sp)
            b.rw_unlock(rw)
            _fence(b)
        b.ret()

        b.begin_function("main", VOID, [("d_query", I64), ("d_think", I64), ("d_admin", I64)])
        s = b.malloc(State, name="st")
        rw = b.fieldaddr(s, "rw", "rw0")
        b.rw_init(rw)
        b.store_field(0, s, "generation")
        b.store_field(0, s, "served")
        b.store(s, G)
        b.sem_init(POOL, pool_size)
        _fence(b)
        handles = [
            b.spawn(
                "client",
                [b.i64(requests), b.param("d_query"), b.param("d_think")],
                f"cli{k}",
            )
            for k in range(clients)
        ]
        handles.append(b.spawn("admin", [b.i64(requests), b.param("d_admin")], "admin"))
        for h in handles:
            b.join(h)
        b.ret()
        m.finalize()
        return m

    def workload(seed: int) -> tuple:
        rng = _seeded(name, seed)
        d_query = rng.randint(40, 160) * US
        # admin cadence lands mid-query often enough to queue writers
        return (d_query, rng.randint(10, 60) * US, rng.randint(30, 120) * US)

    return ScenarioSpec(name=name, builder=build, workload=workload, policy=policy)


# ---------------------------------------------------------------------------
# Pipelined stages: semaphore handoff, barrier epochs, condvar completion
# ---------------------------------------------------------------------------


def async_pipeline(
    stages: int = 3,
    batches: int = 2,
    policy: SchedulerPolicy = SchedulerPolicy(),
) -> ScenarioSpec:
    """A batch pipeline with an epoch barrier and a completion condvar.

    Each batch flows through ``stages`` threads chained by handoff
    semaphores (stage *i* waits ``s[i]``, works, posts ``s[i+1]``);
    main feeds ``s[0]`` and drains the tail.  After each batch, all
    stage threads and main meet at a barrier, so no stage can run two
    epochs ahead.  A monitor thread sleeps on a condvar until main
    announces completion.

    The announcement uses the only *correct* naked-condvar idiom: the
    monitor checks the ``done`` flag and sleeps only if it is unset;
    main sets the flag and then re-notifies (bounded, spaced a delay
    apart) until the monitor stores its acknowledgement.  A single
    check-then-notify would be the ``lost-wakeup`` bug this corpus
    diagnoses elsewhere — the retry loop closes that window.
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    if batches < 1:
        raise ValueError("batches must be >= 1")
    name = f"async-pipeline-{stages}s{batches}b"
    retries = 64  # notify attempts before giving up the handshake

    def build() -> Module:
        m = Module(name)
        b = IRBuilder(m)
        State = m.add_struct(
            "PipeState", [("m", LOCK), ("done", I64), ("acked", I64), ("work", I64)]
        )
        G = m.add_global("pipe_state", ptr(State))
        sems = [m.add_global(f"hand{i}", SEMA) for i in range(stages + 1)]
        BAR = m.add_global("epoch", BARRIER)
        CV = m.add_global("done_cv", COND)

        b.begin_function(
            "stage", VOID, [("src", ptr(SEMA)), ("dst", ptr(SEMA)), ("d_work", I64)]
        )
        i = b.alloca(I64, "i")
        with b.for_range(i, 0, batches):
            b.sem_wait(b.param("src"))
            b.delay(b.param("d_work"))
            s = b.load(G, "s")
            mu = b.fieldaddr(s, "m", "mu")
            b.lock(mu)
            wp = b.fieldaddr(s, "work", "wp")
            b.store(b.add(b.load(wp, "w"), 1), wp)
            b.unlock(mu)
            _fence(b)
            b.sem_post(b.param("dst"))
            b.barrier_wait(BAR)  # epoch edge: nobody runs ahead
            _fence(b)
        b.ret()

        b.begin_function("monitor", VOID, [])
        s = b.load(G, "s")
        dp = b.fieldaddr(s, "done", "dp")
        d = b.load(dp, "d")
        not_done = b.cmp("eq", d, 0)
        with b.if_then(not_done):
            b.cond_wait(CV)  # safe: main re-notifies until acked
        _fence(b)
        ap = b.fieldaddr(s, "acked", "ap")
        b.store(1, ap)
        _fence(b)
        b.ret()

        b.begin_function("main", VOID, [("d_work", I64), ("d_gap", I64)])
        s = b.malloc(State, name="st")
        mu = b.fieldaddr(s, "m", "mu0")
        b.lock_init(mu)
        b.store_field(0, s, "done")
        b.store_field(0, s, "acked")
        b.store_field(0, s, "work")
        b.store(s, G)
        for sem in sems:
            b.sem_init(sem, 0)
        b.barrier_init(BAR, stages + 1)
        b.cond_init(CV)
        _fence(b)
        mon = b.spawn("monitor", [], "monitor")
        handles = [
            b.spawn(
                "stage", [sems[k], sems[k + 1], b.param("d_work")], f"stage{k}"
            )
            for k in range(stages)
        ]
        i = b.alloca(I64, "i")
        with b.for_range(i, 0, batches):
            b.sem_post(sems[0])  # feed the batch in
            b.sem_wait(sems[stages])  # drain it out the far end
            b.barrier_wait(BAR)
            _fence(b)
            b.delay(b.param("d_gap"))
        for h in handles:
            b.join(h)
        dp = b.fieldaddr(s, "done", "dp")
        b.store(1, dp)
        _fence(b)
        ap = b.fieldaddr(s, "acked", "ap")
        j = b.alloca(I64, "j")
        with b.for_range(j, 0, retries):
            a = b.load(ap, "a")
            pending = b.cmp("eq", a, 0)
            with b.if_then(pending):
                b.cond_notify(CV)
                b.delay(50 * US)
        b.join(mon)
        b.ret()
        m.finalize()
        return m

    def workload(seed: int) -> tuple:
        rng = _seeded(name, seed)
        return (rng.randint(20, 100) * US, rng.randint(10, 80) * US)

    return ScenarioSpec(name=name, builder=build, workload=workload, policy=policy)


SCENARIOS = {
    "producer-consumer": producer_consumer,
    "db-pool": db_pool,
    "async-pipeline": async_pipeline,
}
