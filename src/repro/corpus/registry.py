"""The bug corpus registry: 67 concurrency bugs in 17 systems.

Each :class:`BugSpec` packages everything an experiment needs: a builder
for the application model (an IR module shaped like the real system), a
seed-indexed workload generator, the developer-verified ground truth
(the ordered target events, by source location), and which paper table
the bug belongs to.

The registry mirrors the paper's corpus:

* Tables 1-3 (the coarse-interleaving-hypothesis study) cover all 54
  bugs across MySQL, Apache httpd, memcached, SQLite, Transmission,
  pbzip2, aget, JDK, Apache Derby, Apache Groovy, DBCP, Log4j and
  Apache Lucene.
* The Snorlax evaluation (§6) uses the 11 C/C++ bugs in 7 systems that
  Gist was also evaluated on (``snorlax_eval=True``).
* Table 4 is this reproduction's extension corpus: 13 bugs over richer
  primitives (condvars, rwlocks, semaphores, barriers, 3-lock chains)
  in nginx, redis, postgres and zookeeper, queryable via :func:`bugs`
  with ``primitives=...``.

The paper's per-bug numeric table cells were not recoverable from the
text (images); per-bug dT envelopes are synthesized inside the summary
statistics the text states (min 91 us; averages 154-3505 us), recorded
here as ``target_dt_us`` for documentation and bench assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import CorpusError
from repro.ir.instructions import Instruction
from repro.ir.module import Module


@dataclass(frozen=True)
class EventLocator:
    """A target event named the way a developer would: file, line, role."""

    file: str
    line: int
    role: str  # "R" | "W" | "L"


@dataclass
class GroundTruth:
    """The manually verified root cause: target events in failure order."""

    kind: str  # "order-violation" | "atomicity-violation" | "deadlock"
    pattern: str  # "WR" | "RW" | "RWR" | "WWR" | "RWW" | "WRW" | "WW" | "deadlock"
    events: list[EventLocator]

    def resolve(self, module: Module) -> list[int]:
        """Map the event locations to instruction uids in a built module."""
        uids: list[int] = []
        for ev in self.events:
            uids.append(_find_instruction(module, ev).uid)
        return uids


def _find_instruction(module: Module, ev: EventLocator) -> Instruction:
    matches = [
        i
        for i in module.instructions()
        if i.loc is not None and i.loc.file == ev.file and i.loc.line == ev.line
    ]
    if not matches:
        raise CorpusError(f"no instruction at {ev.file}:{ev.line}")
    if len(matches) > 1:
        # Prefer the instruction whose opcode matches the role.
        want = {
            "R": ("load", "condwait", "semwait", "barrierwait"),
            "W": ("store", "free", "condnotify", "sempost"),
            "L": ("lock", "rwrdlock", "rwwrlock"),
        }[ev.role]
        narrowed = [i for i in matches if i.opcode in want]
        if len(narrowed) == 1:
            return narrowed[0]
        raise CorpusError(
            f"ambiguous target event at {ev.file}:{ev.line} "
            f"({len(matches)} instructions)"
        )
    return matches[0]


@dataclass
class BugSpec:
    bug_id: str  # e.g. "mysql-3596", "pbzip2-n/a"
    system: str
    language: str  # "C/C++" | "Java"
    table: int  # paper table: 1 deadlocks, 2 order violations, 3 atomicity
    description: str
    builder: Callable[[], Module]
    workload: Callable[[int], tuple]
    # GroundTruth, or a zero-arg factory for it (keeps registration lazy:
    # resolving the truth may require building the app module).
    truth_source: "GroundTruth | Callable[[], GroundTruth]" = None  # type: ignore[assignment]
    target_dt_us: tuple[float, ...] = ()  # nominal dT (one gap) / dT1,dT2 (two)
    snorlax_eval: bool = False
    entry: str = "main"
    # Synchronization primitives the bug's mechanics exercise, e.g.
    # ("mutex",), ("condvar",), ("rwlock",).  Empty means the race is on
    # plain shared memory with no primitive involved in the bug itself.
    primitives: tuple[str, ...] = ()
    _module: Module | None = field(default=None, repr=False)
    _truth: GroundTruth | None = field(default=None, repr=False)

    @property
    def ground_truth(self) -> GroundTruth:
        if self._truth is None:
            source = self.truth_source
            self._truth = source() if callable(source) else source
        return self._truth

    def module(self) -> Module:
        if self._module is None:
            self._module = self.builder()
            if not self._module.finalized:
                self._module.finalize()
        return self._module

    def fresh_module(self) -> Module:
        """An uncached build (for benches that time module analysis)."""
        m = self.builder()
        if not m.finalized:
            m.finalize()
        return m

    def target_uids(self) -> list[int]:
        return self.ground_truth.resolve(self.module())

    @property
    def kind(self) -> str:
        return self.ground_truth.kind


_REGISTRY: dict[str, BugSpec] = {}


def register(spec: BugSpec) -> BugSpec:
    if spec.bug_id in _REGISTRY:
        raise CorpusError(f"duplicate bug id {spec.bug_id}")
    _REGISTRY[spec.bug_id] = spec
    return spec


def _ensure_loaded() -> None:
    # App modules self-register on import.
    import repro.corpus.apps  # noqa: F401


def all_bugs() -> list[BugSpec]:
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda s: (s.table, s.system, s.bug_id))


def bug(bug_id: str) -> BugSpec:
    _ensure_loaded()
    try:
        return _REGISTRY[bug_id]
    except KeyError:
        raise CorpusError(f"unknown bug {bug_id!r}") from None


def bugs(
    kind: str | None = None,
    primitives: "Iterable[str] | str | None" = None,
    table: int | None = None,
    system: str | None = None,
) -> list[BugSpec]:
    """Query the corpus.  All filters are conjunctive; None means "any".

    ``kind`` matches :attr:`BugSpec.kind` (``"order-violation"``,
    ``"atomicity-violation"``, ``"deadlock"``).  ``primitives`` selects
    bugs exercising *any* of the named primitives (``"mutex"``,
    ``"condvar"``, ``"rwlock"``, ``"sema"``, ``"barrier"``); a single
    string is accepted as shorthand for a one-element set.
    """
    if isinstance(primitives, str):
        primitives = (primitives,)
    wanted = frozenset(primitives) if primitives is not None else None
    out = []
    for s in all_bugs():
        # Cheap metadata filters first: the kind filter resolves the
        # ground truth, which may build the app module.
        if wanted is not None and not (wanted & frozenset(s.primitives)):
            continue
        if table is not None and s.table != table:
            continue
        if system is not None and s.system != system:
            continue
        if kind is not None and s.kind != kind:
            continue
        out.append(s)
    return out


def bugs_by_system(system: str) -> list[BugSpec]:
    return [s for s in all_bugs() if s.system == system]


def snorlax_bugs() -> list[BugSpec]:
    """The 11 C/C++ bugs of the §6 Snorlax evaluation."""
    return [s for s in all_bugs() if s.snorlax_eval]


def table_bugs(table: int) -> list[BugSpec]:
    return [s for s in all_bugs() if s.table == table]


def systems() -> list[str]:
    return sorted({s.system for s in all_bugs()})
