"""App-model construction kit.

Real systems are big: MySQL is 650 KLOC, of which any one workload
touches a sliver.  That size difference is what scope restriction
exploits (Table 4's speedups grow with program size), so the app models
must have realistic *cold* bulk around the executed core.  ``AppProfile``
scales a deterministic cold-code synthesizer per system: functions with
varied CFG shapes (reduction loops, field walks, dispatch chains,
guard ladders) that the buggy workload never calls.

The kit also provides *warm* helpers — small branchy functions the
workload does call around target events.  Their conditional branches are
what keep the PT trace's timing intervals tight (a branch-free thread
would leave its accesses unordered).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import I64, VOID, PointerType, ptr


@dataclass(frozen=True)
class AppProfile:
    name: str
    language: str  # "C/C++" | "Java"
    main_file: str  # e.g. "pbzip2.cpp", "sql/mysqld.cc"
    kloc: int  # real system size, drives cold-code volume
    seed: int  # determinism for the synthesizer

    @property
    def cold_function_count(self) -> int:
        # ~1 synthesized function per 2 KLOC, at least 2: large systems
        # get visibly larger modules without dwarfing build time.
        return max(2, self.kloc // 2)


PROFILES: dict[str, AppProfile] = {
    "mysql": AppProfile("mysql", "C/C++", "sql/mysqld.cc", 650, 101),
    "httpd": AppProfile("httpd", "C/C++", "server/core.c", 223, 102),
    "memcached": AppProfile("memcached", "C/C++", "memcached.c", 9, 103),
    "sqlite": AppProfile("sqlite", "C/C++", "sqlite3.c", 100, 104),
    "transmission": AppProfile("transmission", "C/C++", "libtransmission/session.c", 60, 105),
    "pbzip2": AppProfile("pbzip2", "C/C++", "pbzip2.cpp", 2, 106),
    "aget": AppProfile("aget", "C/C++", "Aget.c", 1, 107),
    "jdk": AppProfile("jdk", "Java", "java/util/concurrent", 120, 108),
    "derby": AppProfile("derby", "Java", "impl/store/raw/RawStore.java", 140, 109),
    "groovy": AppProfile("groovy", "Java", "runtime/MetaClassImpl.java", 80, 110),
    "dbcp": AppProfile("dbcp", "Java", "dbcp/PoolingDataSource.java", 12, 111),
    "log4j": AppProfile("log4j", "Java", "core/Logger.java", 30, 112),
    "lucene": AppProfile("lucene", "Java", "index/IndexWriter.java", 90, 113),
    # Extension-corpus systems (table 4: condvar/rwlock/sema/barrier bugs).
    "nginx": AppProfile("nginx", "C/C++", "src/event/ngx_event.c", 170, 114),
    "redis": AppProfile("redis", "C/C++", "src/server.c", 130, 115),
    "postgres": AppProfile("postgres", "C/C++", "src/backend/postmaster/postmaster.c", 300, 116),
    "zookeeper": AppProfile("zookeeper", "Java", "server/quorum/QuorumPeer.java", 120, 117),
}


def profile(system: str) -> AppProfile:
    return PROFILES[system]


# -- warm helpers -------------------------------------------------------------


def add_warm_worker(
    b: IRBuilder, name: str, file: str, line: int, spin_iters: int = 3
) -> Function:
    """A small branchy helper: ``i64 name(i64 n)``.

    Loops ``spin_iters`` times doing arithmetic with a conditional per
    iteration plus a ~1.5 us delay — enough control-flow events to emit
    TNT packets and keep the trace's timing intervals tight, cheap
    enough (a few us) not to perturb the workload's dT structure.
    """
    fn = b.begin_function(name, I64, [("n", I64)])
    with b.at_location(file, line):
        acc = b.alloca(I64, "acc")
        b.store(b.param("n"), acc)
        i = b.alloca(I64, "i")
        with b.for_range(i, 0, spin_iters) as iv:
            cur = b.load(acc)
            parity = b.mod(cur, 2)
            is_odd = b.cmp("eq", parity, 1)
            with b.if_else(is_odd) as otherwise:
                tripled = b.mul(b.load(acc), 3)
                b.store(b.add(tripled, 1), acc)
                with otherwise:
                    b.store(b.add(b.load(acc), 7), acc)
            b.delay(1500)
            b.store(b.add(b.load(acc), iv), acc)
        b.ret(b.load(acc))
    return fn


# -- cold-code synthesizer -------------------------------------------------------


def add_cold_code(module: Module, b: IRBuilder, prof: AppProfile) -> int:
    """Synthesize the system's never-executed bulk; returns #functions.

    Shapes are drawn deterministically from the profile seed so every
    build of an app model is identical.  Functions reference each other
    (call chains) and module structs, giving the whole-program points-to
    baseline real work to chew on.
    """
    rng = random.Random(prof.seed)
    count = prof.cold_function_count
    names: list[str] = []
    record = module.add_struct(f"{prof.name}_cold_rec")
    record.set_body(
        [("key", I64), ("value", I64), ("next", PointerType(record))]
    )
    for k in range(count):
        name = f"{prof.name}_cold_{k}"
        shape = rng.choice(("reduce", "walk", "ladder", "chain"))
        line = 2000 + 10 * k
        if shape == "reduce":
            _cold_reduce(b, name, prof.main_file, line, rng)
        elif shape == "walk":
            _cold_walk(b, name, prof.main_file, line, record, rng)
        elif shape == "ladder":
            _cold_ladder(b, name, prof.main_file, line, rng)
        else:
            _cold_chain(b, name, prof.main_file, line, names, rng)
        names.append(name)
    return count


def ptr_self(name: str, module: Module):
    """Pointer to a (possibly still-opaque) named struct."""
    if name in module.structs:
        return PointerType(module.structs[name])
    st = module.add_struct(name)
    return PointerType(st)


def _cold_reduce(b: IRBuilder, name: str, file: str, line: int, rng: random.Random) -> None:
    b.begin_function(name, I64, [("n", I64)])
    with b.at_location(file, line):
        acc = b.alloca(I64, "acc")
        b.store(rng.randint(1, 9), acc)
        i = b.alloca(I64, "i")
        with b.for_range(i, 0, b.param("n")) as iv:
            op = rng.choice(("add", "xor", "mul"))
            b.store(b.binop(op, b.load(acc), b.add(iv, rng.randint(1, 5))), acc)
        b.ret(b.load(acc))


def _cold_walk(b: IRBuilder, name: str, file: str, line: int, record, rng: random.Random) -> None:
    b.begin_function(name, I64, [("head", PointerType(record)), ("limit", I64)])
    with b.at_location(file, line):
        cur = b.alloca(PointerType(record), "cur")
        b.store(b.param("head"), cur)
        total = b.alloca(I64, "total")
        b.store(0, total)
        steps = b.alloca(I64, "steps")

        def cond():
            node = b.load(cur)
            nz = b.cmp("ne", b.cast(node, I64), 0)
            under = b.cmp("lt", b.load(steps), b.param("limit"))
            return b.binop("and", nz, under)

        b.store(0, steps)
        with b.while_(cond):
            node = b.load(cur)
            v = b.load_field(node, "value")
            b.store(b.add(b.load(total), v), total)
            b.store(b.load_field(node, "next"), cur)
            b.store(b.add(b.load(steps), 1), steps)
        b.ret(b.load(total))


def _cold_ladder(b: IRBuilder, name: str, file: str, line: int, rng: random.Random) -> None:
    b.begin_function(name, I64, [("code", I64)])
    with b.at_location(file, line):
        out = b.alloca(I64, "out")
        b.store(0, out)
        rungs = rng.randint(2, 5)
        for r in range(rungs):
            hit = b.cmp("eq", b.param("code"), rng.randint(0, 100))
            with b.if_then(hit):
                b.store(rng.randint(1, 1000), out)
        b.ret(b.load(out))


def _cold_chain(
    b: IRBuilder, name: str, file: str, line: int, names: list[str], rng: random.Random
) -> None:
    b.begin_function(name, I64, [("n", I64)])
    with b.at_location(file, line):
        if not names:
            b.ret(b.param("n"))
            return
        callee = rng.choice(names)
        fn = b.module.function(callee)
        args = []
        for p in fn.params:
            if p.ty == I64:
                args.append(b.param("n"))
            else:
                args.append(b.null(p.ty.pointee))  # type: ignore[attr-defined]
        inner = b.call(callee, args)
        big = b.cmp("gt", inner, 512)
        result = b.alloca(I64, "result")
        b.store(inner, result)
        with b.if_then(big):
            b.store(b.mod(inner, 512), result)
        b.ret(b.load(result))
