"""Sync-primitive bug templates: condvars, rwlocks, semaphores, barriers.

The corpus-expansion counterpart of :mod:`repro.corpus.templates`.  Each
builder injects one bug whose mechanics hinge on a richer primitive than
a plain mutex, following the same structural rules (fences after target
accesses, benign twins on successful paths, quantum-scaled delays):

* ``lost-wakeup`` — a condvar notify races ahead of the wait it was
  meant to wake; the signal has no memory, so the waiter hangs (a WR
  order violation whose failure kind is ``hang``, not a crash);
* ``rw-race`` — a lock-free fast path reads a pointer that the slow
  path clears and re-installs under the write lock: the rwlock protects
  every path but the one that races (RWR atomicity violation);
* ``sema-underflow`` — a producer posts the items-available semaphore
  *before* publishing the item, so the woken consumer can read the
  still-null slot (RW order violation);
* ``barrier-phase`` — a worker's read of the phase result is hoisted
  above its ``barrierwait``, racing the producing thread's store that
  correctly happens before the barrier (RW order violation);
* ``lock-chain`` — three threads run the same acquire-two-locks routine
  with rotated lock pairs (A<B, B<C, C<A): a circular-wait deadlock no
  two-lock inspection can see.

Every target-event line keeps the house convention: the victim's events
at ``L+10``/``L+12``, the rival's at ``L+30``/``L+32``, main's late
write at ``L+40``.
"""

from __future__ import annotations

from repro.corpus.registry import EventLocator, GroundTruth
from repro.corpus.templates import US, BugShape, _fence, _new_app_module, _q, _rng
from repro.ir.types import BARRIER, COND, I64, LOCK, RWLOCK, SEMA, VOID, ptr


# ---------------------------------------------------------------------------
# Order violation, WR shape on a condvar: lost wakeup (hang)
# ---------------------------------------------------------------------------


def build_lost_wakeup(shape: BugShape):
    """Main signals completion whether or not the worker is waiting yet.

    The worker's wait is naked — no predicate re-check before blocking —
    so a notify that fires first is simply dropped and the worker blocks
    forever.  The failing order is notify (W) before wait (R): the same
    WR shape as a use-after-free, except the manifestation is a hang
    anchored at the blocked ``condwait``.
    """
    m, b, warm = _new_app_module(shape)
    S = m.add_struct(
        shape.struct_name, [(shape.target_field, I64), (shape.aux_field, COND)]
    )
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file

    b.begin_function(shape.worker_name, VOID, [("d_wait", I64), ("d_use", I64)])
    b.call(warm, [b.i64(2)])
    b.delay(b.param("d_wait"))
    s = b.load(G, "s")
    cv = b.fieldaddr(s, shape.aux_field, "cv")
    with b.at_location(f, L + 10):
        b.cond_wait(cv)  # R target: hangs when the notify already fired
    _fence(b)
    b.delay(b.param("d_use"))
    rp = b.fieldaddr(s, shape.target_field, "rp")
    with b.at_location(f, L + 12):
        v = b.load(rp, "v")
    ok = b.cmp("ge", v, 0)
    with b.if_then(ok):
        pass
    b.ret()

    b.begin_function("main", VOID, [("d_sig", I64), ("d_wait", I64), ("d_use", I64)])
    res = b.malloc(S, name="res")
    cv0 = b.fieldaddr(res, shape.aux_field, "cv0")
    b.cond_init(cv0)
    b.store_field(13, res, shape.target_field)
    b.store(res, G)
    _fence(b)
    t = b.spawn(shape.worker_name, [b.param("d_wait"), b.param("d_use")], "t")
    j = b.alloca(I64, "j")
    with b.for_range(j, 0, 3) as jv:
        b.call(warm, [jv])
    b.delay(b.param("d_sig"))  # the work being signalled about
    s2 = b.load(G, "s2")
    cv2 = b.fieldaddr(s2, shape.aux_field, "cv2")
    with b.at_location(f, L + 40):
        b.cond_notify(cv2)  # W target: lost when nobody waits yet
    _fence(b)
    b.join(t)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        d_sig = 6 * q + rng.randint(-4 * US, 4 * US)
        k = rng.choice([-3, -2, -1, 1, 2])  # k > 0: the notify fires first
        d_wait = d_sig + k * q
        return (d_sig, max(d_wait, q), 2 * q)

    truth = GroundTruth(
        kind="order-violation",
        pattern="WR",
        events=[EventLocator(f, L + 40, "W"), EventLocator(f, L + 10, "R")],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Atomicity violation, RWR shape around a reader-writer lock
# ---------------------------------------------------------------------------


def build_rw_race(shape: BugShape):
    """A lock-free fast path races the wrlock-protected refresh.

    The cache entry is cleared and re-installed under the write lock,
    and the slow path reads it under the read lock — but the hot-path
    reader skips the rwlock entirely (that *is* the bug), so the clear
    can land between its check and its use.
    """
    m, b, warm = _new_app_module(shape)
    Buf = m.add_struct(f"{shape.struct_name}Entry", [("c", I64)])
    S = m.add_struct(
        shape.struct_name,
        [(shape.target_field, ptr(Buf)), (shape.aux_field, I64), ("rw", RWLOCK)],
    )
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file

    # Refresh routine: clear + re-install, correctly under the wrlock.
    # Called benignly by main at startup and racily by the rival thread.
    b.begin_function(f"{shape.rival_name}_once", VOID, [("d_clear", I64)])
    s = b.load(G, "s")
    rw = b.fieldaddr(s, "rw", "rw")
    b.rw_wrlock(rw)
    ip = b.fieldaddr(s, shape.target_field, "ip")
    with b.at_location(f, L + 30):
        b.store(b.null(Buf), ip)  # W: the clear
    _fence(b)
    b.delay(b.param("d_clear"))
    nb = b.malloc(Buf, name="nb")
    b.store_field(9, nb, "c")
    with b.at_location(f, L + 32):
        b.store(nb, ip)  # re-install
    _fence(b)
    b.rw_unlock(rw)
    b.ret()

    b.begin_function(shape.worker_name, VOID, [("n", I64), ("d_win", I64), ("d_idle", I64)])
    b.call(warm, [b.i64(2)])
    i = b.alloca(I64, "i")
    with b.for_range(i, 0, b.param("n")):
        s = b.load(G, "s")
        ip = b.fieldaddr(s, shape.target_field, "ip")
        with b.at_location(f, L + 10):
            p1 = b.load(ip, "p1")  # R1: the unlocked fast-path check
        nz = b.cmp("ne", b.cast(p1, I64), 0)
        with b.if_then(nz):
            b.delay(b.param("d_win"))  # check-to-use window
            with b.at_location(f, L + 12):
                p2 = b.load(ip, "p2")  # R2: the use (re-read)
            _fence(b)
            cp = b.fieldaddr(p2, "c", "cp")
            with b.at_location(f, L + 13):
                v = b.load(cp, "v")  # crashes when the refresh cleared in between
            pos = b.cmp("ge", v, 0)
            with b.if_then(pos):
                pass
        # benign slow path: stats read, correctly under the rdlock
        rw = b.fieldaddr(s, "rw", "rw")
        b.rw_rdlock(rw)
        hp = b.fieldaddr(s, shape.aux_field, "hp")
        with b.at_location(f, L + 16):
            h = b.load(hp, "h")
        lo = b.cmp("ge", h, 0)
        with b.if_then(lo):
            pass
        b.rw_unlock(rw)
        b.delay(b.param("d_idle"))
    b.ret()

    b.begin_function(
        shape.rival_name, VOID, [("n", I64), ("off", I64), ("d_clear", I64), ("d_per", I64)]
    )
    b.call(warm, [b.i64(1)])
    b.delay(b.param("off"))
    k = b.alloca(I64, "k")
    with b.for_range(k, 0, b.param("n")):
        b.call(f"{shape.rival_name}_once", [b.param("d_clear")])
        b.delay(b.param("d_per"))
    b.ret()

    b.begin_function(
        "main",
        VOID,
        [("n", I64), ("d_win", I64), ("d_idle", I64), ("off", I64), ("d_clear", I64), ("d_per", I64)],
    )
    s = b.malloc(S, name="st")
    rw0 = b.fieldaddr(s, "rw", "rw0")
    b.rw_init(rw0)
    buf = b.malloc(Buf, name="entry0")
    b.store_field(5, buf, "c")
    b.store_field(buf, s, shape.target_field)
    b.store_field(0, s, shape.aux_field)
    b.store(s, G)
    _fence(b)
    b.call(f"{shape.rival_name}_once", [b.i64(2 * US)])  # benign refresh pass
    tr = b.spawn(shape.worker_name, [b.param("n"), b.param("d_win"), b.param("d_idle")], "tr")
    tw = b.spawn(
        shape.rival_name,
        [b.param("n"), b.param("off"), b.param("d_clear"), b.param("d_per")],
        "tw",
    )
    b.join(tr)
    b.join(tw)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        n = shape.iters
        d_win = 2 * q
        d_idle = q
        cycle = d_win + d_idle  # reader period ~ 3q
        slot = rng.choice([0.5, 1.5, 2.5])  # 2.5 -> idle phase (benign)
        k_cycle = rng.randint(0, n - 2)
        off = int(k_cycle * cycle + slot * q) + rng.randint(-3 * US, 3 * US)
        d_clear = 3 * q  # the re-install lands well past the window
        d_per = 3 * cycle
        return (n, d_win, d_idle, off, d_clear, d_per)

    truth = GroundTruth(
        kind="atomicity-violation",
        pattern="RWR",
        events=[
            EventLocator(f, L + 10, "R"),
            EventLocator(f, L + 30, "W"),
            EventLocator(f, L + 12, "R"),
        ],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Order violation, RW shape on a semaphore: post-before-publish
# ---------------------------------------------------------------------------


def build_sem_underflow(shape: BugShape):
    """The producer posts the items semaphore before storing the item.

    The semaphore correctly meters *how many* items are available, but
    the post was hoisted above the publication store, so the consumer it
    wakes can read the slot while it is still null — the classic
    "semaphore counts permits, not data" misunderstanding.
    """
    m, b, warm = _new_app_module(shape)
    S = m.add_struct(
        shape.struct_name, [(shape.target_field, I64), (shape.aux_field, I64)]
    )
    G = m.add_global(shape.global_name, ptr(S))
    SEM = m.add_global(f"{shape.global_name}_items", SEMA)
    L = shape.base_line
    f = shape.file

    b.begin_function(shape.worker_name, VOID, [("d_poll", I64), ("d_use", I64)])
    b.call(warm, [b.i64(3)])
    with b.at_location(f, L + 8):
        b.sem_wait(SEM)  # wakes as soon as the producer posts
    _fence(b)
    b.delay(b.param("d_poll"))
    with b.at_location(f, L + 10):
        p = b.load(G, "p")  # R target: may observe the unpublished null
    _fence(b)
    b.delay(b.param("d_use"))
    c = b.fieldaddr(p, shape.target_field, "c")
    with b.at_location(f, L + 12):
        v = b.load(c, "v")  # deferred crash when p was null
    ok = b.cmp("ge", v, 0)
    with b.if_then(ok):
        pass
    b.ret()

    b.begin_function(
        "main", VOID, [("d_pre", I64), ("d_gap", I64), ("d_poll", I64), ("d_use", I64)]
    )
    b.sem_init(SEM, 0)
    _fence(b)
    t = b.spawn(shape.worker_name, [b.param("d_poll"), b.param("d_use")], "t")
    j = b.alloca(I64, "j")
    with b.for_range(j, 0, 3) as jv:
        b.call(warm, [jv])
    b.delay(b.param("d_pre"))
    with b.at_location(f, L + 30):
        b.sem_post(SEM)  # the hoisted post: item announced...
    _fence(b)
    b.delay(b.param("d_gap"))  # ...but built only now
    res = b.malloc(S, name="res")
    b.store_field(11, res, shape.target_field)
    b.store_field(2, res, shape.aux_field)
    with b.at_location(f, L + 40):
        b.store(res, G)  # W target: the (too late) publication
    _fence(b)
    b.call(warm, [b.i64(1)])
    b.join(t)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        d_pre = 6 * q  # the consumer is parked on the semaphore by then
        d_gap = 4 * q + rng.randint(-2 * US, 2 * US)
        k = rng.choice([-3, -2, -1, 1, 2])  # k < 0: the read wins the race
        d_poll = d_gap + k * q
        # d_use must exceed |k|*q so the deferred deref always lands
        # after the producer's (unlocated) init stores: the only pattern
        # alive at the crash site is then the true load/publish race.
        return (d_pre, d_gap, max(d_poll, q), 5 * q)

    truth = GroundTruth(
        kind="order-violation",
        pattern="RW",
        events=[EventLocator(f, L + 10, "R"), EventLocator(f, L + 40, "W")],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Order violation, RW shape at a barrier: read hoisted above the wait
# ---------------------------------------------------------------------------


def build_barrier_phase(shape: BugShape):
    """A worker reads the phase result before its own barrier arrival.

    The producer correctly stores the result and then arrives; the
    consumer's load was hoisted above its ``barrierwait`` (phase-ordered
    code motion), so the stale pointer it grabbed races the store.  Both
    threads still reach the barrier on every path — successful runs
    complete normally, and the failure is a crash after the barrier,
    never a hang at it.
    """
    m, b, warm = _new_app_module(shape)
    S = m.add_struct(
        shape.struct_name, [(shape.target_field, I64), (shape.aux_field, I64)]
    )
    G = m.add_global(shape.global_name, ptr(S))
    BAR = m.add_global(f"{shape.global_name}_phase", BARRIER)
    L = shape.base_line
    f = shape.file

    b.begin_function(shape.rival_name, VOID, [("d_prod", I64)])
    b.call(warm, [b.i64(1)])
    b.delay(b.param("d_prod"))  # computing the phase result
    res = b.malloc(S, name="res")
    b.store_field(21, res, shape.target_field)
    b.store_field(3, res, shape.aux_field)
    with b.at_location(f, L + 40):
        b.store(res, G)  # W target: publish, correctly before arriving
    _fence(b)
    with b.at_location(f, L + 42):
        b.barrier_wait(BAR)
    _fence(b)
    b.ret()

    b.begin_function(shape.worker_name, VOID, [("d_pre", I64), ("d_use", I64)])
    b.call(warm, [b.i64(2)])
    b.delay(b.param("d_pre"))
    with b.at_location(f, L + 10):
        p = b.load(G, "p")  # R target: hoisted above the barrier (the bug)
    _fence(b)
    with b.at_location(f, L + 14):
        b.barrier_wait(BAR)
    _fence(b)
    b.delay(b.param("d_use"))
    c = b.fieldaddr(p, shape.target_field, "c")
    with b.at_location(f, L + 12):
        v = b.load(c, "v")  # deferred crash: p predates the barrier
    ok = b.cmp("ge", v, 0)
    with b.if_then(ok):
        pass
    b.ret()

    b.begin_function("main", VOID, [("d_prod", I64), ("d_pre", I64), ("d_use", I64)])
    b.barrier_init(BAR, 2)
    _fence(b)
    tp = b.spawn(shape.rival_name, [b.param("d_prod")], "tp")
    tc = b.spawn(shape.worker_name, [b.param("d_pre"), b.param("d_use")], "tc")
    j = b.alloca(I64, "j")
    with b.for_range(j, 0, 3) as jv:
        b.call(warm, [jv])
    b.join(tp)
    b.join(tc)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        d_prod = 5 * q + rng.randint(-3 * US, 3 * US)
        k = rng.choice([-3, -2, -1, 1, 2])  # k < 0: the read wins the race
        d_pre = d_prod + k * q
        return (d_prod, max(d_pre, q), 2 * q)

    truth = GroundTruth(
        kind="order-violation",
        pattern="RW",
        events=[EventLocator(f, L + 10, "R"), EventLocator(f, L + 40, "W")],
    )
    return m, truth, workload


# ---------------------------------------------------------------------------
# Deadlock: three-lock circular chain through one shared routine
# ---------------------------------------------------------------------------


def build_lock_chain(shape: BugShape):
    """Three threads, one routine, rotated lock pairs: A<B, B<C, C<A.

    Unlike the two-thread AB-BA shape, every *pair* of threads here uses
    a consistent order — only the full three-edge cycle deadlocks, so
    pairwise lock-order review passes the code.  All threads run the
    same function, which also makes the race symmetric: the validated
    counterfactual schedule is whole-routine serialization.
    """
    m, b, warm = _new_app_module(shape)
    S = m.add_struct(
        shape.struct_name,
        [
            ("m_a", LOCK),
            ("m_b", LOCK),
            ("m_c", LOCK),
            (shape.target_field, I64),
            (shape.aux_field, I64),
        ],
    )
    G = m.add_global(shape.global_name, ptr(S))
    L = shape.base_line
    f = shape.file

    b.begin_function(
        shape.worker_name,
        VOID,
        [
            ("first", ptr(LOCK)),
            ("second", ptr(LOCK)),
            ("n", I64),
            ("off", I64),
            ("d_hold", I64),
            ("d_idle", I64),
        ],
    )
    b.call(warm, [b.i64(2)])
    b.delay(b.param("off"))
    i = b.alloca(I64, "i")
    with b.for_range(i, 0, b.param("n")):
        with b.at_location(f, L + 10):
            b.lock(b.param("first"))  # hold this shard...
        _fence(b)
        b.delay(b.param("d_hold"))
        with b.at_location(f, L + 12):
            b.lock(b.param("second"))  # ...then attempt the next one over
        _fence(b)
        s = b.load(G, "s")
        tp = b.fieldaddr(s, shape.target_field, "tp")
        b.store(b.add(b.load(tp), 1), tp)
        b.unlock(b.param("second"))
        b.unlock(b.param("first"))
        _fence(b)
        b.delay(b.param("d_idle"))
    b.ret()

    b.begin_function(
        "main",
        VOID,
        [("n", I64), ("d_hold", I64), ("d_idle", I64), ("off1", I64), ("off2", I64), ("off3", I64)],
    )
    s = b.malloc(S, name="tbl")
    la = b.fieldaddr(s, "m_a", "la")
    lb = b.fieldaddr(s, "m_b", "lb")
    lc = b.fieldaddr(s, "m_c", "lc")
    b.lock_init(la)
    b.lock_init(lb)
    b.lock_init(lc)
    b.store_field(0, s, shape.target_field)
    b.store_field(0, s, shape.aux_field)
    b.store(s, G)
    _fence(b)
    shared = [b.param("n"), b.param("d_hold"), b.param("d_idle")]
    t1 = b.spawn(shape.worker_name, [la, lb, shared[0], b.param("off1"), *shared[1:]], "t1")
    t2 = b.spawn(shape.worker_name, [lb, lc, shared[0], b.param("off2"), *shared[1:]], "t2")
    t3 = b.spawn(shape.worker_name, [lc, la, shared[0], b.param("off3"), *shared[1:]], "t3")
    b.join(t1)
    b.join(t2)
    b.join(t3)
    b.ret()
    m.finalize()

    q = _q(shape)

    def workload(seed: int) -> tuple:
        rng = _rng(shape, seed)
        n = max(2, shape.iters - 3)
        d_hold = 2 * q
        d_idle = 3 * q
        # Each thread starts its episode in one of two phase slots; the
        # cycle closes only when all three pick the same slot (~1 in 4).
        offs = [
            int(rng.choice([0.5, 3.0]) * q) + rng.randint(-3 * US, 3 * US)
            for _ in range(3)
        ]
        return (n, d_hold, d_idle, *offs)

    truth = GroundTruth(
        kind="deadlock",
        pattern="deadlock",
        events=[
            EventLocator(f, L + 10, "L"),  # one thread's hold...
            EventLocator(f, L + 10, "L"),  # ...its neighbour's hold...
            EventLocator(f, L + 12, "L"),  # ...the first attempt...
            EventLocator(f, L + 12, "L"),  # ...and the one that closes the cycle
        ],
    )
    return m, truth, workload


# Template key -> (builder, primitives exercised).  Keys are disjoint
# from ``templates.TEMPLATES`` (those stay stable for the check
# generator's kind vocabulary); ``corpus.make_spec`` consults the merged
# view.
PRIMITIVE_TEMPLATES = {
    "lost-wakeup": build_lost_wakeup,
    "rw-race": build_rw_race,
    "sema-underflow": build_sem_underflow,
    "barrier-phase": build_barrier_phase,
    "lock-chain": build_lock_chain,
}

# The primitive vocabulary each template class exercises (the
# ``BugSpec.primitives`` value app modules should pass to make_spec).
TEMPLATE_PRIMITIVES = {
    "lost-wakeup": ("condvar",),
    "rw-race": ("rwlock",),
    "sema-underflow": ("sema",),
    "barrier-phase": ("barrier",),
    "lock-chain": ("mutex",),
}
