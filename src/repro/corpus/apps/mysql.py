"""MySQL application model (650 KLOC profile): 8 corpus bugs.

The bug ids echo real MySQL bug-tracker entries used by prior
concurrency-bug work (Gist, CTrigger, PCT): #169 (binlog rotation
use-after-close), #791 (slave reads ``active_mi`` before init), #644
(HASH search/delete race), #3596 (``THD::proc_info`` cleared between
check and use), #12848 (binlog stats torn update), #5268 (query cache
flag overwrite), #614 (double release of a closed table handle) and
#2011 (log/index mutex cycle).
"""

from repro.corpus import make_spec

make_spec(
    "mysql", "mysql-2011", 1, "deadlock", 820,
    "LOCK_log vs LOCK_index acquired in opposite orders by rotation and purge",
    file="sql/log.cc", struct_name="MYSQL_LOG", target_field="rotations",
    aux_field="purges", global_name="g_mysql_log", worker_name="rotate_binlog",
    rival_name="purge_logs", helper_name="mysql_scan_log_entry", base_line=1400,
)

make_spec(
    "mysql", "mysql-169", 2, "WR", 540,
    "binlog closed and freed by rotation while an insert thread still writes it",
    file="sql/log.cc", struct_name="IO_CACHE", target_field="write_pos",
    aux_field="end_of_file", global_name="g_binlog_cache", worker_name="write_binlog_entry",
    rival_name="rotate_and_close", helper_name="mysql_format_event", base_line=820,
    snorlax_eval=True,
)

make_spec(
    "mysql", "mysql-791", 2, "RW", 380,
    "slave SQL thread reads active_mi before the master-info is initialized",
    file="sql/slave.cc", struct_name="MasterInfo", target_field="host",
    aux_field="port", global_name="g_active_mi", worker_name="slave_sql_thread",
    rival_name="init_master_info", helper_name="mysql_parse_relay_event", base_line=2600,
    snorlax_eval=True,
)

make_spec(
    "mysql", "mysql-614", 2, "WW", 460,
    "two client threads double-release a closed table share",
    file="sql/sql_base.cc", struct_name="TableShare", target_field="closed",
    aux_field="version", global_name="g_table_share", worker_name="close_table_share",
    rival_name="close_table_share_alias", helper_name="mysql_flush_table", base_line=3100,
)

make_spec(
    "mysql", "mysql-644", 3, "RWR", 330,
    "HASH bucket pointer re-read after a concurrent delete invalidated it",
    file="mysys/hash.c", struct_name="HashSlot", target_field="bucket",
    aux_field="records", global_name="g_hash", worker_name="hash_search",
    rival_name="hash_delete", helper_name="mysql_hash_key", base_line=440,
    snorlax_eval=True,
)

make_spec(
    "mysql", "mysql-3596", 3, "RWR", 260,
    "THD::proc_info cleared by the owner between another thread's check and use",
    file="sql/sql_class.cc", struct_name="THD", target_field="proc_info",
    aux_field="query_id", global_name="g_thd", worker_name="show_processlist",
    rival_name="clear_proc_info", helper_name="mysql_render_status", base_line=150,
    snorlax_eval=True,
)

make_spec(
    "mysql", "mysql-12848", 3, "WRW", 700,
    "binlog group-commit counter updated in two steps, observed torn by stats",
    file="sql/log.cc", struct_name="BinlogStats", target_field="commits",
    aux_field="group_size", global_name="g_binlog_stats", worker_name="group_commit",
    rival_name="report_status", helper_name="mysql_sync_binlog", base_line=5200,
)

make_spec(
    "mysql", "mysql-5268", 3, "WWR", 440,
    "query-cache invalidation flag staged by one thread, clobbered by another",
    file="sql/sql_cache.cc", struct_name="QueryCache", target_field="flush_state",
    aux_field="hits", global_name="g_query_cache", worker_name="cache_invalidate",
    rival_name="cache_insert", helper_name="mysql_hash_query", base_line=980,
)
