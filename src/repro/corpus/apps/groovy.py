"""Apache Groovy application model (Java; 80 KLOC profile): 4 corpus bugs."""

from repro.corpus import make_spec

make_spec(
    "groovy", "groovy-4736", 1, "deadlock", 980,
    "metaclass registry lock vs class-info lock in opposite orders",
    file="runtime/metaclass/MetaClassRegistryImpl.java", struct_name="MetaRegistry",
    target_field="lookups", aux_field="updates", global_name="g_meta_registry",
    worker_name="get_meta_class", rival_name="set_meta_class",
    helper_name="groovy_resolve_category", base_line=260,
)

make_spec(
    "groovy", "groovy-7590", 2, "WR", 1350,
    "class-info cache entry evicted and freed while a call-site still reads it",
    file="reflection/ClassInfo.java", struct_name="ClassInfoEntry", target_field="cachedClass",
    aux_field="version", global_name="g_class_info", worker_name="call_site_invoke",
    rival_name="cache_evict_entry", helper_name="groovy_select_method", base_line=180,
)

make_spec(
    "groovy", "groovy-5198", 3, "RWR", 760,
    "method cache slot re-read after a concurrent metaclass update invalidated it",
    file="runtime/MetaClassImpl.java", struct_name="MethodCache", target_field="slot",
    aux_field="misses", global_name="g_method_cache", worker_name="invoke_method",
    rival_name="invalidate_cache", helper_name="groovy_hash_signature", base_line=940,
)

make_spec(
    "groovy", "groovy-8123", 3, "WWR", 2100,
    "AST transform phase flag staged by the compiler, clobbered by a parallel unit",
    file="control/CompilationUnit.java", struct_name="PhaseState", target_field="phase",
    aux_field="errors", global_name="g_phase_state", worker_name="run_phase_ops",
    rival_name="parallel_unit_advance", helper_name="groovy_apply_transform", base_line=520,
)
