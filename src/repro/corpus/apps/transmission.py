"""Transmission application model (60 KLOC profile): 4 corpus bugs.

#1818 is the session-bandwidth read-before-init crash from the Gist and
Snorlax evaluations; the others model the announcer teardown race
(#2789), the piece-availability check/invalidate race (#3049) and the
peer-stat torn update (#4024).
"""

from repro.corpus import make_spec

make_spec(
    "transmission", "transmission-1818", 2, "RW", 560,
    "event thread dereferences session->bandwidth before tr_sessionInit publishes it",
    file="libtransmission/session.c", struct_name="TrSession", target_field="bandwidth",
    aux_field="peer_limit", global_name="g_session", worker_name="libevent_thread",
    rival_name="tr_session_init", helper_name="tr_event_dispatch", base_line=720,
    snorlax_eval=True,
)

make_spec(
    "transmission", "transmission-2789", 2, "WR", 980,
    "announcer freed during shutdown while the timer callback still reads it",
    file="libtransmission/announcer.c", struct_name="TrAnnouncer", target_field="next_announce",
    aux_field="tier_count", global_name="g_announcer", worker_name="announce_timer_cb",
    rival_name="announcer_shutdown", helper_name="tr_build_announce_url", base_line=1510,
)

make_spec(
    "transmission", "transmission-3049", 3, "RWR", 520,
    "piece availability pointer re-read after the swarm recomputed and swapped it",
    file="libtransmission/peer-mgr.c", struct_name="SwarmPieces", target_field="availability",
    aux_field="piece_count", global_name="g_swarm", worker_name="choose_piece_to_request",
    rival_name="rebuild_availability", helper_name="tr_score_peers", base_line=880,
)

make_spec(
    "transmission", "transmission-4024", 3, "WRW", 430,
    "peer transfer stats updated in two writes, snapshotted torn by the UI poll",
    file="libtransmission/peer-io.c", struct_name="PeerStats", target_field="bytes_down",
    aux_field="speed", global_name="g_peer_stats", worker_name="peer_io_read_done",
    rival_name="ui_stat_poll", helper_name="tr_rate_update", base_line=330,
)
