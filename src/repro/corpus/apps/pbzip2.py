"""pbzip2 application model (2 KLOC profile): 2 corpus bugs.

The famous pbzip2 crash (no tracker id; "pbzip2-n/a") is the canonical
use-after-free order violation: main tears down the FIFO queue while a
consumer thread still dereferences it.  pbzip2-2 models the
block-counter check/use race in the output reorderer.
"""

from repro.corpus import make_spec

make_spec(
    "pbzip2", "pbzip2-n/a", 2, "WR", 420,
    "main frees the FIFO queue at exit while a consumer still reads fifo->head",
    file="pbzip2.cpp", struct_name="Queue", target_field="head",
    aux_field="qsize", global_name="g_fifo", worker_name="consumer_decompress",
    rival_name="main_teardown", helper_name="pbzip2_crc_block", base_line=890,
    snorlax_eval=True,
)

make_spec(
    "pbzip2", "pbzip2-2", 3, "RWR", 360,
    "output block pointer re-read after the writer thread consumed and cleared it",
    file="pbzip2.cpp", struct_name="OutSlot", target_field="block",
    aux_field="seq", global_name="g_out_slot", worker_name="reorder_output",
    rival_name="file_writer", helper_name="pbzip2_write_chunk", base_line=1210,
)
