"""postgres application model (300 KLOC profile): 4 extension-corpus bugs.

One of each sync-primitive class: the walwriter's lost latch wakeup,
the relcache fast path racing a wrlock-protected invalidation, a
parallel-worker slot semaphore posted before the slot store, and the
parallel-scan barrier whose result read was hoisted above the wait.
"""

from repro.corpus import make_spec

make_spec(
    "postgres", "postgres-9821", 4, "lost-wakeup", 480,
    "walwriter latch is set before the writer re-blocks on wal_flush_cond; the signal has no memory",
    file="src/backend/postmaster/walwriter.c", struct_name="WalFlushState", target_field="flushed_lsn",
    aux_field="wal_flush_cond", global_name="g_wal_state", worker_name="walwriter_main_loop",
    rival_name="xlog_flush_request", helper_name="pg_clock_sweep", base_line=244,
)

make_spec(
    "postgres", "postgres-7514", 4, "rw-race", 400,
    "relcache fast path reads the entry pointer lock-free while invalidation clears it under the wrlock",
    file="src/backend/utils/cache/relcache.c", struct_name="RelCache", target_field="entry",
    aux_field="generation", global_name="g_relcache", worker_name="relation_open_fast",
    rival_name="relcache_invalidate", helper_name="pg_hash_search", base_line=1310,
)

make_spec(
    "postgres", "postgres-6412", 4, "sema-underflow", 340,
    "launcher posts the worker-slot semaphore before publishing the slot; the worker reads a null BgWorker",
    file="src/backend/postmaster/bgworker.c", struct_name="WorkerSlot", target_field="worker",
    aux_field="pid", global_name="g_bgw_slot", worker_name="bgworker_entry",
    rival_name="register_background_worker", helper_name="pg_shmem_attach", base_line=520,
)

make_spec(
    "postgres", "postgres-11929", 4, "barrier-phase", 360,
    "parallel scan reads the phase result before its own barrier arrival; the load was hoisted above the wait",
    file="src/backend/access/nbtree/nbtsort.c", struct_name="ScanPhase", target_field="result",
    aux_field="nparticipants", global_name="g_scan_phase", worker_name="parallel_scan_worker",
    rival_name="leader_fill_phase", helper_name="pg_tuplesort_step", base_line=780,
)
