"""App models: importing this package registers all 67 corpus bugs."""

from repro.corpus.apps import (  # noqa: F401
    aget,
    dbcp,
    derby,
    groovy,
    httpd,
    jdk,
    log4j,
    lucene,
    memcached,
    mysql,
    nginx,
    pbzip2,
    postgres,
    redis,
    sqlite,
    transmission,
    zookeeper,
)
