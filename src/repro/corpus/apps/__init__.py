"""App models: importing this package registers all 54 corpus bugs."""

from repro.corpus.apps import (  # noqa: F401
    aget,
    dbcp,
    derby,
    groovy,
    httpd,
    jdk,
    log4j,
    lucene,
    memcached,
    mysql,
    pbzip2,
    sqlite,
    transmission,
)
