"""Apache Commons DBCP application model (Java; 12 KLOC profile): 4 bugs."""

from repro.corpus import make_spec

make_spec(
    "dbcp", "dbcp-44", 1, "deadlock", 560,
    "pool monitor lock vs connection lock acquired in opposite orders by borrow and evict",
    file="dbcp/AbandonedObjectPool.java", struct_name="ObjectPool", target_field="borrows",
    aux_field="evictions", global_name="g_pool", worker_name="borrow_object",
    rival_name="evictor_sweep", helper_name="dbcp_validate_conn", base_line=90,
)

make_spec(
    "dbcp", "dbcp-270", 2, "RW", 640,
    "caller reads the datasource delegate before the factory publishes it",
    file="dbcp/PoolingDataSource.java", struct_name="DataSourceState", target_field="delegate",
    aux_field="timeout", global_name="g_datasource", worker_name="get_connection",
    rival_name="factory_init", helper_name="dbcp_parse_url", base_line=150,
)

make_spec(
    "dbcp", "dbcp-65", 3, "RWR", 390,
    "idle-object list head re-read after the evictor unlinked it",
    file="pool/GenericObjectPool.java", struct_name="IdleList", target_field="head",
    aux_field="idleCount", global_name="g_idle_list", worker_name="borrow_idle",
    rival_name="evict_idle", helper_name="dbcp_test_on_borrow", base_line=480,
)

make_spec(
    "dbcp", "dbcp-398", 3, "WWR", 830,
    "active-count staged during close, clobbered by a concurrent borrow",
    file="pool/GenericObjectPool.java", struct_name="PoolCounters", target_field="active",
    aux_field="maxActive", global_name="g_pool_counters", worker_name="close_pool",
    rival_name="borrow_increment", helper_name="dbcp_notify_waiters", base_line=620,
)
