"""zookeeper application model (120 KLOC profile): 3 extension-corpus bugs.

The commit-processor lost wakeup (notify lands before the queue drainer
waits), the session-tracker read/write-lock race on a lock-free expiry
check, and the quorum-election barrier whose vote read was hoisted
above the round barrier.
"""

from repro.corpus import make_spec

make_spec(
    "zookeeper", "zookeeper-1270", 4, "lost-wakeup", 520,
    "commit processor notifies committedRequests before the drainer blocks on the queue condvar",
    file="server/quorum/CommitProcessor.java", struct_name="CommitQueue", target_field="committed",
    aux_field="queue_cond", global_name="g_commit_queue", worker_name="commit_processor_run",
    rival_name="commit_request", helper_name="zk_serialize_txn", base_line=164,
)

make_spec(
    "zookeeper", "zookeeper-2029", 4, "rw-race", 300,
    "session tracker's lock-free expiry check races the wrlock-protected session bucket swap",
    file="server/SessionTrackerImpl.java", struct_name="SessionBucket", target_field="session",
    aux_field="expiry", global_name="g_session_bucket", worker_name="touch_session_fast",
    rival_name="expire_session_bucket", helper_name="zk_next_expiry_time", base_line=228,
)

make_spec(
    "zookeeper", "zookeeper-3006", 4, "barrier-phase", 420,
    "election round reads the tallied vote before its own barrier arrival, racing the leader's store",
    file="server/quorum/FastLeaderElection.java", struct_name="VoteRound", target_field="vote",
    aux_field="round", global_name="g_vote_round", worker_name="election_follower",
    rival_name="election_leader_tally", helper_name="zk_validate_vote", base_line=612,
)
