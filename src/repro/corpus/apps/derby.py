"""Apache Derby application model (Java; 140 KLOC profile): 4 corpus bugs."""

from repro.corpus import make_spec

make_spec(
    "derby", "derby-1573", 1, "deadlock", 2400,
    "raw-store container lock vs page latch acquired in opposite orders",
    file="impl/store/raw/data/BaseContainer.java", struct_name="ContainerHandle",
    target_field="opens", aux_field="latches", global_name="g_container",
    worker_name="open_container", rival_name="checkpoint_pages",
    helper_name="derby_format_page", base_line=220,
)

make_spec(
    "derby", "derby-5561", 2, "RW", 1750,
    "connection reads the database context before boot publishes it",
    file="impl/db/BasicDatabase.java", struct_name="DbContext", target_field="store",
    aux_field="locale", global_name="g_db_context", worker_name="embed_connection",
    rival_name="boot_database", helper_name="derby_parse_attributes", base_line=130,
)

make_spec(
    "derby", "derby-2861", 3, "RWR", 2900,
    "lock-table entry re-read after the deadlock detector aborted and removed it",
    file="impl/services/locks/LockSet.java", struct_name="LockEntry", target_field="control",
    aux_field="holders", global_name="g_lock_set", worker_name="lock_object",
    rival_name="abort_waiter", helper_name="derby_hash_lockable", base_line=410,
)

make_spec(
    "derby", "derby-4129", 3, "WRW", 1500,
    "transaction-table commit LSN written in two steps, read torn by backup",
    file="impl/store/raw/xact/XactFactory.java", struct_name="XactTable", target_field="commitLSN",
    aux_field="txnCount", global_name="g_xact_table", worker_name="commit_transaction",
    rival_name="online_backup_scan", helper_name="derby_flush_log", base_line=700,
)
