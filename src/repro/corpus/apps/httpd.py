"""Apache httpd application model (223 KLOC profile): 5 corpus bugs.

Ids echo the real tracker entries: #25520 (buffered log writer restores
a stale buffer pointer), #21287 (mod_mem_cache object cleaned up twice),
#42031 (worker/listener mutex cycle), #45605 (scoreboard slot reused
before the child publishes it), #46215 (connection-count staging race).
"""

from repro.corpus import make_spec

make_spec(
    "httpd", "httpd-42031", 1, "deadlock", 650,
    "accept mutex vs scoreboard mutex taken in opposite orders on graceful restart",
    file="server/mpm/worker/worker.c", struct_name="WorkerPool", target_field="accepts",
    aux_field="restarts", global_name="g_worker_pool", worker_name="listener_thread",
    rival_name="graceful_restart", helper_name="httpd_poll_sockets", base_line=900,
)

make_spec(
    "httpd", "httpd-21287", 2, "WW", 520,
    "mod_mem_cache: two threads pass the cleanup check and both free the object",
    file="modules/cache/mod_mem_cache.c", struct_name="CacheObject", target_field="cleanup",
    aux_field="refcount", global_name="g_cache_obj", worker_name="decrement_refcount",
    rival_name="decrement_refcount_alias", helper_name="httpd_cache_hash", base_line=600,
    snorlax_eval=True,
)

make_spec(
    "httpd", "httpd-45605", 2, "RW", 430,
    "request thread reads a scoreboard slot before the child initializes it",
    file="server/scoreboard.c", struct_name="ScoreboardSlot", target_field="status",
    aux_field="generation", global_name="g_scoreboard", worker_name="status_handler",
    rival_name="child_init_slot", helper_name="httpd_format_status", base_line=310,
)

make_spec(
    "httpd", "httpd-25520", 3, "RWW", 480,
    "buffered log writer saves/restores outbuf non-atomically across a flush",
    file="modules/loggers/mod_log_config.c", struct_name="BufferedLog", target_field="outbuf",
    aux_field="outcnt", global_name="g_buffered_log", worker_name="flush_log_buffer",
    rival_name="rotate_log_buffer", helper_name="httpd_format_log_entry", base_line=1340,
    snorlax_eval=True,
)

make_spec(
    "httpd", "httpd-46215", 3, "WWR", 560,
    "idle-worker count staged during maintenance, overwritten by a finishing worker",
    file="server/mpm/event/event.c", struct_name="EventStats", target_field="idlers",
    aux_field="connections", global_name="g_event_stats", worker_name="perform_idle_maintenance",
    rival_name="worker_finish", helper_name="httpd_update_timeouts", base_line=2110,
)
