"""redis application model (130 KLOC profile): 3 extension-corpus bugs.

All three live around the background-I/O (bio) machinery: the condvar
lost wakeup that parks a bio worker forever, the hoisted semaphore post
that lets a worker grab a job slot before the job is written, and the
three-way lock chain across the db/expires/defrag mutexes.
"""

from repro.corpus import make_spec

make_spec(
    "redis", "redis-1011", 4, "lost-wakeup", 440,
    "bio_notify fires before the bio worker re-blocks on newjob_cond; the naked wait then sleeps forever",
    file="src/bio.c", struct_name="BioQueue", target_field="pending",
    aux_field="newjob_cond", global_name="g_bio_jobs", worker_name="bio_process_background_jobs",
    rival_name="bio_submit_job", helper_name="redis_serve_clients", base_line=210,
)

make_spec(
    "redis", "redis-4011", 4, "sema-underflow", 380,
    "lazyfree queue posts the jobs semaphore before storing the job slot; the woken worker reads a null job",
    file="src/lazyfree.c", struct_name="LazyJob", target_field="obj",
    aux_field="dbid", global_name="g_lazy_slot", worker_name="lazyfree_thread",
    rival_name="lazyfree_enqueue", helper_name="redis_dict_rehash_step", base_line=96,
)

make_spec(
    "redis", "redis-2988", 4, "lock-chain", 300,
    "db, expires and defrag mutexes are taken pairwise in rotated order by three maintenance threads",
    file="src/db.c", struct_name="DbLocks", target_field="touched",
    aux_field="epoch", global_name="g_db_locks", worker_name="db_maintenance_cron",
    rival_name="db_scan_guard", helper_name="redis_estimate_memory", base_line=1540,
)
