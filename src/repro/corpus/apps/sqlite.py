"""SQLite application model (100 KLOC profile): 4 corpus bugs.

#1672 is the db-mutex/pager-mutex ordering deadlock the paper's
evaluation (and Gist's) uses; the others model the shared-cache publish
race (#3871), the page-cache check/recycle race (#553) and the
WAL-counter staging race (#9312).
"""

from repro.corpus import make_spec

make_spec(
    "sqlite", "sqlite-1672", 1, "deadlock", 480,
    "database mutex vs pager mutex acquired in opposite orders by commit and checkpoint",
    file="src/btree.c", struct_name="BtShared", target_field="commits",
    aux_field="checkpoints", global_name="g_bt_shared", worker_name="commit_txn",
    rival_name="wal_checkpoint", helper_name="sqlite_balance_page", base_line=2040,
    snorlax_eval=True,
)

make_spec(
    "sqlite", "sqlite-3871", 2, "RW", 740,
    "connection reads the shared-cache schema pointer before the loader publishes it",
    file="src/callback.c", struct_name="SchemaCache", target_field="schema",
    aux_field="generation", global_name="g_schema_cache", worker_name="prepare_statement",
    rival_name="load_schema", helper_name="sqlite_parse_sql", base_line=410,
)

make_spec(
    "sqlite", "sqlite-553", 3, "RWR", 900,
    "page-cache entry re-read after the recycler reclaimed it mid-lookup",
    file="src/pcache.c", struct_name="PCacheSlot", target_field="page",
    aux_field="nref", global_name="g_pcache", worker_name="pcache_fetch",
    rival_name="pcache_recycle", helper_name="sqlite_page_hash", base_line=150,
)

make_spec(
    "sqlite", "sqlite-9312", 3, "WRW", 1100,
    "WAL frame counter written in two steps, snapshotted torn by a reader",
    file="src/wal.c", struct_name="WalIndexHdr", target_field="mxFrame",
    aux_field="nPage", global_name="g_wal_hdr", worker_name="wal_append_frames",
    rival_name="wal_snapshot_reader", helper_name="sqlite_wal_checksum", base_line=760,
)
