"""JDK application model (Java; 120 KLOC profile): 5 corpus bugs.

Ids echo OpenJDK tracker entries: JDK-6822370 (ReferenceHandler vs
finalizer lock cycle), JDK-7011862 (logger config read before
publication), JDK-8073704 (FutureTask state double-transition),
JDK-6487638 (ConcurrentHashMap segment re-read race), JDK-4949631
(System.out torn state snapshot).  Java systems participate in the
coarse-interleaving study (Tables 1-3) exactly as in the paper — they
are not part of the Snorlax C/C++ evaluation.
"""

from repro.corpus import make_spec

make_spec(
    "jdk", "jdk-6822370", 1, "deadlock", 1300,
    "Reference pending-list lock vs finalizer queue lock in opposite orders",
    file="java/lang/ref/Reference.java", struct_name="PendingList", target_field="enqueued",
    aux_field="finalized", global_name="g_pending", worker_name="reference_handler",
    rival_name="finalizer_thread", helper_name="jdk_scan_references", base_line=140,
)

make_spec(
    "jdk", "jdk-7011862", 2, "RW", 860,
    "logging handler reads LogManager config before readConfiguration publishes it",
    file="java/util/logging/LogManager.java", struct_name="LogConfig", target_field="handlers",
    aux_field="levels", global_name="g_log_config", worker_name="publish_record",
    rival_name="read_configuration", helper_name="jdk_format_record", base_line=480,
)

make_spec(
    "jdk", "jdk-8073704", 2, "WW", 1600,
    "FutureTask completion raced: two threads both pass the state check and finish it",
    file="java/util/concurrent/FutureTask.java", struct_name="TaskState", target_field="state",
    aux_field="waiters", global_name="g_task", worker_name="finish_completion",
    rival_name="finish_completion_alias", helper_name="jdk_unpark_waiters", base_line=300,
)

make_spec(
    "jdk", "jdk-6487638", 3, "RWR", 1900,
    "HashMap bucket re-read after a concurrent resize transferred it",
    file="java/util/HashMap.java", struct_name="BucketTable", target_field="bucket",
    aux_field="size", global_name="g_map", worker_name="map_get",
    rival_name="map_resize_transfer", helper_name="jdk_hash_spread", base_line=560,
)

make_spec(
    "jdk", "jdk-4949631", 3, "WWR", 1150,
    "BufferedWriter position staged during flush, clobbered by a concurrent write",
    file="java/io/BufferedWriter.java", struct_name="CharBuffer", target_field="nextChar",
    aux_field="nChars", global_name="g_char_buf", worker_name="flush_buffer",
    rival_name="write_chars", helper_name="jdk_min_chunk", base_line=90,
)
