"""aget application model (1 KLOC profile): 3 corpus bugs.

aget-n/a is the well-known ``bwritten`` torn-update bug (the signal
handler snapshots the download counter mid-update); aget-2 and aget-3
model the resume-offset publish race and the per-thread progress
check/use race.
"""

from repro.corpus import make_spec

make_spec(
    "aget", "aget-n/a", 3, "WRW", 280,
    "bwritten updated in two steps by a worker; SIGINT handler snapshots it torn",
    file="Download.c", struct_name="DownloadState", target_field="bwritten",
    aux_field="nthreads", global_name="g_dl_state", worker_name="http_get_worker",
    rival_name="sigint_save_log", helper_name="aget_recv_chunk", base_line=120,
    snorlax_eval=True,
)

make_spec(
    "aget", "aget-2", 2, "RW", 240,
    "worker reads the resume offset table before the log loader publishes it",
    file="Resume.c", struct_name="ResumeTable", target_field="offsets",
    aux_field="count", global_name="g_resume", worker_name="worker_seek_start",
    rival_name="read_log_publish", helper_name="aget_parse_header", base_line=60,
)

make_spec(
    "aget", "aget-3", 3, "RWR", 450,
    "progress entry re-read after the reaper cleared a finished thread's slot",
    file="Aget.c", struct_name="ProgressSlot", target_field="entry",
    aux_field="done", global_name="g_progress", worker_name="update_progress_bar",
    rival_name="reap_finished_thread", helper_name="aget_format_eta", base_line=210,
)
