"""nginx application model (170 KLOC profile): 3 extension-corpus bugs.

The rwlock race in the shared-dict fast path (a lock-free read racing
the wrlock-protected eviction), a connection-slot semaphore posted
before the slot is published, and a three-way chain across the
accept/posted/timer mutexes.
"""

from repro.corpus import make_spec

make_spec(
    "nginx", "nginx-1384", 4, "rw-race", 360,
    "shared-dict fast path reads the node pointer without the rwlock while eviction clears it under wrlock",
    file="src/core/ngx_slab.c", struct_name="ShmDict", target_field="node",
    aux_field="hits", global_name="g_shm_dict", worker_name="shm_lookup_fast",
    rival_name="shm_evict_expired", helper_name="ngx_hash_find_slot", base_line=470,
)

make_spec(
    "nginx", "nginx-2162", 4, "sema-underflow", 420,
    "listener posts the free-connection semaphore before storing the slot; a worker dereferences a null connection",
    file="src/event/ngx_event_accept.c", struct_name="ConnSlot", target_field="conn",
    aux_field="fd", global_name="g_conn_slot", worker_name="worker_process_cycle",
    rival_name="event_accept", helper_name="ngx_update_time", base_line=128,
)

make_spec(
    "nginx", "nginx-753", 4, "lock-chain", 320,
    "accept, posted-events and timer mutexes acquired pairwise in rotated order by three event threads",
    file="src/event/ngx_event.c", struct_name="EventLocks", target_field="cycles",
    aux_field="gen", global_name="g_ev_locks", worker_name="event_process_posted",
    rival_name="event_expire_timers", helper_name="ngx_queue_rotate", base_line=655,
)
