"""Apache Lucene application model (Java; 90 KLOC profile): 4 corpus bugs."""

from repro.corpus import make_spec

make_spec(
    "lucene", "lucene-3842", 1, "deadlock", 1450,
    "IndexWriter commit lock vs merge scheduler lock in opposite orders",
    file="index/IndexWriter.java", struct_name="WriterLocks", target_field="commits",
    aux_field="merges", global_name="g_writer", worker_name="commit_internal",
    rival_name="concurrent_merge", helper_name="lucene_flush_segment", base_line=3100,
)

make_spec(
    "lucene", "lucene-5216", 2, "RW", 1150,
    "searcher reads the segment infos before the refresh thread publishes them",
    file="search/SearcherManager.java", struct_name="SegmentView", target_field="infos",
    aux_field="generation", global_name="g_segment_view", worker_name="acquire_searcher",
    rival_name="refresh_publish", helper_name="lucene_warm_reader", base_line=95,
)

make_spec(
    "lucene", "lucene-1544", 3, "RWR", 670,
    "doc-values slice re-read after a merge retired the segment",
    file="index/SegmentReader.java", struct_name="DocValuesSlice", target_field="slice",
    aux_field="docCount", global_name="g_doc_values", worker_name="read_doc_values",
    rival_name="merge_retire_segment", helper_name="lucene_seek_term", base_line=780,
)

make_spec(
    "lucene", "lucene-4738", 3, "WWR", 3200,
    "pending-delete count staged by flush, clobbered by an applying reader",
    file="index/BufferedUpdatesStream.java", struct_name="PendingDeletes", target_field="pending",
    aux_field="gen", global_name="g_pending_deletes", worker_name="flush_deletes",
    rival_name="apply_deletes", helper_name="lucene_resolve_terms", base_line=240,
)
