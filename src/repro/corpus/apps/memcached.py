"""memcached application model (9 KLOC profile): 3 corpus bugs.

#127 is the classic item-refcount/stats race used throughout the
concurrency-debugging literature; #271 and #672 are the slab-rebalance
publish race and the LRU-tail staging race.
"""

from repro.corpus import make_spec

make_spec(
    "memcached", "memcached-127", 3, "WWR", 350,
    "item stats staged by do_item_update, clobbered by a concurrent do_item_remove",
    file="items.c", struct_name="ItemStats", target_field="curr_items",
    aux_field="total_items", global_name="g_item_stats", worker_name="do_item_update",
    rival_name="do_item_remove", helper_name="memcached_hash_key", base_line=260,
    snorlax_eval=True,
)

make_spec(
    "memcached", "memcached-271", 2, "RW", 300,
    "worker reads the slab class pointer before the rebalancer publishes it",
    file="slabs.c", struct_name="SlabClass", target_field="chunk_size",
    aux_field="perslab", global_name="g_slabclass", worker_name="slabs_alloc_worker",
    rival_name="slab_rebalance_publish", helper_name="memcached_grow_slab_list", base_line=180,
)

make_spec(
    "memcached", "memcached-672", 3, "RWR", 620,
    "LRU tail pointer re-read after the maintainer crawled and unlinked it",
    file="items.c", struct_name="LruQueue", target_field="tail",
    aux_field="size", global_name="g_lru", worker_name="item_alloc_evict",
    rival_name="lru_maintainer_unlink", helper_name="memcached_touch_item", base_line=520,
)
