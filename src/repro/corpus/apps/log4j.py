"""Apache Log4j application model (Java; 30 KLOC profile): 4 corpus bugs."""

from repro.corpus import make_spec

make_spec(
    "log4j", "log4j-50213", 1, "deadlock", 720,
    "logger hierarchy lock vs appender lock in opposite orders on reconfigure",
    file="core/LoggerContext.java", struct_name="LoggerHierarchy", target_field="logs",
    aux_field="reconfigs", global_name="g_hierarchy", worker_name="log_event",
    rival_name="reconfigure", helper_name="log4j_layout_event", base_line=340,
)

make_spec(
    "log4j", "log4j-1507", 2, "WR", 300,
    "appender stopped and its manager freed while a logger still writes through it",
    file="core/appender/OutputStreamAppender.java", struct_name="StreamManager",
    target_field="stream", aux_field="bytesWritten", global_name="g_stream_manager",
    worker_name="append_event", rival_name="stop_appender",
    helper_name="log4j_encode_bytes", base_line=110,
)

make_spec(
    "log4j", "log4j-43867", 3, "WRW", 940,
    "ring-buffer sequence published in two steps, snapshotted torn by the flusher",
    file="core/async/RingBuffer.java", struct_name="RingCursor", target_field="sequence",
    aux_field="capacity", global_name="g_ring", worker_name="publish_event",
    rival_name="flush_cursor_check", helper_name="log4j_claim_slot", base_line=200,
)

make_spec(
    "log4j", "log4j-1189", 3, "RWR", 530,
    "configuration map entry re-read after a reconfigure swapped it out",
    file="core/config/ConfigurationSource.java", struct_name="ConfigMap", target_field="entry",
    aux_field="version", global_name="g_config_map", worker_name="resolve_logger_config",
    rival_name="swap_configuration", helper_name="log4j_match_pattern", base_line=430,
)
