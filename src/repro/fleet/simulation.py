"""Fleet simulation: ≥50 endpoint agents over real localhost sockets.

This is the repo's stand-in for the paper's production deployment: a
:class:`FleetServer` in one thread, N :class:`FleetAgent` threads
connected over TCP, each assigned a corpus bug.  A configurable subset
of each bug's agents actually hits the bug and reports it (all
endpoints of a bug fail the same way, so their signatures collide —
that is the point: the dedup path is the common case in a fleet); the
rest serve as the population successful traces are collected from.

``run_fleet`` returns a :class:`FleetRunResult` with per-agent
outcomes, the per-signature diagnosis digests, and the full metrics
snapshot — what the throughput benchmark and ``python -m repro.fleet``
both consume.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.api import SchedulerPolicy
from repro.errors import FleetError
from repro.fleet.agent import FleetAgent
from repro.fleet.chaos import FaultPlan
from repro.fleet.metrics import FleetMetrics
from repro.fleet.server import FleetServer, render_digest
from repro.obs import Observability, write_trace_jsonl

DEFAULT_BUGS = ("pbzip2-n/a", "memcached-271", "aget-2")


@dataclass
class FleetConfig:
    agents: int = 50
    bug_ids: tuple[str, ...] = DEFAULT_BUGS
    reporters_per_bug: int = 3
    workers: int | None = 3  # None: auto-scale to the machine
    max_pending: int = 8
    success_traces_wanted: int = 10
    cache_enabled: bool = True
    collection_parallelism: int = 1
    # -- pipelined collection ----------------------------------------------
    # batch speculative waves into one frame per agent chunk (step 8)
    collection_batching: bool = True
    collection_batch_window: int = 8  # max requests per agent per round
    # "fixed": stop at success_traces_wanted; "stable-top": stop when the
    # top-ranked pattern is stable across stability_window samples
    stopping: str = "fixed"
    stability_window: int = 3
    adaptive_min_traces: int = 4
    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port
    timeout: float = 600.0
    # -- sharding & persistence --------------------------------------------
    # >1: run that many FleetServer shards (consistent-hash routed by
    # failure signature) instead of a single server
    shards: int = 1
    # SQLite DiagnosisStore path; None: no persistence.  ":memory:" is
    # valid for tests.  Shards always share the one store.
    store_path: str | None = None
    # -- validation --------------------------------------------------------
    # post-report validation: replay each diagnosed order (forced +
    # inverse) via repro.validate and stamp reports validated/refuted
    validate: bool = False
    # scheduler policy endpoints collect under (cache-key input)
    collection_policy: SchedulerPolicy = field(default_factory=SchedulerPolicy)
    # -- resilience knobs --------------------------------------------------
    # seed-driven fault injection (None: a polite network)
    chaos: FaultPlan | None = None
    request_timeout: float = 120.0  # one trace request, reroutes included
    trace_reply_timeout: float = 30.0  # one endpoint's answer, then reroute
    collection_deadline_s: float | None = None  # degrade past this
    min_success_traces: int = 1
    agent_reconnect_attempts: int = 8
    frame_timeout: float = 30.0  # started frames must finish in this
    # -- observability -----------------------------------------------------
    trace_out: str | None = None  # write the span tree here (JSONL)
    metrics_port: int | None = None  # serve Prometheus /metrics (0: any)
    profile: bool = False  # sample stacks during each diagnosis
    obs: Observability | None = None  # bring your own bundle
    # -- always-on monitoring ----------------------------------------------
    # population agents run MonitorLoops (heartbeats + sampled telemetry)
    # instead of passively serving; the server's anomaly detector can
    # then trigger diagnoses unprompted
    monitoring: bool = False
    heartbeat_interval_s: float = 1.0
    sample_interval_s: float = 0.5
    # evict conns silent past this (None: no liveness eviction)
    heartbeat_timeout_s: float | None = None
    dashboard_port: int | None = None  # serve the live dashboard (0: any)


@dataclass
class AgentOutcome:
    agent_id: str
    bug_id: str
    reporter: bool
    signature: str | None = None
    digest: dict | None = None
    error: str | None = None
    trace_requests_served: int = 0
    rejections: int = 0
    reconnects: int = 0
    faults_injected: dict = field(default_factory=dict)  # chaos counts


@dataclass
class FleetRunResult:
    config: FleetConfig
    elapsed: float
    metrics: dict
    outcomes: list[AgentOutcome]
    digests: dict[str, dict] = field(default_factory=dict)  # signature -> digest
    # observability artifacts of this run
    spans_written: int = 0  # spans written to config.trace_out
    metrics_url: str | None = None  # Prometheus endpoint while running
    dashboard_url: str | None = None  # live dashboard while running
    # the final GET /metrics body, fetched over HTTP just before the
    # endpoint shut down (None when metrics_port was not set)
    prometheus_scrape: str | None = None
    obs: Observability | None = None  # the bundle the run recorded into

    @property
    def failures_received(self) -> int:
        return self.metrics["counters"].get("failures_received", 0)

    @property
    def diagnoses_completed(self) -> int:
        return self.metrics["counters"].get("diagnoses_completed", 0)

    @property
    def dedup_hits(self) -> int:
        return self.metrics["counters"].get("jobs_deduplicated", 0)

    @property
    def failures_per_sec(self) -> float:
        return self.failures_received / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def median_diagnosis_latency_s(self) -> float:
        timer = self.metrics["timers"].get("diagnosis_latency")
        return timer["median_s"] if timer else 0.0

    @property
    def analysis_cache_hits(self) -> int:
        return self.metrics["counters"].get("analysis_cache_hits", 0)

    @property
    def trace_cache_hits(self) -> int:
        return self.metrics["counters"].get("trace_cache_hits", 0)

    @property
    def cache_hits(self) -> int:
        return self.analysis_cache_hits + self.trace_cache_hits

    @property
    def cache_hit_rate(self) -> float:
        counters = self.metrics["counters"]
        lookups = self.cache_hits + counters.get(
            "analysis_cache_misses", 0
        ) + counters.get("trace_cache_misses", 0)
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def degraded_collections(self) -> int:
        return self.metrics["counters"].get("degraded_collections", 0)

    # -- always-on monitoring counters --------------------------------------

    @property
    def heartbeats_received(self) -> int:
        return self.metrics["counters"].get("heartbeats_received", 0)

    @property
    def monitor_samples_received(self) -> int:
        return self.metrics["counters"].get("monitor_samples_received", 0)

    @property
    def anomaly_triggers(self) -> int:
        return self.metrics["counters"].get("anomaly_triggers", 0)

    # -- persistence & sharding counters -----------------------------------

    @property
    def store_hits(self) -> int:
        return self.metrics["counters"].get("store_hits", 0)

    @property
    def store_misses(self) -> int:
        return self.metrics["counters"].get("store_misses", 0)

    @property
    def store_writes(self) -> int:
        return self.metrics["counters"].get("store_writes", 0)

    @property
    def diagnoses_from_store(self) -> int:
        """Failure reports answered straight from the persistent store
        (no pipeline run, no job queue) — the cross-process/cross-shard
        dedup path."""
        return self.metrics["counters"].get("diagnoses_from_store", 0)

    @property
    def shard_routes(self) -> int:
        return self.metrics["counters"].get("shard_routes", 0)

    @property
    def reconnects(self) -> int:
        return sum(o.reconnects for o in self.outcomes)

    @property
    def faults_injected(self) -> int:
        return sum(
            v
            for k, v in self.metrics["counters"].items()
            if k.startswith("chaos_")
        )

    def render(self) -> str:
        reporters = [o for o in self.outcomes if o.reporter]
        failed = [o for o in self.outcomes if o.error]
        lines = [
            "=== fleet run ===",
            f"agents:            {len(self.outcomes)} "
            f"({len(reporters)} reporting, across {len(self.config.bug_ids)} bugs)",
            f"elapsed:           {self.elapsed:.2f}s",
            f"failures received: {self.failures_received} "
            f"({self.failures_per_sec:.1f}/s)",
            f"diagnoses run:     {self.diagnoses_completed} "
            f"(dedup folded {self.dedup_hits} reports)",
            f"median latency:    {self.median_diagnosis_latency_s * 1000:.0f} ms "
            f"per diagnosis",
            f"cache hits:        {self.cache_hits} "
            f"({self.cache_hit_rate:.0%} of lookups; "
            f"{self.analysis_cache_hits} analysis, {self.trace_cache_hits} trace)",
            f"agent errors:      {len(failed)}",
        ]
        if self.config.monitoring:
            lines.append(
                f"monitoring:        {self.heartbeats_received} heartbeats, "
                f"{self.monitor_samples_received} samples, "
                f"{self.anomaly_triggers} anomaly triggers"
            )
        timers = self.metrics.get("timers", {})
        collect = timers.get("stage_collect")
        decode = timers.get("stage_decode")
        if collect or decode:

            def _stage(t):
                if not t:
                    return "n/a"
                p95 = t.get("p95_s", t.get("max_s", 0.0))
                return f"p50 {t['median_s'] * 1000:.0f} ms / p95 {p95 * 1000:.0f} ms"

            lines.append(
                f"collection stages: collect {_stage(collect)}; "
                f"decode {_stage(decode)}"
            )
        if self.config.shards > 1:
            lines.append(
                f"shards:            {self.config.shards} "
                f"({self.shard_routes} signatures routed)"
            )
        if self.config.store_path is not None:
            lines.append(
                f"store:             {self.config.store_path} "
                f"({self.store_hits} hits, {self.store_misses} misses, "
                f"{self.store_writes} writes; "
                f"{self.diagnoses_from_store} diagnoses served from store)"
            )
        if self.config.chaos is not None and self.config.chaos.active:
            counters = self.metrics["counters"]
            chaos = ", ".join(
                f"{k.removeprefix('chaos_')}={v}"
                for k, v in sorted(counters.items())
                if k.startswith("chaos_")
            )
            lines.append(
                f"chaos:             {self.faults_injected} faults injected "
                f"({chaos or 'none landed'})"
            )
            lines.append(
                f"resilience:        {self.reconnects} agent reconnects, "
                f"{counters.get('trace_request_timeouts', 0)} request timeouts, "
                f"{counters.get('trace_request_reroutes', 0)} reroutes, "
                f"{counters.get('server_restarts', 0)} server restarts, "
                f"{self.degraded_collections} degraded collections"
            )
        for signature, digest in sorted(self.digests.items()):
            lines.append(f"--- {signature} ---")
            lines.append(render_digest(digest))
        return "\n".join(lines)


def run_fleet(
    config: FleetConfig | None = None,
    metrics: FleetMetrics | None = None,
    caches=None,
) -> FleetRunResult:
    """Run one fleet simulation.  Passing ``caches`` (a
    :class:`~repro.core.cache.DiagnosisCaches`) keeps the server's
    analysis/trace caches warm across runs — the warm-restart scenario
    the cache benchmark measures."""
    cfg = config or FleetConfig()
    if cfg.agents < len(cfg.bug_ids):
        raise FleetError("need at least one agent per bug")
    if cfg.shards > 1:
        return _run_sharded(cfg, metrics, caches)
    from repro.corpus import bug as corpus_bug

    specs = [corpus_bug(bug_id) for bug_id in cfg.bug_ids]
    for spec in specs:
        spec.module()  # build (and cache) before threads share it

    store = None
    if cfg.store_path is not None:
        from repro.store import DiagnosisStore

        store = DiagnosisStore(cfg.store_path)
    metrics = metrics or FleetMetrics()
    # tracing is opt-in: only build an enabled tracer when someone will
    # consume the spans (a long-lived disabled fleet must not accumulate
    # span memory).  The registry is always the shared fleet metrics.
    obs = cfg.obs
    if obs is None and (cfg.trace_out is not None or cfg.profile):
        obs = Observability(registry=metrics, profile=cfg.profile)
    server = FleetServer(
        host=cfg.host,
        port=cfg.port,
        workers=cfg.workers,
        max_pending=cfg.max_pending,
        success_traces_wanted=cfg.success_traces_wanted,
        metrics=metrics,
        caches=caches,
        enable_caches=cfg.cache_enabled,
        collection_parallelism=cfg.collection_parallelism,
        collection_batching=cfg.collection_batching,
        collection_batch_window=cfg.collection_batch_window,
        stopping=cfg.stopping,
        stability_window=cfg.stability_window,
        adaptive_min_traces=cfg.adaptive_min_traces,
        request_timeout=cfg.request_timeout,
        trace_reply_timeout=cfg.trace_reply_timeout,
        collection_deadline_s=cfg.collection_deadline_s,
        min_success_traces=cfg.min_success_traces,
        frame_timeout=cfg.frame_timeout,
        obs=obs,
        metrics_port=cfg.metrics_port,
        store=store,
        collection_policy=cfg.collection_policy,
        validate=cfg.validate,
        heartbeat_timeout_s=cfg.heartbeat_timeout_s,
        dashboard_port=cfg.dashboard_port,
    )
    host, port = server.start()
    metrics_url = (
        server.metrics_server.url if server.metrics_server is not None else None
    )
    dashboard_url = server.dashboard.url if server.dashboard is not None else None

    # an injected server restart mid-run: agents must reconnect, reporters
    # must re-report, in-flight collections must reroute
    restart_timer: threading.Timer | None = None
    if cfg.chaos is not None and cfg.chaos.server_restart_after_s is not None:

        def _restart_quietly() -> None:
            try:
                server.restart()
            except FleetError:
                pass  # the run finished first; nothing left to restart

        restart_timer = threading.Timer(
            cfg.chaos.server_restart_after_s, _restart_quietly
        )
        restart_timer.daemon = True
        restart_timer.start()

    stop = threading.Event()
    outcomes: list[AgentOutcome] = []
    per_bug_count: dict[str, int] = {}
    assignments: list[tuple[object, bool]] = []
    for i in range(cfg.agents):
        spec = specs[i % len(specs)]
        seen = per_bug_count.get(spec.bug_id, 0)
        per_bug_count[spec.bug_id] = seen + 1
        reporter = seen < cfg.reporters_per_bug
        assignments.append((spec, reporter))
        outcomes.append(AgentOutcome(f"agent-{i:03d}", spec.bug_id, reporter))

    reporters_total = sum(1 for _, r in assignments if r)
    state_lock = threading.Lock()
    reporters_done = [0]

    def agent_main(index: int) -> None:
        spec, reporter = assignments[index]
        outcome = outcomes[index]
        engine = None
        if cfg.chaos is not None and cfg.chaos.wraps_sockets:
            engine = cfg.chaos.engine(outcome.agent_id)
        agent = FleetAgent.from_spec(
            outcome.agent_id,
            spec,
            host,
            port,
            fault_engine=engine,
            reconnect_attempts=cfg.agent_reconnect_attempts,
            frame_timeout=cfg.frame_timeout,
        )
        try:
            agent.connect_resilient(stop)
            if reporter:
                try:
                    result = agent.produce_and_report(stop)
                    outcome.signature = result.signature
                    outcome.digest = result.digest
                finally:
                    with state_lock:
                        reporters_done[0] += 1
            if cfg.monitoring:
                from repro.fleet.agent import MonitorLoop

                MonitorLoop(
                    agent,
                    heartbeat_interval_s=cfg.heartbeat_interval_s,
                    sample_interval_s=cfg.sample_interval_s,
                ).run(stop)
            else:
                agent.serve_until(stop)
        except Exception as exc:  # recorded, never raised into the pool
            outcome.error = f"{type(exc).__name__}: {exc}"
        finally:
            outcome.trace_requests_served = agent.trace_requests_served
            outcome.rejections = agent.rejections
            outcome.reconnects = agent.reconnects
            if engine is not None:
                outcome.faults_injected = dict(engine.counts)
                for fault, count in engine.counts.items():
                    metrics.inc(f"chaos_{fault}", count)
            agent.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=agent_main, args=(i,), name=f"agent-{i:03d}")
        for i in range(cfg.agents)
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + cfg.timeout
    try:
        while time.monotonic() < deadline:
            with state_lock:
                if reporters_done[0] >= reporters_total:
                    break
            time.sleep(0.05)
    finally:
        elapsed = time.perf_counter() - started
        stop.set()
        if restart_timer is not None:
            restart_timer.cancel()
        for thread in threads:
            thread.join(timeout=30)
        prometheus_scrape = None
        if server.metrics_server is not None:
            from urllib.request import urlopen

            try:
                with urlopen(server.metrics_server.url, timeout=5) as resp:
                    prometheus_scrape = resp.read().decode()
            except OSError:
                pass  # endpoint raced shutdown; the run itself succeeded
        server.stop()
        if store is not None:
            store.close()

    digests: dict[str, dict] = {}
    for outcome in outcomes:
        if outcome.signature is not None and outcome.digest is not None:
            digests[outcome.signature] = outcome.digest
    spans_written = 0
    if cfg.trace_out is not None and obs is not None:
        spans_written = write_trace_jsonl(cfg.trace_out, obs.tracer)
    return FleetRunResult(
        config=cfg,
        elapsed=elapsed,
        metrics=metrics.as_dict(),
        outcomes=outcomes,
        digests=digests,
        spans_written=spans_written,
        metrics_url=metrics_url,
        dashboard_url=dashboard_url,
        prometheus_scrape=prometheus_scrape,
        obs=obs,
    )


def _run_sharded(
    cfg: FleetConfig, metrics: FleetMetrics | None, caches
) -> FleetRunResult:
    """The ``shards > 1`` variant of :func:`run_fleet`.

    Reporters route *themselves*: each finds its failure offline (no
    connection needed), computes the signature the server would, hashes
    it onto the ring, and connects to the owning shard.  Population
    (non-reporting) agents connect to **every** shard — one thread per
    (agent, shard) — so each shard sees the full endpoint pool for
    trace collection, the same way a production endpoint would register
    with whichever frontends exist.

    Chaos ``server_restart_after_s`` kills the shard that owns the
    first routed signature (the one with in-flight work), which is the
    shard-kill convergence scenario the acceptance test asserts on.
    """
    from repro.corpus import bug as corpus_bug
    from repro.fleet.shard import ShardedFleet, signature_for_failure

    specs = [corpus_bug(bug_id) for bug_id in cfg.bug_ids]
    for spec in specs:
        spec.module()  # build (and cache) before threads share it

    store = None
    if cfg.store_path is not None:
        from repro.store import DiagnosisStore

        store = DiagnosisStore(cfg.store_path)
    metrics = metrics or FleetMetrics()
    obs = cfg.obs
    if obs is None and (cfg.trace_out is not None or cfg.profile):
        obs = Observability(registry=metrics, profile=cfg.profile)
    fleet = ShardedFleet(
        shards=cfg.shards,
        store=store,
        host=cfg.host,
        metrics=metrics,
        obs=obs,
        workers=cfg.workers,
        max_pending=cfg.max_pending,
        success_traces_wanted=cfg.success_traces_wanted,
        caches=caches,
        enable_caches=cfg.cache_enabled,
        collection_parallelism=cfg.collection_parallelism,
        collection_batching=cfg.collection_batching,
        collection_batch_window=cfg.collection_batch_window,
        stopping=cfg.stopping,
        stability_window=cfg.stability_window,
        adaptive_min_traces=cfg.adaptive_min_traces,
        request_timeout=cfg.request_timeout,
        trace_reply_timeout=cfg.trace_reply_timeout,
        collection_deadline_s=cfg.collection_deadline_s,
        min_success_traces=cfg.min_success_traces,
        frame_timeout=cfg.frame_timeout,
        collection_policy=cfg.collection_policy,
        validate=cfg.validate,
        heartbeat_timeout_s=cfg.heartbeat_timeout_s,
    )
    addresses = fleet.start()
    metrics_server = None
    if cfg.metrics_port is not None:
        from repro.obs import MetricsHTTPServer

        metrics_server = MetricsHTTPServer(
            metrics, host=cfg.host, port=cfg.metrics_port
        )
        metrics_server.start()

    stop = threading.Event()
    outcomes: list[AgentOutcome] = []
    per_bug_count: dict[str, int] = {}
    assignments: list[tuple[object, bool]] = []
    for i in range(cfg.agents):
        spec = specs[i % len(specs)]
        seen = per_bug_count.get(spec.bug_id, 0)
        per_bug_count[spec.bug_id] = seen + 1
        reporter = seen < cfg.reporters_per_bug
        assignments.append((spec, reporter))
        outcomes.append(AgentOutcome(f"agent-{i:03d}", spec.bug_id, reporter))

    reporters_total = sum(1 for _, r in assignments if r)
    state_lock = threading.Lock()
    reporters_done = [0]
    routed: dict[str, str] = {}  # signature -> owning shard name

    def _engine_for(endpoint_id: str):
        if cfg.chaos is not None and cfg.chaos.wraps_sockets:
            return cfg.chaos.engine(endpoint_id)
        return None

    def _account(outcome: AgentOutcome, agent: FleetAgent, engine) -> None:
        with state_lock:
            outcome.trace_requests_served += agent.trace_requests_served
            outcome.rejections += agent.rejections
            outcome.reconnects += agent.reconnects
        if engine is not None:
            for fault, count in engine.counts.items():
                metrics.inc(f"chaos_{fault}", count)

    def reporter_main(index: int) -> None:
        spec, _ = assignments[index]
        outcome = outcomes[index]
        engine = _engine_for(outcome.agent_id)
        agent = FleetAgent.from_spec(
            outcome.agent_id,
            spec,
            cfg.host,
            0,  # placeholder; the route decides the real address
            fault_engine=engine,
            reconnect_attempts=cfg.agent_reconnect_attempts,
            frame_timeout=cfg.frame_timeout,
        )
        try:
            try:
                failing_run = agent.find_failure()
                signature = signature_for_failure(spec.bug_id, failing_run)
                shard_name = fleet.route(signature)
                with state_lock:
                    routed.setdefault(signature, shard_name)
                agent.host, agent.port = addresses[shard_name]
                agent.connect_resilient(stop)
                result = agent.report_failure(failing_run, stop=stop)
                outcome.signature = result.signature
                outcome.digest = result.digest
            finally:
                with state_lock:
                    reporters_done[0] += 1
            agent.serve_until(stop)
        except Exception as exc:  # recorded, never raised into the pool
            outcome.error = f"{type(exc).__name__}: {exc}"
        finally:
            _account(outcome, agent, engine)
            if engine is not None:
                outcome.faults_injected = dict(engine.counts)
            agent.close()

    def population_main(index: int, shard_name: str) -> None:
        spec, _ = assignments[index]
        outcome = outcomes[index]
        endpoint_id = f"{outcome.agent_id}@{shard_name}"
        engine = _engine_for(endpoint_id)
        host, port = addresses[shard_name]
        agent = FleetAgent.from_spec(
            endpoint_id,
            spec,
            host,
            port,
            fault_engine=engine,
            reconnect_attempts=cfg.agent_reconnect_attempts,
            frame_timeout=cfg.frame_timeout,
        )
        try:
            agent.connect_resilient(stop)
            agent.serve_until(stop)
        except Exception as exc:
            with state_lock:
                if outcome.error is None:
                    outcome.error = f"{type(exc).__name__}: {exc}"
        finally:
            _account(outcome, agent, engine)
            agent.close()

    restart_timer: threading.Timer | None = None
    if cfg.chaos is not None and cfg.chaos.server_restart_after_s is not None:

        def _restart_quietly() -> None:
            with state_lock:
                target = next(iter(routed.values()), fleet.shard_names[0])
            try:
                fleet.restart_shard(target)
            except FleetError:
                pass  # the run finished first; nothing left to restart

        restart_timer = threading.Timer(
            cfg.chaos.server_restart_after_s, _restart_quietly
        )
        restart_timer.daemon = True
        restart_timer.start()

    threads: list[threading.Thread] = []
    for i, (_, reporter) in enumerate(assignments):
        if reporter:
            threads.append(
                threading.Thread(
                    target=reporter_main, args=(i,), name=f"agent-{i:03d}"
                )
            )
        else:
            threads.extend(
                threading.Thread(
                    target=population_main,
                    args=(i, shard_name),
                    name=f"agent-{i:03d}@{shard_name}",
                )
                for shard_name in fleet.shard_names
            )

    started = time.perf_counter()
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + cfg.timeout
    try:
        while time.monotonic() < deadline:
            with state_lock:
                if reporters_done[0] >= reporters_total:
                    break
            time.sleep(0.05)
    finally:
        elapsed = time.perf_counter() - started
        stop.set()
        if restart_timer is not None:
            restart_timer.cancel()
        for thread in threads:
            thread.join(timeout=30)
        prometheus_scrape = None
        metrics_url = None
        if metrics_server is not None:
            from urllib.request import urlopen

            metrics_url = metrics_server.url
            try:
                with urlopen(metrics_server.url, timeout=5) as resp:
                    prometheus_scrape = resp.read().decode()
            except OSError:
                pass  # endpoint raced shutdown; the run itself succeeded
            metrics_server.stop()
        fleet.stop()
        if store is not None:
            store.close()

    digests: dict[str, dict] = {}
    for outcome in outcomes:
        if outcome.signature is not None and outcome.digest is not None:
            digests[outcome.signature] = outcome.digest
    spans_written = 0
    if cfg.trace_out is not None and obs is not None:
        spans_written = write_trace_jsonl(cfg.trace_out, obs.tracer)
    return FleetRunResult(
        config=cfg,
        elapsed=elapsed,
        metrics=metrics.as_dict(),
        outcomes=outcomes,
        digests=digests,
        spans_written=spans_written,
        metrics_url=metrics_url,
        prometheus_scrape=prometheus_scrape,
        obs=obs,
    )
