"""The fleet diagnosis server: many endpoints, one Snorlax per bug.

This is Figure 2's deployment model made concrete: an asyncio TCP
server accepts connections from endpoint agents, receives
``FailureEnvelope``s (step 1), and — per failure signature — runs the
existing single-machine ``SnorlaxServer`` collection policy with the
network as its transport: every ``TraceRequest`` of
``collect_traces_via`` becomes a frame to an idle endpoint running the
same program (step 8), and the CPU-bound ``LazyDiagnosis`` runs on the
bounded worker pool of :mod:`repro.fleet.jobs`.

Because trace collection is deterministic in (seed, breakpoints, skip)
and endpoint executions are deterministic in the seed, the fleet's
diagnosis of a failure is byte-for-byte the report the in-process
``SnorlaxServer.diagnose`` produces for the same module and
seeds — which endpoint serves each request never matters.  The
end-to-end test asserts exactly that equivalence.

Threading model: all connection state lives on the event loop thread.
Worker threads reach the network only through
``asyncio.run_coroutine_threadsafe``; results travel back through
``call_soon_threadsafe``.  The public ``start``/``stop`` API hides the
loop in a background thread so synchronous callers (tests, the
simulation, ``__main__``) can drive the server like any other object.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from collections import deque
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Callable

from repro.core.cache import (
    CollectedEvidence,
    CollectedEvidenceCache,
    DiagnosisCaches,
)
from repro.core.pipeline import PipelineConfig
from repro.core.report import DiagnosisReport
from repro.errors import FleetError, WireError
from repro.fleet.anomaly import EwmaAnomalyDetector
from repro.fleet.jobs import DiagnosisJobQueue, JobRejected, QueueClosed
from repro.fleet.metrics import FleetMetrics
from repro.fleet.wire import (
    DiagnosisResult,
    FailureEnvelope,
    Goodbye,
    Heartbeat,
    Hello,
    MonitorSample,
    Reject,
    TraceBatchRequest,
    TraceBatchResponse,
    WireFault,
    encode_frame,
    read_frame_async,
)
from repro.ir.module import Module
from repro.obs import MetricsHTTPServer, Observability, render_flight_recorder
from repro.obs.tracer import NULL_TRACER
from repro.provenance import EvidenceGraph, build_evidence_graph, report_key
from repro.runtime.protocol import FailureNotification, TraceRequest, TraceResponse
from repro.runtime.server import SnorlaxServer


def failure_signature(env: FailureEnvelope) -> str:
    """The dedup key: same program, same failure kind, same failing PC.

    N endpoints crashing at the same instruction of the same bug are one
    fleet-wide diagnosis, not N."""
    kind = env.sample.failure.kind if env.sample.failure is not None else "unknown"
    return f"{env.bug_id}|{kind}|{env.notification.failing_uid}"


def report_digest(report: DiagnosisReport) -> dict:
    """The wire form of a diagnosis: everything deterministic in the
    evidence (timings excluded), so fleet and in-process reports for the
    same module/seeds compare equal."""
    st = report.stage_stats
    digest: dict = {
        "bug_kind": report.bug_kind,
        "failing_uid": report.failing_uid,
        "diagnosed": report.diagnosed,
        "root_cause": None,
        "f1": None,
        "precision": None,
        "recall": None,
        "target_events": [
            [e.uid, e.role, e.thread_slot, e.location, e.function]
            for e in report.target_events
        ],
        "unordered_candidates": [
            [e.uid, e.role, e.location, e.function]
            for e in report.unordered_candidates
        ],
        "ranked_patterns": [str(p) for p in report.ranked_patterns],
        "notes": list(report.notes),
        "stage_funnel": {
            "program_instructions": st.program_instructions,
            "executed_instructions": st.executed_instructions,
            "alias_candidates": st.alias_candidates,
            "rank1_candidates": st.rank1_candidates,
            "patterns_generated": st.patterns_generated,
            "patterns_top_f1": st.patterns_top_f1,
            "candidates_explored": st.candidates_explored,
        },
        # graceful degradation: True when the collection deadline expired
        # before success_traces_wanted traces arrived (scarce endpoints)
        "degraded": report.degraded,
    }
    if report.root_cause is not None:
        digest["root_cause"] = str(report.root_cause.signature)
        digest["f1"] = report.root_cause.f1
        digest["precision"] = report.root_cause.precision
        digest["recall"] = report.root_cause.recall
    # only validated fleets carry the key at all, so digests from
    # non-validating servers stay byte-compatible with older peers
    if report.validation is not None:
        digest["validation"] = report.validation
    return digest


def render_digest(digest: dict) -> str:
    lines = [
        f"bug kind:   {digest['bug_kind']}",
        f"failing PC: uid={digest['failing_uid']}",
    ]
    if digest.get("degraded"):
        lines.append("evidence:   DEGRADED (collection deadline hit)")
    if digest["root_cause"] is None:
        lines.append("root cause: NOT DIAGNOSED")
    else:
        lines.append(f"root cause: {digest['root_cause']}")
        lines.append(
            f"evidence:   F1={digest['f1']:.3f} "
            f"(P={digest['precision']:.2f}, R={digest['recall']:.2f})"
        )
        for uid, role, slot, location, function in digest["target_events"]:
            lines.append(f"  [{role}] T{slot} {function} at {location} (uid={uid})")
    if "validation" in digest:
        lines.append(f"validation: {digest['validation']['status'].upper()}")
    return "\n".join(lines)


def _corpus_resolver(bug_id: str) -> Module:
    from repro.corpus import bug

    return bug(bug_id).module()


def _corpus_workload_resolver(bug_id: str):
    """Default workload lookup for validation: the corpus spec's
    workload and entry point.  Returns (workload, entry)."""
    from repro.corpus import bug

    spec = bug(bug_id)
    return spec.workload, spec.entry


@dataclass
class AgentConn:
    """One endpoint's connection, as the event loop sees it."""

    agent_id: str
    bug_id: str
    writer: asyncio.StreamWriter
    pending: dict[int, asyncio.Future] = field(default_factory=dict)
    alive: bool = True
    # -- liveness (always-on monitoring) -----------------------------------
    last_seen: float = 0.0  # detector-clock time of the last frame
    heartbeats: int = 0  # heartbeat frames received on this conn
    monitored: bool = False  # has this conn ever heartbeaten?
    samples_sent: int = 0  # the agent's cumulative monitor counter
    failures_seen: int = 0

    def fail_pending(self, exc: Exception) -> None:
        for future in self.pending.values():
            if not future.done():
                future.set_exception(exc)
        self.pending.clear()


class FleetServer:
    """Accepts a fleet of agents; diagnoses each failure signature once."""

    def __init__(
        self,
        module_resolver: Callable[[str], Module] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = 2,
        max_pending: int = 8,
        retry_after: float = 0.25,
        success_traces_wanted: int = 10,
        start_seed: int = 10_000,
        config: PipelineConfig | None = None,
        metrics: FleetMetrics | None = None,
        request_timeout: float = 120.0,
        caches: DiagnosisCaches | None = None,
        enable_caches: bool = True,
        collection_parallelism: int = 1,
        collection_batching: bool = True,
        collection_batch_window: int = 8,
        stopping: str = "fixed",
        stability_window: int = 3,
        adaptive_min_traces: int = 4,
        trace_reply_timeout: float = 30.0,
        reroute_backoff_base_s: float = 0.02,
        reroute_backoff_cap_s: float = 0.5,
        collection_deadline_s: float | None = None,
        min_success_traces: int = 1,
        frame_timeout: float = 30.0,
        obs: Observability | None = None,
        metrics_port: int | None = None,
        store=None,
        collection_policy=None,
        validate: bool = False,
        workload_resolver=None,
        heartbeat_timeout_s: float | None = None,
        prune_interval_s: float | None = None,
        anomaly_detector: EwmaAnomalyDetector | None = None,
        dashboard_port: int | None = None,
        clock: Callable[[], float] | None = None,
        timeline_limit: int = 256,
    ):
        self.host = host
        self.port = port
        self.config = config or PipelineConfig()
        self.success_traces_wanted = success_traces_wanted
        self.start_seed = start_seed
        # request_timeout bounds one trace request end to end (all
        # reroutes included); trace_reply_timeout bounds one endpoint's
        # answer before the request is rerouted to another endpoint
        self.request_timeout = request_timeout
        self.trace_reply_timeout = trace_reply_timeout
        self.reroute_backoff_base_s = reroute_backoff_base_s
        self.reroute_backoff_cap_s = reroute_backoff_cap_s
        # graceful degradation: when set, stop collecting at the deadline
        # and diagnose with what arrived (>= min_success_traces)
        self.collection_deadline_s = collection_deadline_s
        self.min_success_traces = min_success_traces
        # bound a started frame's payload: a corrupted length field must
        # sever the connection, not wedge its reader forever
        self.frame_timeout = frame_timeout
        self.collection_parallelism = collection_parallelism
        # batched collection ships whole speculative waves, one frame per
        # agent chunk, instead of one round-trip per execution; the
        # evidence consumed is byte-identical to the serial loop's
        self.collection_batching = collection_batching
        # cap on requests per agent per wave (keeps one slow endpoint
        # from hoarding a whole wave, and bounds the reply budget)
        self.collection_batch_window = max(1, collection_batch_window)
        # adaptive stopping config, forwarded to the per-job SnorlaxServer
        self.stopping = stopping
        self.stability_window = stability_window
        self.adaptive_min_traces = adaptive_min_traces
        # the scheduler policy endpoints collect under; part of the
        # collection policy, so the evidence cache must key on it
        from repro.api import SchedulerPolicy

        self.collection_policy = collection_policy or SchedulerPolicy()
        # post-report validation: replay the diagnosed order (forced +
        # inverse) and stamp the report validated/refuted
        self.validate = validate
        self._workload_resolver = workload_resolver or _corpus_workload_resolver
        # the server-lifetime caches every diagnosis shares; passing a
        # caches object in lets a fleet keep them warm across restarts.
        # With a persistent store (and no explicit caches) they become
        # write-through: a fresh server process hydrates fixpoints and
        # decoded traces from disk instead of re-deriving them.
        self.store = store
        if not enable_caches:
            self.caches = None
        elif caches is not None:
            self.caches = caches
        elif store is not None:
            from repro.store import persistent_caches

            self.caches = persistent_caches(store)
        else:
            self.caches = DiagnosisCaches()
        # one registry for the whole service: an explicit Observability
        # bundle brings its own (so spans and counters agree), otherwise
        # the fleet's metrics double as the registry with tracing off —
        # either way the pipeline, solver, and caches record into the
        # same place the Prometheus endpoint scrapes.
        if metrics is None and obs is not None:
            metrics = obs.registry  # type: ignore[assignment]
        self.metrics = metrics or FleetMetrics()
        self.obs = obs or Observability(
            tracer=NULL_TRACER, registry=self.metrics
        )
        # optional Prometheus scrape endpoint (``--metrics-port``)
        self.metrics_server: MetricsHTTPServer | None = None
        if metrics_port is not None:
            self.metrics_server = MetricsHTTPServer(
                self.metrics, host=self.host, port=metrics_port
            )
        self.jobs = DiagnosisJobQueue(
            workers=workers,
            max_pending=max_pending,
            retry_after=retry_after,
            metrics=self.metrics,
            tracer=self.obs.tracer,
        )
        if self.store is not None:
            self.jobs.add_completion_listener(self._persist_report)
        self._resolver = module_resolver or _corpus_resolver
        self._modules: dict[str, Module] = {}
        self._module_lock = threading.Lock()
        # -- always-on monitoring ----------------------------------------
        # liveness: a conn silent for heartbeat_timeout_s (detector-clock
        # seconds) is evicted from rotation; None disables eviction (the
        # request/response fleets never heartbeat)
        self.heartbeat_timeout_s = heartbeat_timeout_s
        # real-seconds cadence of the prune task (the timeout itself is
        # measured on the detector clock, which a soak may compress)
        if prune_interval_s is None and heartbeat_timeout_s is not None:
            prune_interval_s = min(5.0, max(0.05, heartbeat_timeout_s / 2))
        self.prune_interval_s = prune_interval_s
        self.anomaly = anomaly_detector or EwmaAnomalyDetector()
        # detector clock: defaults to the event loop's monotonic time;
        # the soak passes a compressed clock so "hours of fleet time"
        # run in seconds with exact window/timeout semantics
        self._clock = clock
        # provenance: report_key -> EvidenceGraph for every diagnosis
        # this server ran (recurring signatures reuse their key, so the
        # map is bounded by distinct diagnoses, not by uptime)
        self._evidence: dict[str, EvidenceGraph] = {}
        self._evidence_lock = threading.Lock()
        # rolling event timeline for the dashboard (loop-confined)
        self._timeline: deque[dict] = deque(maxlen=timeline_limit)
        # signature -> digest of anomaly-triggered diagnoses (loop-confined)
        self._anomaly_digests: dict[str, dict] = {}
        # signature -> digest of every finished diagnosis (loop-confined)
        self._diagnosed: dict[str, dict] = {}
        self.jobs.add_completion_listener(self._record_completion)
        self._prune_task: asyncio.Task | None = None
        # optional live dashboard (``--dashboard-port``)
        self.dashboard = None
        if dashboard_port is not None:
            from repro.obs.dashboard import DashboardServer

            self.dashboard = DashboardServer(
                registry=self.metrics,
                status_fn=self.fleet_status,
                timeline_fn=self.timeline,
                evidence_fn=self.evidence_payload,
                host=self.host,
                port=dashboard_port,
            )
        # loop-confined state
        self._agents: dict[str, list[AgentConn]] = {}
        self._rr: dict[str, itertools.count] = {}
        self._waiters: dict[str, list[tuple[AgentConn, int]]] = {}
        self._req_ids = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Serve in a background thread; returns the bound (host, port)."""
        if self._thread is not None:
            raise FleetError("fleet server already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="fleet-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise FleetError(f"fleet server failed to start: {self._startup_error}")
        if self.metrics_server is not None:
            self.metrics_server.start()
        if self.dashboard is not None:
            self.dashboard.start()
        return self.host, self.port

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle_conn, self.host, self.port)
            )
        except OSError as exc:
            self._startup_error = exc
            self._loop = None
            self._ready.set()
            loop.close()
            return
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        if self.heartbeat_timeout_s is not None:
            # scheduled now, runs once run_forever starts
            self._prune_task = loop.create_task(self._prune_loop())
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self, drain: bool = True) -> None:
        """Stop intake, drain in-flight diagnoses, tear the loop down."""
        if self.metrics_server is not None:
            self.metrics_server.stop()
        if self.dashboard is not None:
            self.dashboard.stop()
        loop = self._loop
        if loop is None or self._thread is None:
            return
        if self._prune_task is not None:
            loop.call_soon_threadsafe(self._prune_task.cancel)
            self._prune_task = None
        # 1. no new connections
        asyncio.run_coroutine_threadsafe(self._close_server(), loop).result()
        # 2. let running diagnoses finish (they still need the loop to
        #    reach agents), then refuse new jobs
        self.jobs.shutdown(wait=drain)
        # 3. drop the agents and stop the loop
        asyncio.run_coroutine_threadsafe(self._close_agents(), loop).result()
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=10)
        self._thread = None
        self._loop = None
        if self.store is not None:
            # final totals (absorb SETS counters, so this is idempotent
            # with the per-serve absorbs)
            self.store.absorb_into(self.metrics)

    async def _close_server(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _close_agents(self) -> None:
        for conns in self._agents.values():
            for conn in conns:
                conn.alive = False
                conn.fail_pending(FleetError("server shutting down"))
                conn.writer.close()
        self._agents.clear()
        self._waiters.clear()

    def restart(self) -> None:
        """Simulate a server crash + restart: drop the listener and every
        agent connection, then listen again on the same port.

        In-flight diagnoses keep running on the worker pool; their trace
        requests fail over and reroute once agents reconnect.  Reporters
        whose connection died re-send their envelope after reconnecting,
        and signature dedup attaches them back to the running (or cached)
        diagnosis."""
        loop = self._loop
        if loop is None:
            raise FleetError("fleet server is not running")
        asyncio.run_coroutine_threadsafe(self._restart_async(), loop).result(
            timeout=30
        )

    async def _restart_async(self) -> None:
        self.metrics.inc("server_restarts")
        await self._close_server()
        await self._close_agents()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )

    # -- connection handling ----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn: AgentConn | None = None
        try:
            while True:
                try:
                    msg, request_id = await read_frame_async(
                        reader, frame_timeout=self.frame_timeout
                    )
                except WireError as exc:
                    self.metrics.inc("wire_errors")
                    writer.write(encode_frame(WireFault(str(exc))))
                    await writer.drain()
                    break
                if isinstance(msg, Hello):
                    # a duplicate Hello supersedes, never accumulates: the
                    # old AgentConn would otherwise stay alive in _agents,
                    # keep receiving round-robin trace requests, and leak
                    # its pending futures
                    if conn is not None:
                        self._retire_conn(
                            conn,
                            FleetError(
                                f"agent {conn.agent_id} re-helloed on the "
                                "same connection"
                            ),
                        )
                    for stale in list(self._agents.get(msg.bug_id, ())):
                        if stale.agent_id == msg.agent_id:
                            self._retire_conn(
                                stale,
                                FleetError(
                                    f"agent {msg.agent_id} reconnected"
                                ),
                            )
                    conn = AgentConn(msg.agent_id, msg.bug_id, writer)
                    conn.last_seen = self._now()
                    self._agents.setdefault(msg.bug_id, []).append(conn)
                    self._rr.setdefault(msg.bug_id, itertools.count())
                    self.metrics.inc("agents_connected")
                elif conn is None:
                    writer.write(
                        encode_frame(WireFault("first frame must be HELLO"), request_id)
                    )
                    await writer.drain()
                    break
                elif isinstance(msg, Heartbeat):
                    conn.last_seen = self._now()
                    conn.heartbeats += 1
                    conn.monitored = True
                    conn.samples_sent = msg.samples_sent
                    conn.failures_seen = msg.failures_seen
                    self.metrics.inc("heartbeats_received")
                elif isinstance(msg, MonitorSample):
                    conn.last_seen = self._now()
                    await self._on_monitor_sample(conn, msg)
                elif isinstance(msg, FailureEnvelope):
                    conn.last_seen = self._now()
                    await self._on_failure(conn, msg, request_id)
                elif isinstance(msg, TraceResponse):
                    conn.last_seen = self._now()
                    future = conn.pending.pop(request_id, None)
                    if future is not None and not future.done():
                        self.metrics.inc("trace_responses_received")
                        future.set_result(msg)
                    else:
                        # the request timed out and was rerouted; the
                        # late answer is dropped (the rerouted run is
                        # deterministic in the seed, so no evidence
                        # differs)
                        self.metrics.inc("orphan_trace_responses")
                elif isinstance(msg, TraceBatchResponse):
                    conn.last_seen = self._now()
                    future = conn.pending.pop(request_id, None)
                    if future is not None and not future.done():
                        self.metrics.inc(
                            "trace_responses_received", len(msg.responses)
                        )
                        future.set_result(msg)
                    else:
                        self.metrics.inc("orphan_trace_responses")
                elif isinstance(msg, Goodbye):
                    break
                else:
                    writer.write(
                        encode_frame(
                            WireFault(f"unexpected {type(msg).__name__}"), request_id
                        )
                    )
                    await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if conn is not None:
                self._retire_conn(
                    conn,
                    FleetError(f"agent {conn.agent_id} disconnected"),
                    metric="agents_disconnected",
                )
            writer.close()

    def _retire_conn(
        self, conn: AgentConn, exc: Exception, metric: str = "agents_superseded"
    ) -> None:
        """Take a connection out of rotation: mark it dead, fail its
        pending trace requests (they reroute), drop it from _agents.
        Idempotent; never closes the writer (a superseding Hello on the
        same connection shares it, and handlers close their own)."""
        already_gone = not conn.alive
        conn.alive = False
        conn.fail_pending(exc)
        peers = self._agents.get(conn.bug_id, [])
        if conn in peers:
            peers.remove(conn)
        if not already_gone:
            self.metrics.inc(metric)

    async def _on_failure(
        self, conn: AgentConn, env: FailureEnvelope, request_id: int
    ) -> None:
        self.metrics.inc("failures_received")
        signature = failure_signature(env)
        # persistent-store fast path: a signature some earlier process —
        # or another shard — already diagnosed is served from disk
        # without touching the job queue.  The in-memory future cache
        # still wins for signatures this server diagnosed (submit dedup
        # is cheaper and its counters feed the existing dedup tests).
        if self.store is not None and self.jobs.result_for(signature) is None:
            stored = self.store.get_report(signature)
            if stored is not None:
                self.metrics.inc("diagnoses_from_store")
                self.store.absorb_into(self.metrics)
                conn.writer.write(
                    encode_frame(
                        DiagnosisResult(
                            signature=signature, digest=stored.digest
                        ),
                        request_id,
                    )
                )
                await conn.writer.drain()
                self.metrics.inc("results_delivered")
                return
        try:
            future, _dedup = self.jobs.submit(
                signature, lambda: self._diagnose(env)
            )
        except JobRejected as exc:
            conn.writer.write(
                encode_frame(Reject(retry_after=exc.retry_after), request_id)
            )
            await conn.writer.drain()
            return
        except QueueClosed:
            conn.writer.write(
                encode_frame(WireFault("server shutting down"), request_id)
            )
            await conn.writer.drain()
            return
        self._waiters.setdefault(signature, []).append((conn, request_id))
        loop = asyncio.get_running_loop()
        if future.done():
            self._deliver(signature, future)
        else:
            future.add_done_callback(
                lambda f, s=signature: loop.call_soon_threadsafe(self._deliver, s, f)
            )

    def _deliver(self, signature: str, future) -> None:
        """Fan one finished diagnosis out to every endpoint that reported
        the signature (runs on the loop thread; idempotent).  Each write
        is a scheduled coroutine that awaits the drain — an endpoint that
        vanished between reporting and delivery surfaces as an explicit
        ``result_delivery_failures`` count, never a silent drop."""
        waiters = self._waiters.pop(signature, [])
        if not waiters:
            return
        exc = future.exception()
        if exc is not None:
            frame_for = lambda req_id: encode_frame(  # noqa: E731
                WireFault(f"diagnosis failed: {exc}"), req_id
            )
        else:
            digest = report_digest(future.result())
            frame_for = lambda req_id: encode_frame(  # noqa: E731
                DiagnosisResult(signature=signature, digest=digest), req_id
            )
        for conn, req_id in waiters:
            self._loop.create_task(self._deliver_one(conn, frame_for(req_id)))

    async def _deliver_one(self, conn: AgentConn, frame: bytes) -> None:
        if not conn.alive:
            self.metrics.inc("result_delivery_failures")
            return
        try:
            conn.writer.write(frame)
            await conn.writer.drain()
            self.metrics.inc("results_delivered")
        except (ConnectionError, OSError, asyncio.CancelledError):
            self.metrics.inc("result_delivery_failures")

    # -- always-on monitoring (loop thread) --------------------------------

    def _now(self) -> float:
        """Detector-clock time: the injected clock (compressed in soak
        tests) or the event loop's monotonic time."""
        if self._clock is not None:
            return self._clock()
        loop = self._loop
        return loop.time() if loop is not None else 0.0

    async def _prune_loop(self) -> None:
        """Evict connections silent past the heartbeat timeout.  Cadence
        runs in real seconds; the timeout itself is measured on the
        detector clock, so compressed-time soaks age conns correctly."""
        try:
            while True:
                await asyncio.sleep(self.prune_interval_s)
                self._prune_stale(self._now())
        except asyncio.CancelledError:
            pass

    def _prune_stale(self, now: float) -> None:
        if self.heartbeat_timeout_s is None:
            return
        for conns in list(self._agents.values()):
            for conn in list(conns):
                if conn.alive and now - conn.last_seen > self.heartbeat_timeout_s:
                    self._retire_conn(
                        conn,
                        FleetError(
                            f"agent {conn.agent_id} missed heartbeats for "
                            f"{now - conn.last_seen:.1f}s"
                        ),
                        metric="agents_evicted_stale",
                    )
                    # unlike supersession (which shares the socket with
                    # the new Hello), a stale conn's socket is garbage:
                    # close it so the leak test sees zero stragglers
                    conn.writer.close()

    async def _on_monitor_sample(self, conn: AgentConn, msg: MonitorSample) -> None:
        """Feed one sampled execution to the anomaly detector; when it
        trips, start a diagnosis unprompted (or serve it from the store)
        and remember the digest for the timeline/equivalence checks."""
        self.metrics.inc("monitor_samples_received")
        signature = None
        hang = False
        failure = msg.sample.failure if msg.sample is not None else None
        if msg.outcome == "failure" and failure is not None:
            self.metrics.inc("monitor_failures_seen")
            signature = f"{msg.bug_id}|{failure.kind}|{failure.failing_uid}"
            hang = msg.hang
        event = self.anomaly.observe(msg.bug_id, signature, hang, self._now())
        if event is None:
            return
        self.metrics.inc("anomaly_triggers")
        self._timeline.append(
            {
                "event": "anomaly",
                "bug_id": event.bug_id,
                "signature": event.signature,
                "reason": event.reason,
                "score": round(event.score, 6),
                "hang_score": round(event.hang_score, 6),
                "at": event.at,
            }
        )
        # store fast path mirrors _on_failure: a signature already
        # diagnosed by an earlier process is served from disk
        if self.store is not None and self.jobs.result_for(signature) is None:
            stored = self.store.get_report(signature)
            if stored is not None:
                self.metrics.inc("diagnoses_from_store")
                self.store.absorb_into(self.metrics)
                self._anomaly_digests[signature] = stored.digest
                return
        env = FailureEnvelope(
            bug_id=msg.bug_id,
            seed=msg.seed,
            notification=FailureNotification(
                bug_hint=msg.bug_id,
                failing_uid=failure.failing_uid,
                failing_tid=failure.failing_tid,
                time=failure.time,
            ),
            sample=msg.sample,
        )
        try:
            future, _dedup = self.jobs.submit(
                signature, lambda: self._diagnose(env)
            )
        except JobRejected:
            # backpressure: the detector re-trips next window and retries
            self.metrics.inc("anomaly_rejected")
            return
        except QueueClosed:
            return
        loop = asyncio.get_running_loop()
        if future.done():
            self._record_anomaly_digest(signature, future)
        else:
            future.add_done_callback(
                lambda f, s=signature: loop.call_soon_threadsafe(
                    self._record_anomaly_digest, s, f
                )
            )

    def _record_anomaly_digest(self, signature: str, future) -> None:
        if future.cancelled() or future.exception() is not None:
            return
        self._anomaly_digests[signature] = report_digest(future.result())

    def _record_completion(self, signature: str, report) -> None:
        """Job-queue completion listener (worker thread): note every
        finished diagnosis on the loop for the dashboard timeline."""
        if not isinstance(report, DiagnosisReport):
            return
        loop = self._loop
        if loop is None:
            return
        digest = report_digest(report)
        try:
            loop.call_soon_threadsafe(self._note_diagnosis, signature, digest)
        except RuntimeError:
            pass  # loop torn down mid-completion; the report still stands

    def _note_diagnosis(self, signature: str, digest: dict) -> None:
        self._diagnosed[signature] = digest
        self._timeline.append(
            {
                "event": "diagnosis",
                "signature": signature,
                "report_key": report_key(digest),
                "diagnosed": digest.get("diagnosed"),
                "root_cause": digest.get("root_cause"),
                "degraded": digest.get("degraded"),
                "at": self._now(),
            }
        )

    # -- dashboard surface (any thread) ------------------------------------

    def fleet_status(self) -> dict:
        """The dashboard's health table: per-agent liveness plus the
        anomaly detector's live scores.  Thread-safe (hops to the loop)."""
        loop = self._loop
        if loop is None:
            return {"agents": [], "anomaly": {}, "diagnosed": {}}
        return asyncio.run_coroutine_threadsafe(
            self._fleet_status_async(), loop
        ).result(timeout=5)

    async def _fleet_status_async(self) -> dict:
        now = self._now()
        agents = []
        for bug_id, conns in self._agents.items():
            for conn in conns:
                agents.append(
                    {
                        "agent_id": conn.agent_id,
                        "bug_id": bug_id,
                        "alive": conn.alive,
                        "monitored": conn.monitored,
                        "heartbeats": conn.heartbeats,
                        "samples_sent": conn.samples_sent,
                        "failures_seen": conn.failures_seen,
                        "last_seen_age_s": round(now - conn.last_seen, 3),
                        "pending": len(conn.pending),
                    }
                )
        return {
            "agents": agents,
            "anomaly": self.anomaly.snapshot(),
            "diagnosed": {
                sig: {
                    "report_key": report_key(digest),
                    "root_cause": digest.get("root_cause"),
                    "anomaly_triggered": sig in self._anomaly_digests,
                }
                for sig, digest in self._diagnosed.items()
            },
        }

    def timeline(self) -> list[dict]:
        """The dashboard's event feed (anomalies + diagnoses), oldest
        first.  Thread-safe (hops to the loop)."""
        loop = self._loop
        if loop is None:
            return []

        async def snap() -> list[dict]:
            return list(self._timeline)

        return asyncio.run_coroutine_threadsafe(snap(), loop).result(timeout=5)

    def anomaly_digests(self) -> dict[str, dict]:
        """Signature -> digest for every anomaly-triggered diagnosis (the
        soak's equivalence oracle against on-demand digests)."""
        return dict(self._anomaly_digests)

    def evidence_payload(self, key: str) -> dict | None:
        """One evidence graph as a JSON-ready dict: in-memory first, then
        the persistent store.  None when the key is unknown."""
        graph = self.evidence_graph(key)
        return graph.to_dict() if graph is not None else None

    def evidence_graph(self, key: str) -> EvidenceGraph | None:
        with self._evidence_lock:
            graph = self._evidence.get(key)
        if graph is None and self.store is not None:
            graph = self.store.evidence_for(key)
        return graph

    # -- the diagnosis job (worker thread) --------------------------------

    def _persist_report(self, signature: str, report) -> None:
        """Job-queue completion listener: write each finished diagnosis
        through to the store (degraded reports are never persisted — a
        later, fully-evidenced diagnosis must not be masked by one cut
        short at the collection deadline)."""
        if not isinstance(report, DiagnosisReport) or report.degraded:
            return
        bug_id = signature.split("|", 1)[0]
        self.store.put_report(
            signature,
            bug_id,
            report_digest(report),
            flight_recorder=report.flight_recorder,
            validation=report.validation,
        )
        self.store.absorb_into(self.metrics)

    def _module(self, bug_id: str) -> Module:
        with self._module_lock:
            module = self._modules.get(bug_id)
            if module is None:
                module = self._resolver(bug_id)
                self._modules[bug_id] = module
            return module

    def _evidence_key(self, module: Module, env: FailureEnvelope) -> str:
        """Evidence memoization key: everything the collected samples are
        deterministic in — including the endpoints' scheduler config
        (policy class + preemption granularity), since a different
        quantum interleaves the very same seeds differently."""
        return CollectedEvidenceCache.key_for(
            module,
            env.bug_id,
            env.seed,
            env.notification.failing_uid,
            self.start_seed,
            (
                self.success_traces_wanted,
                self.stopping,
                self.stability_window,
                self.adaptive_min_traces,
                self.min_success_traces,
                self.collection_deadline_s,
                self.collection_policy.cache_key(),
            ),
        )

    def _validate_report(
        self, env: FailureEnvelope, module: Module, report: DiagnosisReport
    ) -> None:
        """Post-report validation: replay the diagnosed order forced and
        inverse on the reporting endpoint's failing seed, stamping
        ``report.validation``.  A bug id the workload resolver cannot
        answer for is skipped with a note, never an error."""
        from repro.errors import ReproError
        from repro.validate import validate_report

        try:
            workload, entry = self._workload_resolver(env.bug_id)
        except ReproError as exc:
            report.notes.append(f"validation skipped: {exc}")
            self.metrics.inc("validations_skipped")
            return
        with self.obs.tracer.span(
            "fleet_validate", bug_id=env.bug_id, seed=env.seed
        ):
            with self.metrics.timer("validation_latency"):
                outcome = validate_report(
                    module,
                    workload,
                    report,
                    entry=entry,
                    failing_seed=env.seed,
                )
        if outcome is None:
            self.metrics.inc("validations_skipped")
            return
        self.metrics.inc("validations_completed")
        if outcome.status == "refuted":
            self.metrics.inc("validations_refuted")
        elif outcome.status != "validated":
            self.metrics.inc("validations_inconclusive")

    def _diagnose(self, env: FailureEnvelope) -> DiagnosisReport:
        """Replicates SnorlaxServer.diagnose with the network as
        the step-8 transport: same policy, same seeds, same evidence.

        Degrades gracefully when endpoints are scarce: a transport
        failure becomes an empty response (the attempt is consumed, the
        next seed is tried), and once the collection deadline passes the
        diagnosis runs with however many successful traces arrived —
        flagged as degraded rather than failing outright."""
        module = self._module(env.bug_id)
        obs = self.obs
        snorlax = SnorlaxServer(
            module,
            config=self.config,
            success_traces_wanted=self.success_traces_wanted,
            collection_parallelism=self.collection_parallelism,
            stopping=self.stopping,
            stability_window=self.stability_window,
            adaptive_min_traces=self.adaptive_min_traces,
            analysis_cache=self.caches.analysis if self.caches else None,
            trace_cache=self.caches.traces if self.caches else None,
            collection_deadline_s=self.collection_deadline_s,
            min_success_traces=self.min_success_traces,
            obs=obs,
        )
        snorlax.stats.failing_traces += 1

        def transport(req: TraceRequest) -> TraceResponse:
            try:
                return self._remote_request(env.bug_id, req)
            except FleetError:
                self.metrics.inc("trace_requests_failed")
                return TraceResponse(
                    label=req.label, outcome="unreachable", sample=None
                )

        batch_transport = None
        if self.collection_batching:

            def batch_transport(requests):
                return self._remote_batch(env.bug_id, requests)

        # evidence memoization: collection is deterministic in (module,
        # failing seed, policy), so a failure recurring across the fleet
        # replays the stored samples instead of re-executing remotely
        evidence_key = None
        cached_evidence = None
        if self.caches is not None:
            evidence_key = self._evidence_key(module, env)
            cached_evidence = self.caches.evidence.get(evidence_key)

        with obs.tracer.span(
            "fleet_diagnose",
            bug_id=env.bug_id,
            signature=failure_signature(env),
        ) as root:
            with self.metrics.timer("collection_latency"):
                if cached_evidence is not None:
                    self.metrics.inc("evidence_cache_hits")
                    successes = list(cached_evidence.samples)
                    degraded = False
                    root.set(evidence_cache="hit")
                else:
                    if evidence_key is not None:
                        self.metrics.inc("evidence_cache_misses")
                    successes = snorlax.collect_traces_via(
                        transport,
                        env.notification.failing_uid,
                        self.start_seed,
                        send_batch=batch_transport,
                        failing_sample=env.sample,
                    )
                    # adaptive stopping satisfied early is sufficiency,
                    # not degradation; degraded means collection gave up
                    state = snorlax.last_collection
                    degraded = (
                        not state.satisfied
                        if state is not None
                        else len(successes) < self.success_traces_wanted
                    )
                    if evidence_key is not None and not degraded:
                        self.caches.evidence.put(
                            evidence_key,
                            CollectedEvidence(
                                samples=tuple(successes),
                                attempts=(
                                    state.attempts
                                    if state is not None
                                    else len(successes)
                                ),
                            ),
                        )
            self.metrics.inc("traces_collected", len(successes))
            if degraded:
                self.metrics.inc("degraded_collections")
            with self.metrics.timer("analysis_latency"):
                # the pipeline records its own stage timers and cache
                # events into obs.registry (this server's metrics)
                result = snorlax.diagnose_samples([env.sample], successes)
            report = result.report
            if degraded:
                report.degraded = True
                report.notes.append(
                    f"degraded collection: diagnosed from {len(successes)}/"
                    f"{self.success_traces_wanted} successful traces"
                )
            if self.validate:
                self._validate_report(env, module, report)
            root.set(collected=len(successes), degraded=degraded)
        if obs.enabled:
            # the whole fleet-side job: collection round-trips included
            report.flight_recorder = render_flight_recorder(obs.tracer, root)
        # provenance: the report's evidence graph, content-addressed down
        # to the raw PT buffer hashes; span ids annotate (never identify)
        # so cached replays digest identically to this cold run
        spans = obs.tracer.subtree(root) if obs.enabled else ()
        graph = build_evidence_graph(
            report_digest(report), [env.sample], successes, spans
        )
        with self._evidence_lock:
            self._evidence[graph.report_key] = graph
        if self.store is not None and not report.degraded:
            self.store.put_evidence(graph)
        self.metrics.inc("evidence_graphs_built")
        self.metrics.inc("diagnoses_completed")
        return report

    def _remote_request(self, bug_id: str, request: TraceRequest) -> TraceResponse:
        """Bridge a worker thread's TraceRequest onto the event loop.

        A timeout here cancels the loop-side coroutine (its ``finally``
        cleans the pending map) instead of leaking a forever-running
        request against a hung endpoint."""
        if self._loop is None:
            raise FleetError("fleet server is not running")
        future = asyncio.run_coroutine_threadsafe(
            self._remote_request_async(bug_id, request), self._loop
        )
        try:
            # grace so the loop-side wall clock (same budget) fires first
            return future.result(timeout=self.request_timeout + 5.0)
        except FuturesTimeoutError:
            future.cancel()
            self.metrics.inc("trace_requests_abandoned")
            raise FleetError(
                f"trace request to {bug_id!r} abandoned after "
                f"{self.request_timeout:.0f}s"
            ) from None

    async def _remote_request_async(
        self, bug_id: str, request: TraceRequest
    ) -> TraceResponse:
        """Send to the next idle-ish endpoint of this program; an agent
        dying mid-request, answering garbage, or hanging just reroutes
        the (deterministic) run to another endpoint.

        Bounded by wall clock (``request_timeout``) rather than a fixed
        attempt count, with capped exponential backoff between reroute
        attempts so a fleet-wide outage is polled, not busy-spun."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.request_timeout
        failures = 0
        while True:
            conn = self._pick_agent(bug_id)
            if conn is None:
                if not await self._reroute_pause(deadline, failures):
                    break
                failures += 1
                continue
            request_id = next(self._req_ids)
            response_future: asyncio.Future = loop.create_future()
            conn.pending[request_id] = response_future
            try:
                conn.writer.write(encode_frame(request, request_id))
                await conn.writer.drain()
                self.metrics.inc("trace_requests_sent")
                reply_budget = min(
                    self.trace_reply_timeout, max(0.0, deadline - loop.time())
                )
                return await asyncio.wait_for(response_future, reply_budget)
            except asyncio.TimeoutError:
                self.metrics.inc("trace_request_timeouts")
                failures += 1
            except (FleetError, ConnectionError, OSError):
                self.metrics.inc("trace_request_reroutes")
                failures += 1
            finally:
                # on success the handler already popped it; on timeout,
                # reroute, or cancellation from _remote_request this is
                # what keeps conn.pending from leaking futures
                conn.pending.pop(request_id, None)
            if not await self._reroute_pause(deadline, failures):
                break
        raise FleetError(
            f"no endpoint for {bug_id!r} answered a trace request within "
            f"{self.request_timeout:.0f}s"
        )

    def _remote_batch(
        self, bug_id: str, requests: list[TraceRequest]
    ) -> list[TraceResponse]:
        """Bridge a worker thread's speculative wave onto the event loop.

        Always returns positional responses: an item no endpoint answered
        within the budget comes back as ``outcome="unreachable"`` with no
        sample, which the collection policy consumes as a miss — exactly
        the per-request transport's failure semantics, so batched and
        serial collection degrade identically."""
        if self._loop is None:
            raise FleetError("fleet server is not running")
        future = asyncio.run_coroutine_threadsafe(
            self._remote_batch_async(bug_id, list(requests)), self._loop
        )
        try:
            return future.result(timeout=self.request_timeout + 5.0)
        except FuturesTimeoutError:
            future.cancel()
            self.metrics.inc("trace_requests_abandoned", len(requests))
            return [
                TraceResponse(label=r.label, outcome="unreachable", sample=None)
                for r in requests
            ]

    async def _remote_batch_async(
        self, bug_id: str, requests: list[TraceRequest]
    ) -> list[TraceResponse]:
        """Fan one speculative wave across every live endpoint at once.

        The wave is striped over the live agents (at most
        ``collection_batch_window`` requests per agent per round), each
        chunk ships as a single :class:`TraceBatchRequest` frame, and the
        chunk sends/replies run concurrently under ``asyncio.gather`` —
        one round-trip depth per wave instead of one per execution.  A
        chunk that times out, lands on a dying connection, or comes back
        malformed re-enters the pending pool and is re-striped over
        whoever is still alive (the runs are deterministic in the seed,
        so a re-run answers identically)."""
        responses: list[TraceResponse | None] = [None] * len(requests)
        pending = list(range(len(requests)))
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.request_timeout
        failures = 0
        suspect: set[int] = set()  # id() of conns whose chunk went dark
        while pending:
            agents = [c for c in self._agents.get(bug_id, []) if c.alive]
            if not agents:
                failures += 1
                if not await self._reroute_pause(deadline, failures):
                    break
                continue
            # rotate like _pick_agent so reruns don't pin to the list
            # head, and push endpoints whose last chunk went unanswered
            # to the back — a hung-but-connected agent must not swallow
            # a narrow rerun round over and over
            start = next(self._rr[bug_id]) % len(agents)
            agents = agents[start:] + agents[:start]
            agents.sort(key=lambda c: id(c) in suspect)
            take = min(len(pending), self.collection_batch_window * len(agents))
            assign = pending[:take]
            # fill frames before fanning wider: a small wave rides one
            # endpoint as a single full frame instead of 1-request
            # frames sprayed across the whole fleet (same responses
            # either way — the stripe only changes who runs what)
            fanout = min(
                len(agents),
                -(-take // self.collection_batch_window),
            )
            chunks = [
                (agents[j], assign[j::fanout])
                for j in range(fanout)
                if assign[j::fanout]
            ]
            results = await asyncio.gather(
                *(
                    self._batch_to_agent(conn, [requests[i] for i in idxs], deadline)
                    for conn, idxs in chunks
                )
            )
            progressed = False
            rerun: list[int] = []
            for (conn, idxs), result in zip(chunks, results):
                if result is None:
                    suspect.add(id(conn))
                    rerun.extend(idxs)
                    continue
                progressed = True
                suspect.discard(id(conn))
                for i, resp in zip(idxs, result):
                    responses[i] = resp
            pending = rerun + pending[take:]
            if pending:
                if progressed:
                    failures = 0
                else:
                    failures += 1
                    if not await self._reroute_pause(deadline, failures):
                        break
        for i, resp in enumerate(responses):
            if resp is None:
                self.metrics.inc("trace_requests_failed")
                responses[i] = TraceResponse(
                    label=requests[i].label, outcome="unreachable", sample=None
                )
        return responses  # type: ignore[return-value]

    async def _batch_to_agent(
        self, conn: AgentConn, chunk: list[TraceRequest], deadline: float
    ):
        """One chunk, one frame, one reply; None means 'reroute me'."""
        loop = asyncio.get_running_loop()
        request_id = next(self._req_ids)
        response_future: asyncio.Future = loop.create_future()
        conn.pending[request_id] = response_future
        try:
            conn.writer.write(
                encode_frame(TraceBatchRequest(requests=tuple(chunk)), request_id)
            )
            await conn.writer.drain()
            self.metrics.inc("trace_batches_sent")
            self.metrics.inc("trace_requests_sent", len(chunk))
            # the endpoint runs its chunk sequentially: budget scales
            # with chunk size, clamped to the wave's wall-clock budget
            reply_budget = min(
                self.trace_reply_timeout * len(chunk),
                max(0.0, deadline - loop.time()),
            )
            reply = await asyncio.wait_for(response_future, reply_budget)
            if (
                not isinstance(reply, TraceBatchResponse)
                or len(reply.responses) != len(chunk)
            ):
                self.metrics.inc("trace_request_reroutes", len(chunk))
                return None
            return list(reply.responses)
        except asyncio.TimeoutError:
            self.metrics.inc("trace_request_timeouts", len(chunk))
            return None
        except (FleetError, ConnectionError, OSError):
            self.metrics.inc("trace_request_reroutes", len(chunk))
            return None
        finally:
            conn.pending.pop(request_id, None)

    async def _reroute_pause(self, deadline: float, failures: int) -> bool:
        """Capped exponential backoff between reroute attempts; False
        once the request's wall-clock budget is spent."""
        delay = min(
            self.reroute_backoff_cap_s,
            self.reroute_backoff_base_s * (2 ** min(failures, 16)),
        )
        loop = asyncio.get_running_loop()
        if loop.time() + delay >= deadline:
            return False
        await asyncio.sleep(delay)
        return True

    def _pick_agent(self, bug_id: str) -> AgentConn | None:
        conns = [c for c in self._agents.get(bug_id, []) if c.alive]
        if not conns:
            return None
        # round-robin, preferring endpoints with no request in flight
        start = next(self._rr[bug_id]) % len(conns)
        rotated = conns[start:] + conns[:start]
        for conn in rotated:
            if not conn.pending:
                return conn
        return rotated[0]
