"""``python -m repro.fleet`` — run the fleet demo on localhost.

Spins up the fleet server plus N endpoint agents over real TCP sockets,
lets several endpoints per bug hit their corpus bug and report it, and
prints the fleet-wide diagnoses and service metrics.
"""

from __future__ import annotations

import argparse
import sys

from repro.fleet.chaos import FaultPlan
from repro.fleet.metrics import FleetMetrics
from repro.fleet.simulation import DEFAULT_BUGS, FleetConfig, run_fleet


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Simulate a Snorlax fleet: endpoint agents reporting "
        "in-production concurrency failures to a central diagnosis server.",
    )
    parser.add_argument("--agents", type=int, default=50, help="fleet size")
    parser.add_argument(
        "--bugs",
        default=",".join(DEFAULT_BUGS),
        help="comma-separated corpus bug ids the fleet runs",
    )
    parser.add_argument(
        "--reporters",
        type=int,
        default=3,
        help="endpoints per bug that hit the bug and report it",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="diagnosis workers (default: auto-scale to the machine)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=8, help="job-queue bound (backpressure)"
    )
    parser.add_argument(
        "--traces", type=int, default=10, help="successful traces per diagnosis"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the analysis/trace caches (ablation)",
    )
    parser.add_argument(
        "--collect-parallel",
        type=int,
        default=1,
        metavar="N",
        help="speculate N trace-collection requests concurrently per diagnosis",
    )
    chaos = parser.add_argument_group(
        "chaos", "deterministic fault injection (all rates are per-frame)"
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0, help="fault-plan seed"
    )
    chaos.add_argument(
        "--chaos-corrupt", type=float, default=0.0, metavar="RATE",
        help="flip a byte in an outbound frame",
    )
    chaos.add_argument(
        "--chaos-truncate", type=float, default=0.0, metavar="RATE",
        help="cut a frame (and its connection) short",
    )
    chaos.add_argument(
        "--chaos-drop", type=float, default=0.0, metavar="RATE",
        help="swallow an outbound trace response whole",
    )
    chaos.add_argument(
        "--chaos-delay", type=float, default=0.0, metavar="RATE",
        help="sleep before sending a frame",
    )
    chaos.add_argument(
        "--chaos-delay-max", type=float, default=0.05, metavar="S",
        help="maximum injected per-frame delay",
    )
    chaos.add_argument(
        "--chaos-crash", type=float, default=0.0, metavar="RATE",
        help="agent dies right before answering a trace request",
    )
    chaos.add_argument(
        "--chaos-max-crashes", type=int, default=2, metavar="N",
        help="injected crashes per agent before it behaves",
    )
    chaos.add_argument(
        "--chaos-restart-after", type=float, default=None, metavar="S",
        help="restart the fleet server S seconds into the run",
    )
    resilience = parser.add_argument_group("resilience")
    resilience.add_argument(
        "--reply-timeout", type=float, default=30.0, metavar="S",
        help="endpoint answer budget before a trace request is rerouted",
    )
    resilience.add_argument(
        "--request-timeout", type=float, default=120.0, metavar="S",
        help="total wall clock for one trace request, reroutes included",
    )
    resilience.add_argument(
        "--collection-deadline", type=float, default=None, metavar="S",
        help="degrade: diagnose with fewer traces after S seconds",
    )
    resilience.add_argument(
        "--frame-timeout", type=float, default=30.0, metavar="S",
        help="a started frame must finish arriving within S seconds",
    )
    args = parser.parse_args(argv)

    plan = FaultPlan(
        seed=args.chaos_seed,
        corrupt_rate=args.chaos_corrupt,
        truncate_rate=args.chaos_truncate,
        drop_rate=args.chaos_drop,
        delay_rate=args.chaos_delay,
        max_delay_s=args.chaos_delay_max,
        crash_rate=args.chaos_crash,
        max_crashes_per_agent=args.chaos_max_crashes,
        server_restart_after_s=args.chaos_restart_after,
    )
    config = FleetConfig(
        agents=args.agents,
        bug_ids=tuple(b.strip() for b in args.bugs.split(",") if b.strip()),
        reporters_per_bug=args.reporters,
        workers=args.workers,
        max_pending=args.max_pending,
        success_traces_wanted=args.traces,
        cache_enabled=not args.no_cache,
        collection_parallelism=args.collect_parallel,
        chaos=plan if plan.active else None,
        trace_reply_timeout=args.reply_timeout,
        request_timeout=args.request_timeout,
        collection_deadline_s=args.collection_deadline,
        frame_timeout=args.frame_timeout,
    )
    metrics = FleetMetrics()
    result = run_fleet(config, metrics=metrics)
    print(result.render())
    print()
    print(metrics.render())
    errors = [o for o in result.outcomes if o.error]
    for outcome in errors[:5]:
        print(f"agent error: {outcome.agent_id}: {outcome.error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
