"""``python -m repro.fleet`` — run the fleet demo on localhost.

Spins up the fleet server plus N endpoint agents over real TCP sockets,
lets several endpoints per bug hit their corpus bug and report it, and
prints the fleet-wide diagnoses and service metrics.
"""

from __future__ import annotations

import argparse
import sys

from repro.fleet.metrics import FleetMetrics
from repro.fleet.simulation import DEFAULT_BUGS, FleetConfig, run_fleet


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Simulate a Snorlax fleet: endpoint agents reporting "
        "in-production concurrency failures to a central diagnosis server.",
    )
    parser.add_argument("--agents", type=int, default=50, help="fleet size")
    parser.add_argument(
        "--bugs",
        default=",".join(DEFAULT_BUGS),
        help="comma-separated corpus bug ids the fleet runs",
    )
    parser.add_argument(
        "--reporters",
        type=int,
        default=3,
        help="endpoints per bug that hit the bug and report it",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="diagnosis workers (default: auto-scale to the machine)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=8, help="job-queue bound (backpressure)"
    )
    parser.add_argument(
        "--traces", type=int, default=10, help="successful traces per diagnosis"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the analysis/trace caches (ablation)",
    )
    parser.add_argument(
        "--collect-parallel",
        type=int,
        default=1,
        metavar="N",
        help="speculate N trace-collection requests concurrently per diagnosis",
    )
    args = parser.parse_args(argv)

    config = FleetConfig(
        agents=args.agents,
        bug_ids=tuple(b.strip() for b in args.bugs.split(",") if b.strip()),
        reporters_per_bug=args.reporters,
        workers=args.workers,
        max_pending=args.max_pending,
        success_traces_wanted=args.traces,
        cache_enabled=not args.no_cache,
        collection_parallelism=args.collect_parallel,
    )
    metrics = FleetMetrics()
    result = run_fleet(config, metrics=metrics)
    print(result.render())
    print()
    print(metrics.render())
    errors = [o for o in result.outcomes if o.error]
    for outcome in errors[:5]:
        print(f"agent error: {outcome.agent_id}: {outcome.error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
