"""``python -m repro.fleet`` — run the fleet demo on localhost.

Spins up the fleet server plus N endpoint agents over real TCP sockets,
lets several endpoints per bug hit their corpus bug and report it, and
prints the fleet-wide diagnoses and service metrics.

Exit codes: 0 clean; 1 agent errors; 2 a fleet digest diverged from the
in-process diagnosis of the same bug (the correctness tripwire —
disable with ``--no-verify-digests``).
"""

from __future__ import annotations

import argparse
import sys

from repro.fleet.chaos import FaultPlan
from repro.fleet.metrics import FleetMetrics
from repro.fleet.simulation import DEFAULT_BUGS, FleetConfig, run_fleet


def _verify_digests(result, metrics, config) -> list[str]:
    """Re-diagnose each fleet-diagnosed bug in process and compare
    digests.  Degraded digests are skipped (thinner evidence is not
    comparable); any other divergence is a correctness failure.

    The in-process server mirrors the fleet's stopping configuration —
    the evidence-equivalence contract says transport must not change
    the evidence, but the stopping *rule* legitimately does.
    """
    from repro.corpus import bug as corpus_bug
    from repro.fleet.server import report_digest
    from repro.runtime import SnorlaxClient, SnorlaxServer

    mismatches: list[str] = []
    for signature, digest in sorted(result.digests.items()):
        if digest.get("degraded"):
            continue  # evidence was thinner than in-process; not comparable
        bug_id = signature.split("|", 1)[0]
        spec = corpus_bug(bug_id)
        client = SnorlaxClient(spec.module(), spec.workload, entry=spec.entry)
        failing = client.find_runs(True, 1)[0]
        server = SnorlaxServer(
            spec.module(),
            success_traces_wanted=config.success_traces_wanted,
            stopping=config.stopping,
            stability_window=config.stability_window,
            adaptive_min_traces=config.adaptive_min_traces,
        )
        report = server.diagnose(failing, client).report
        if config.validate:
            # the fleet stamped its reports post-diagnosis; mirror that
            # or every digest would "diverge" on the validation key
            from repro.validate import validate_report

            validate_report(
                spec.module(), spec.workload, report,
                entry=spec.entry, failing_seed=failing.seed,
            )
        expected = report_digest(report)
        if digest != expected:
            metrics.inc("digest_mismatches")
            mismatches.append(signature)
    return mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Simulate a Snorlax fleet: endpoint agents reporting "
        "in-production concurrency failures to a central diagnosis server.",
    )
    parser.add_argument("--agents", type=int, default=50, help="fleet size")
    parser.add_argument(
        "--bugs",
        default=",".join(DEFAULT_BUGS),
        help="comma-separated corpus bug ids the fleet runs",
    )
    parser.add_argument(
        "--reporters",
        type=int,
        default=3,
        help="endpoints per bug that hit the bug and report it",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="diagnosis workers (default: auto-scale to the machine)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=8, help="job-queue bound (backpressure)"
    )
    parser.add_argument(
        "--traces", type=int, default=10, help="successful traces per diagnosis"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the analysis/trace caches (ablation)",
    )
    parser.add_argument(
        "--collect-parallel",
        type=int,
        default=1,
        metavar="N",
        help="speculate N trace-collection requests concurrently per diagnosis",
    )
    parser.add_argument(
        "--no-batch-collect",
        action="store_true",
        help="send trace-collection waves one request per frame instead "
        "of batched frames (the pre-pipelining wire behavior)",
    )
    parser.add_argument(
        "--batch-window",
        type=int,
        default=8,
        metavar="N",
        help="max batched trace requests per agent per round",
    )
    parser.add_argument(
        "--adaptive-traces",
        action="store_true",
        help="stop collecting once the top-ranked pattern is stable "
        "across --stability-window consecutive samples (instead of a "
        "fixed trace count)",
    )
    parser.add_argument(
        "--stability-window",
        type=int,
        default=3,
        metavar="K",
        help="consecutive stable top-pattern evaluations required by "
        "--adaptive-traces",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="after each diagnosis, replay the diagnosed order forced "
        "and inverse (repro.validate) and stamp the report "
        "validated/refuted",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run N fleet-server shards, consistent-hash routed by "
        "failure signature (default: one server)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="SQLite diagnosis store: persists reports, points-to "
        "fixpoints, and decoded traces so restarts resume warm and "
        "shards deduplicate across each other",
    )
    chaos = parser.add_argument_group(
        "chaos", "deterministic fault injection (all rates are per-frame)"
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0, help="fault-plan seed"
    )
    chaos.add_argument(
        "--chaos-corrupt", type=float, default=0.0, metavar="RATE",
        help="flip a byte in an outbound frame",
    )
    chaos.add_argument(
        "--chaos-truncate", type=float, default=0.0, metavar="RATE",
        help="cut a frame (and its connection) short",
    )
    chaos.add_argument(
        "--chaos-drop", type=float, default=0.0, metavar="RATE",
        help="swallow an outbound trace response whole",
    )
    chaos.add_argument(
        "--chaos-delay", type=float, default=0.0, metavar="RATE",
        help="sleep before sending a frame",
    )
    chaos.add_argument(
        "--chaos-delay-max", type=float, default=0.05, metavar="S",
        help="maximum injected per-frame delay",
    )
    chaos.add_argument(
        "--chaos-crash", type=float, default=0.0, metavar="RATE",
        help="agent dies right before answering a trace request",
    )
    chaos.add_argument(
        "--chaos-max-crashes", type=int, default=2, metavar="N",
        help="injected crashes per agent before it behaves",
    )
    chaos.add_argument(
        "--chaos-restart-after", type=float, default=None, metavar="S",
        help="restart the fleet server S seconds into the run",
    )
    resilience = parser.add_argument_group("resilience")
    resilience.add_argument(
        "--reply-timeout", type=float, default=30.0, metavar="S",
        help="endpoint answer budget before a trace request is rerouted",
    )
    resilience.add_argument(
        "--request-timeout", type=float, default=120.0, metavar="S",
        help="total wall clock for one trace request, reroutes included",
    )
    resilience.add_argument(
        "--collection-deadline", type=float, default=None, metavar="S",
        help="degrade: diagnose with fewer traces after S seconds",
    )
    resilience.add_argument(
        "--frame-timeout", type=float, default=30.0, metavar="S",
        help="a started frame must finish arriving within S seconds",
    )
    monitor_group = parser.add_argument_group(
        "always-on monitoring", "continuous liveness + anomaly-triggered diagnosis"
    )
    monitor_group.add_argument(
        "--monitor", action="store_true",
        help="population endpoints run monitor loops (heartbeats + "
        "sampled telemetry) so the server diagnoses anomalies unprompted",
    )
    monitor_group.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="S",
        help="monitor-loop heartbeat cadence",
    )
    monitor_group.add_argument(
        "--sample-interval", type=float, default=0.5, metavar="S",
        help="monitor-loop execution-sampling cadence",
    )
    monitor_group.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="S",
        help="evict endpoints silent past S seconds (stale-connection "
        "reaping; default: no eviction)",
    )
    monitor_group.add_argument(
        "--dashboard-port", type=int, default=None, metavar="PORT",
        help="serve the live fleet dashboard on http://HOST:PORT/ "
        "(0 picks a free port)",
    )
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the run's span tree as JSONL (enables tracing)",
    )
    obs_group.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus text format on http://HOST:PORT/metrics "
        "during the run (0 picks a free port)",
    )
    obs_group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the final Prometheus scrape to PATH (implies "
        "--metrics-port 0 when no port was given)",
    )
    obs_group.add_argument(
        "--profile", action="store_true",
        help="sample stacks during each diagnosis (flight recorder)",
    )
    obs_group.add_argument(
        "--verify-digests", action="store_true", default=True,
        help="re-diagnose each bug in process and fail (exit 2) on "
        "digest divergence (default)",
    )
    obs_group.add_argument(
        "--no-verify-digests", dest="verify_digests", action="store_false",
        help="skip the in-process digest cross-check",
    )
    args = parser.parse_args(argv)

    plan = FaultPlan(
        seed=args.chaos_seed,
        corrupt_rate=args.chaos_corrupt,
        truncate_rate=args.chaos_truncate,
        drop_rate=args.chaos_drop,
        delay_rate=args.chaos_delay,
        max_delay_s=args.chaos_delay_max,
        crash_rate=args.chaos_crash,
        max_crashes_per_agent=args.chaos_max_crashes,
        server_restart_after_s=args.chaos_restart_after,
    )
    metrics_port = args.metrics_port
    if metrics_port is None and args.metrics_out is not None:
        metrics_port = 0  # the scrape artifact needs a live endpoint
    config = FleetConfig(
        agents=args.agents,
        bug_ids=tuple(b.strip() for b in args.bugs.split(",") if b.strip()),
        reporters_per_bug=args.reporters,
        workers=args.workers,
        max_pending=args.max_pending,
        success_traces_wanted=args.traces,
        cache_enabled=not args.no_cache,
        collection_parallelism=args.collect_parallel,
        collection_batching=not args.no_batch_collect,
        collection_batch_window=args.batch_window,
        stopping="stable-top" if args.adaptive_traces else "fixed",
        stability_window=args.stability_window,
        validate=args.validate,
        shards=args.shards,
        store_path=args.store,
        chaos=plan if plan.active else None,
        trace_reply_timeout=args.reply_timeout,
        request_timeout=args.request_timeout,
        collection_deadline_s=args.collection_deadline,
        frame_timeout=args.frame_timeout,
        trace_out=args.trace_out,
        metrics_port=metrics_port,
        profile=args.profile,
        monitoring=args.monitor,
        heartbeat_interval_s=args.heartbeat_interval,
        sample_interval_s=args.sample_interval,
        heartbeat_timeout_s=args.heartbeat_timeout,
        dashboard_port=args.dashboard_port,
    )
    metrics = FleetMetrics()
    result = run_fleet(config, metrics=metrics)

    mismatches: list[str] = []
    if args.verify_digests:
        mismatches = _verify_digests(result, metrics, config)

    print(result.render())
    print()
    print(metrics.render())
    if args.trace_out is not None:
        print(f"\nspan trace: {result.spans_written} spans -> {args.trace_out}")
    if result.dashboard_url is not None:
        print(f"dashboard served at {result.dashboard_url} during the run")
    if args.metrics_out is not None and result.prometheus_scrape is not None:
        with open(args.metrics_out, "w") as fh:
            fh.write(result.prometheus_scrape)
        print(f"prometheus scrape -> {args.metrics_out}")
    errors = [o for o in result.outcomes if o.error]
    for outcome in errors[:5]:
        print(f"agent error: {outcome.agent_id}: {outcome.error}", file=sys.stderr)
    for signature in mismatches:
        print(
            f"DIGEST MISMATCH: fleet diagnosis of {signature} diverged "
            "from the in-process diagnosis",
            file=sys.stderr,
        )
    if mismatches:
        return 2
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
