"""The diagnosis job queue: bounded workers, dedup, backpressure.

``LazyDiagnosis`` is CPU-bound (points-to analysis + pattern scoring),
so the fleet server never runs it on the event loop: failures become
jobs on a bounded worker pool.  Three properties matter in production:

* **Deduplication** — when N endpoints hit the same bug, their failure
  signatures collide and all N are attached to ONE diagnosis whose
  result is fanned back out.  This is the paper's deployment economy:
  one fleet-wide root cause per bug, not one per crash report.
* **Backpressure** — the pool's pending set is bounded; a novel failure
  arriving at a full queue is rejected with a retry-after hint instead
  of growing memory without bound.
* **Draining shutdown** — ``shutdown(wait=True)`` stops intake but lets
  in-flight diagnoses finish, so no accepted failure report is lost.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from time import perf_counter
from typing import Callable

from repro.errors import FleetError
from repro.fleet.metrics import FleetMetrics


class JobRejected(FleetError):
    """Backpressure: the bounded queue is full; retry after a delay."""

    def __init__(self, retry_after: float):
        self.retry_after = retry_after
        super().__init__(f"diagnosis queue full; retry after {retry_after:.2f}s")


class QueueClosed(FleetError):
    """The queue is shutting down and accepts no new jobs."""


class DiagnosisJobQueue:
    """Signature-keyed job queue over a bounded thread pool.

    ``submit`` returns ``(future, deduplicated)``.  A signature's future
    is shared for the queue's lifetime, so late reports of an
    already-diagnosed bug get the cached result instantly (and count as
    dedup hits) rather than re-running the pipeline.

    Only *successful* diagnoses are cached: a job that raised (e.g. a
    transient fleet outage mid-collection) is evicted on completion, so
    the next report of that signature retries the diagnosis instead of
    being served the stale failure forever.
    """

    def __init__(
        self,
        workers: int | None = 2,
        max_pending: int = 8,
        retry_after: float = 0.25,
        metrics: FleetMetrics | None = None,
        tracer=None,
    ):
        if workers is None:
            # auto-scale to the machine: one worker per core, bounded —
            # diagnosis is CPU-bound, more workers than cores just thrash
            workers = max(2, min(8, os.cpu_count() or 2))
        if workers < 1:
            raise FleetError("job queue needs at least one worker")
        self.workers = workers
        if max_pending < 1:
            raise FleetError("job queue needs max_pending >= 1")
        self.metrics = metrics or FleetMetrics()
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER as tracer  # noqa: N813
        self.tracer = tracer
        self.retry_after = retry_after
        self.max_pending = max_pending
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="diagnosis"
        )
        self._lock = threading.Lock()
        self._futures: dict[str, Future] = {}
        self._submitted: dict[str, float] = {}  # signature -> submit time
        self._pending: set[str] = set()  # submitted, not yet finished
        self._listeners: list[Callable[[str, object], None]] = []
        self._closed = False

    # -- intake ------------------------------------------------------------

    def submit(
        self, signature: str, fn: Callable[[], object]
    ) -> tuple[Future, bool]:
        with self._lock:
            if self._closed:
                raise QueueClosed("job queue is shut down")
            existing = self._futures.get(signature)
            if existing is not None:
                self.metrics.inc("jobs_deduplicated")
                return existing, True
            if len(self._pending) >= self.max_pending:
                self.metrics.inc("jobs_rejected")
                raise JobRejected(self.retry_after)
            self._pending.add(signature)
            self._submitted[signature] = perf_counter()
            self.metrics.inc("jobs_submitted")
            self.metrics.gauge("queue_depth", len(self._pending))
            future = self._pool.submit(self._run, signature, fn)
            self._futures[signature] = future
        # outside the lock: a fast job may already be done, in which case
        # add_done_callback runs _finished inline on this thread
        future.add_done_callback(lambda f, s=signature: self._finished(s))
        return future, False

    def _run(self, signature: str, fn: Callable[[], object]) -> object:
        with self._lock:
            submitted = self._submitted.get(signature)
        wait = perf_counter() - submitted if submitted is not None else 0.0
        self.metrics.observe("queue_wait", wait)
        # the job's root span lives on the worker thread; everything the
        # diagnosis does below (fleet_diagnose, collection, pipeline
        # stages) nests under it via the thread-local span stack
        with self.tracer.span("fleet_job", signature=signature) as span:
            self.tracer.record("job_queue_wait", wait, parent=span)
            with self.metrics.timer("diagnosis_latency"):
                return fn()

    def add_completion_listener(
        self, listener: Callable[[str, object], None]
    ) -> None:
        """Register ``listener(signature, result)`` to run after each
        *successful* diagnosis (failed jobs are evicted and retried, so
        there is no result to announce).  Listeners run on the worker
        thread that finished the job, outside the queue lock; one that
        raises is counted (``completion_listener_errors``) and never
        breaks the queue.  This is how a persistent store learns about
        fresh reports without the server threading a callback through
        every submit call."""
        with self._lock:
            self._listeners.append(listener)

    def _finished(self, signature: str) -> None:
        with self._lock:
            self._pending.discard(signature)
            future = self._futures.get(signature)
            failed = future is not None and (
                future.cancelled() or future.exception() is not None
            )
            if failed:
                # don't poison the signature: a re-report retries
                self._futures.pop(signature, None)
            # the submit timestamp served its purpose (queue_wait); keeping
            # it for successful jobs would grow without bound alongside the
            # intentional _futures result cache
            self._submitted.pop(signature, None)
            self.metrics.gauge("queue_depth", len(self._pending))
            listeners = list(self._listeners) if not failed else ()
        self.metrics.inc("jobs_failed" if failed else "jobs_completed")
        if listeners:
            result = future.result()
            for listener in listeners:
                try:
                    listener(signature, result)
                except Exception:
                    self.metrics.inc("completion_listener_errors")

    # -- introspection -----------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def tracked_submissions(self) -> int:
        """Submit timestamps currently held.

        Bounded by the number of in-flight jobs (≤ ``max_pending``), not
        by queue lifetime: a timestamp exists from ``submit`` until the
        job's completion callback, where it is dropped regardless of
        outcome — it only ever feeds the ``queue_wait`` observation.
        Deduplicated submits reuse the original timestamp, and a cached
        (already-finished) signature holds none.  A value that stays
        above zero after the fleet quiesces therefore means a job is
        genuinely stuck, which is what the chaos harness polls it for."""
        with self._lock:
            return len(self._submitted)

    def result_for(self, signature: str) -> Future | None:
        with self._lock:
            return self._futures.get(signature)

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop intake; with ``wait`` drain every in-flight diagnosis."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)
