"""The fleet wire format: length-prefixed, checksummed binary frames.

The single-machine runtime passes :mod:`repro.runtime.protocol` messages
as in-process dataclasses; the fleet sends the same messages over TCP.
Each frame is::

    !2sBBIII  header (16 bytes)
    ┌──────┬─────────┬──────────┬────────────┬─────────────┬─────────┐
    │ "SX" │ version │ msg type │ request id │ payload len │  crc32  │
    └──────┴─────────┴──────────┴────────────┴─────────────┴─────────┘
    payload (payload-len bytes)

followed by a tagged binary payload.  The payload codec is a small
self-describing value encoding (None/bool/int/float/str/bytes/
list/tuple/dict) so ``TraceSample`` ring-buffer bytes travel unmangled —
no text encoding, no escaping.  The crc32 covers the payload; a frame
whose checksum does not match its bytes (truncation, corruption) raises
:class:`~repro.errors.WireError` rather than deserializing garbage.

``request_id`` correlates responses with requests on a multiplexed
connection: the server tags each :class:`TraceRequest` it sends, and the
agent echoes the id on the :class:`TraceResponse`.
"""

from __future__ import annotations

import socket
import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

from repro.core.pipeline import TraceSample
from repro.errors import WireError
from repro.runtime.protocol import FailureNotification, TraceRequest, TraceResponse
from repro.sim.failures import (
    CrashReport,
    DeadlockEntry,
    DeadlockReport,
    FailureReport,
)

MAGIC = b"SX"
VERSION = 1
_HEADER = struct.Struct("!2sBBIII")
HEADER_SIZE = _HEADER.size
MAX_PAYLOAD = 64 * 1024 * 1024  # sanity bound; a 64 KB ring is ~1000x smaller


class MsgType(IntEnum):
    HELLO = 1
    FAILURE = 2
    TRACE_REQUEST = 3
    TRACE_RESPONSE = 4
    RESULT = 5
    REJECT = 6
    GOODBYE = 7
    ERROR = 8
    TRACE_BATCH_REQUEST = 9
    TRACE_BATCH_RESPONSE = 10
    HEARTBEAT = 11
    MONITOR_SAMPLE = 12


# -- fleet envelope messages (wrap the runtime protocol types) -------------


@dataclass(frozen=True)
class Hello:
    """Agent -> server: join the fleet, declaring which program I run."""

    agent_id: str
    bug_id: str


@dataclass
class FailureEnvelope:
    """Agent -> server: Figure 2 step 1 over the network.

    Carries the error-tracker notification plus the failing execution's
    trace sample (the PT ring contents the client saved at the failure)
    and the seed that produced it.
    """

    bug_id: str
    seed: int
    notification: FailureNotification
    sample: TraceSample


@dataclass
class DiagnosisResult:
    """Server -> agent: the finished diagnosis, fanned out to every
    endpoint that reported the same failure signature."""

    signature: str
    digest: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TraceBatchRequest:
    """Server -> agent: many speculative trace requests in one frame.

    One round-trip per *wave* instead of one per execution: the server
    shards a wave of seeds across every live agent, each agent runs its
    chunk sequentially and answers with a single
    :class:`TraceBatchResponse` echoing the frame's ``request_id``.
    Responses are positional — ``responses[i]`` answers ``requests[i]``.
    """

    requests: tuple[TraceRequest, ...]


@dataclass
class TraceBatchResponse:
    """Agent -> server: the positional answers to a batch request."""

    responses: tuple[TraceResponse, ...]


@dataclass(frozen=True)
class Heartbeat:
    """Agent -> server: periodic liveness beacon of the monitor loop.

    ``seq`` increments per beat so the server can spot gaps;
    ``samples_sent``/``failures_seen`` are the agent's cumulative
    monitor counters, letting the fleet health table show per-endpoint
    progress without a second round-trip.
    """

    agent_id: str
    seq: int
    uptime_s: float = 0.0
    samples_sent: int = 0
    failures_seen: int = 0


@dataclass
class MonitorSample:
    """Agent -> server: one sampled execution from the monitor loop.

    Unlike a :class:`FailureEnvelope` this is *telemetry*, not a
    diagnosis request: the server feeds outcome/hang into the anomaly
    detector and only starts a diagnosis when the detector trips.
    ``sample`` is None for successful executions (no evidence to ship);
    failing executions carry the full trace sample so an
    anomaly-triggered diagnosis starts from the same evidence a
    reported failure would.
    """

    bug_id: str
    seed: int
    outcome: str  # "success" | "failure"
    hang: bool = False  # deadlock-shaped failure (hang-signal counter)
    sample: TraceSample | None = None


@dataclass(frozen=True)
class Reject:
    """Server -> agent: backpressure — the diagnosis queue is full."""

    retry_after: float
    reason: str = "queue full"


@dataclass(frozen=True)
class Goodbye:
    """Agent -> server: clean disconnect."""

    agent_id: str = ""


@dataclass(frozen=True)
class WireFault:
    """Either direction: the peer sent something unprocessable."""

    message: str


# -- tagged value codec ----------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09

_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")

# Nesting bound for the value codec: real payloads are a few levels deep
# (a TraceSample dict of dicts); a crafted frame of thousands of nested
# list tags must raise WireError, not blow the interpreter stack.
MAX_DEPTH = 64


def encode_value(value: Any, out: bytearray, depth: int = 0) -> None:
    if depth > MAX_DEPTH:
        raise WireError(f"value nesting exceeds {MAX_DEPTH} levels")
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        if len(raw) > 255:
            raise WireError(f"integer too wide for the wire: {value.bit_length()} bits")
        out.append(_T_INT)
        out.append(len(raw))
        out += raw
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(item, out, depth + 1)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for k, v in value.items():
            encode_value(k, out, depth + 1)
            encode_value(v, out, depth + 1)
    else:
        raise WireError(f"cannot encode {type(value).__name__} on the wire")


def decode_value(data: bytes, pos: int = 0, depth: int = 0) -> tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise WireError(f"value nesting exceeds {MAX_DEPTH} levels")
    try:
        tag = data[pos]
    except IndexError:
        raise WireError("truncated payload: missing value tag") from None
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    try:
        if tag == _T_INT:
            n = data[pos]
            pos += 1
            raw = data[pos : pos + n]
            if len(raw) != n:
                raise WireError("truncated payload: short integer")
            return int.from_bytes(raw, "big", signed=True), pos + n
        if tag == _T_FLOAT:
            return _F64.unpack_from(data, pos)[0], pos + 8
        if tag in (_T_STR, _T_BYTES):
            (n,) = _U32.unpack_from(data, pos)
            pos += 4
            raw = data[pos : pos + n]
            if len(raw) != n:
                raise WireError("truncated payload: short string/bytes")
            return (raw.decode("utf-8") if tag == _T_STR else raw), pos + n
        if tag in (_T_LIST, _T_TUPLE):
            (n,) = _U32.unpack_from(data, pos)
            pos += 4
            items = []
            for _ in range(n):
                item, pos = decode_value(data, pos, depth + 1)
                items.append(item)
            return (items if tag == _T_LIST else tuple(items)), pos
        if tag == _T_DICT:
            (n,) = _U32.unpack_from(data, pos)
            pos += 4
            result: dict = {}
            for _ in range(n):
                k, pos = decode_value(data, pos, depth + 1)
                v, pos = decode_value(data, pos, depth + 1)
                result[k] = v
            return result, pos
    except struct.error:
        raise WireError("truncated payload: short fixed-width field") from None
    except IndexError:
        raise WireError("truncated payload: short length prefix") from None
    raise WireError(f"unknown value tag 0x{tag:02x}")


# -- dataclass <-> dict ----------------------------------------------------


def _failure_to_dict(f: FailureReport | None) -> dict | None:
    if f is None:
        return None
    base = {
        "kind": f.kind,
        "failing_uid": f.failing_uid,
        "failing_tid": f.failing_tid,
        "time": f.time,
        "detail": f.detail,
    }
    if isinstance(f, CrashReport):
        base["cls"] = "crash"
        base["fault_kind"] = f.fault_kind
        base["fault_address"] = f.fault_address
        base["operand_value"] = f.operand_value
    elif isinstance(f, DeadlockReport):
        base["cls"] = "deadlock"
        base["cycle"] = [
            {
                "tid": e.tid,
                "waiting_for_lock": e.waiting_for_lock,
                "held_locks": e.held_locks,
                "instr_uid": e.instr_uid,
                "since": e.since,
            }
            for e in f.cycle
        ]
    else:
        base["cls"] = "base"
    return base


def _failure_from_dict(d: dict | None) -> FailureReport | None:
    if d is None:
        return None
    common = dict(
        kind=d["kind"],
        failing_uid=d["failing_uid"],
        failing_tid=d["failing_tid"],
        time=d["time"],
        detail=d["detail"],
    )
    cls = d.get("cls", "base")
    if cls == "crash":
        return CrashReport(
            **common,
            fault_kind=d["fault_kind"],
            fault_address=d["fault_address"],
            operand_value=d["operand_value"],
        )
    if cls == "deadlock":
        return DeadlockReport(
            **common,
            cycle=tuple(
                DeadlockEntry(
                    tid=e["tid"],
                    waiting_for_lock=e["waiting_for_lock"],
                    held_locks=tuple(e["held_locks"]),
                    instr_uid=e["instr_uid"],
                    since=e["since"],
                )
                for e in d["cycle"]
            ),
        )
    return FailureReport(**common)


def sample_to_dict(s: TraceSample) -> dict:
    return {
        "label": s.label,
        "failing": s.failing,
        "buffers": dict(s.buffers),
        "positions": dict(s.positions),
        "failure": _failure_to_dict(s.failure),
        "snapshot_time": s.snapshot_time,
    }


def sample_from_dict(d: dict) -> TraceSample:
    return TraceSample(
        label=d["label"],
        failing=d["failing"],
        buffers=dict(d["buffers"]),
        positions=dict(d["positions"]),
        failure=_failure_from_dict(d["failure"]),
        snapshot_time=d["snapshot_time"],
    )


def _trace_request_to_dict(msg: TraceRequest) -> dict:
    return {
        "label": msg.label,
        "seed": msg.seed,
        "breakpoint_uids": tuple(msg.breakpoint_uids),
        "breakpoint_skip": msg.breakpoint_skip,
    }


def _trace_request_from_dict(d: dict) -> TraceRequest:
    return TraceRequest(
        label=d["label"],
        seed=d["seed"],
        breakpoint_uids=tuple(d["breakpoint_uids"]),
        breakpoint_skip=d["breakpoint_skip"],
    )


def _trace_response_to_dict(msg: TraceResponse) -> dict:
    return {
        "label": msg.label,
        "outcome": msg.outcome,
        "sample": None if msg.sample is None else sample_to_dict(msg.sample),
    }


def _trace_response_from_dict(d: dict) -> TraceResponse:
    sample = d["sample"]
    return TraceResponse(
        label=d["label"],
        outcome=d["outcome"],
        sample=None if sample is None else sample_from_dict(sample),
    )


def _encode_payload(msg: Any) -> tuple[MsgType, dict]:
    if isinstance(msg, Hello):
        return MsgType.HELLO, {"agent_id": msg.agent_id, "bug_id": msg.bug_id}
    if isinstance(msg, FailureEnvelope):
        n = msg.notification
        return MsgType.FAILURE, {
            "bug_id": msg.bug_id,
            "seed": msg.seed,
            "notification": {
                "bug_hint": n.bug_hint,
                "failing_uid": n.failing_uid,
                "failing_tid": n.failing_tid,
                "time": n.time,
            },
            "sample": sample_to_dict(msg.sample),
        }
    if isinstance(msg, TraceRequest):
        return MsgType.TRACE_REQUEST, _trace_request_to_dict(msg)
    if isinstance(msg, TraceResponse):
        return MsgType.TRACE_RESPONSE, _trace_response_to_dict(msg)
    if isinstance(msg, TraceBatchRequest):
        return MsgType.TRACE_BATCH_REQUEST, {
            "requests": [_trace_request_to_dict(r) for r in msg.requests],
        }
    if isinstance(msg, TraceBatchResponse):
        return MsgType.TRACE_BATCH_RESPONSE, {
            "responses": [_trace_response_to_dict(r) for r in msg.responses],
        }
    if isinstance(msg, Heartbeat):
        return MsgType.HEARTBEAT, {
            "agent_id": msg.agent_id,
            "seq": msg.seq,
            "uptime_s": msg.uptime_s,
            "samples_sent": msg.samples_sent,
            "failures_seen": msg.failures_seen,
        }
    if isinstance(msg, MonitorSample):
        return MsgType.MONITOR_SAMPLE, {
            "bug_id": msg.bug_id,
            "seed": msg.seed,
            "outcome": msg.outcome,
            "hang": msg.hang,
            "sample": None if msg.sample is None else sample_to_dict(msg.sample),
        }
    if isinstance(msg, DiagnosisResult):
        return MsgType.RESULT, {"signature": msg.signature, "digest": msg.digest}
    if isinstance(msg, Reject):
        return MsgType.REJECT, {"retry_after": msg.retry_after, "reason": msg.reason}
    if isinstance(msg, Goodbye):
        return MsgType.GOODBYE, {"agent_id": msg.agent_id}
    if isinstance(msg, WireFault):
        return MsgType.ERROR, {"message": msg.message}
    raise WireError(f"cannot put a {type(msg).__name__} on the wire")


def _decode_payload(msg_type: int, d: dict) -> Any:
    if msg_type == MsgType.HELLO:
        return Hello(agent_id=d["agent_id"], bug_id=d["bug_id"])
    if msg_type == MsgType.FAILURE:
        n = d["notification"]
        return FailureEnvelope(
            bug_id=d["bug_id"],
            seed=d["seed"],
            notification=FailureNotification(
                bug_hint=n["bug_hint"],
                failing_uid=n["failing_uid"],
                failing_tid=n["failing_tid"],
                time=n["time"],
            ),
            sample=sample_from_dict(d["sample"]),
        )
    if msg_type == MsgType.TRACE_REQUEST:
        return _trace_request_from_dict(d)
    if msg_type == MsgType.TRACE_RESPONSE:
        return _trace_response_from_dict(d)
    if msg_type == MsgType.TRACE_BATCH_REQUEST:
        return TraceBatchRequest(
            requests=tuple(_trace_request_from_dict(r) for r in d["requests"]),
        )
    if msg_type == MsgType.TRACE_BATCH_RESPONSE:
        return TraceBatchResponse(
            responses=tuple(_trace_response_from_dict(r) for r in d["responses"]),
        )
    if msg_type == MsgType.HEARTBEAT:
        return Heartbeat(
            agent_id=d["agent_id"],
            seq=d["seq"],
            uptime_s=d["uptime_s"],
            samples_sent=d["samples_sent"],
            failures_seen=d["failures_seen"],
        )
    if msg_type == MsgType.MONITOR_SAMPLE:
        sample = d["sample"]
        return MonitorSample(
            bug_id=d["bug_id"],
            seed=d["seed"],
            outcome=d["outcome"],
            hang=d["hang"],
            sample=None if sample is None else sample_from_dict(sample),
        )
    if msg_type == MsgType.RESULT:
        return DiagnosisResult(signature=d["signature"], digest=d["digest"])
    if msg_type == MsgType.REJECT:
        return Reject(retry_after=d["retry_after"], reason=d["reason"])
    if msg_type == MsgType.GOODBYE:
        return Goodbye(agent_id=d["agent_id"])
    if msg_type == MsgType.ERROR:
        return WireFault(message=d["message"])
    raise WireError(f"unknown message type {msg_type}")


# -- framing ---------------------------------------------------------------


def encode_frame(msg: Any, request_id: int = 0) -> bytes:
    msg_type, payload_dict = _encode_payload(msg)
    payload = bytearray()
    encode_value(payload_dict, payload)
    if len(payload) > MAX_PAYLOAD:
        raise WireError(f"payload of {len(payload)} bytes exceeds {MAX_PAYLOAD}")
    header = _HEADER.pack(
        MAGIC, VERSION, msg_type, request_id, len(payload), zlib.crc32(payload)
    )
    return header + bytes(payload)


def decode_header(header: bytes) -> tuple[int, int, int, int]:
    """-> (msg_type, request_id, payload_len, crc32)."""
    if len(header) < HEADER_SIZE:
        raise WireError(f"truncated frame: {len(header)} byte header")
    magic, version, msg_type, request_id, length, crc = _HEADER.unpack_from(header)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported wire version {version}")
    if length > MAX_PAYLOAD:
        raise WireError(f"declared payload of {length} bytes exceeds {MAX_PAYLOAD}")
    return msg_type, request_id, length, crc


def decode_payload(msg_type: int, payload: bytes, crc: int) -> Any:
    if zlib.crc32(payload) != crc:
        raise WireError("checksum mismatch: frame corrupt or truncated")
    value, pos = decode_value(payload)
    if pos != len(payload):
        raise WireError(f"{len(payload) - pos} trailing bytes after payload")
    if not isinstance(value, dict):
        raise WireError("payload root must be a dict")
    try:
        return _decode_payload(msg_type, value)
    except WireError:
        raise
    except Exception as exc:
        # e.g. a flipped msg-type byte that still checksums: the payload
        # dict is valid but carries another message's fields.  Surface a
        # protocol error, never a KeyError/TypeError into the transport.
        raise WireError(
            f"malformed payload for message type {msg_type}: "
            f"{type(exc).__name__}: {exc}"
        ) from None


def decode_frame(data: bytes) -> tuple[Any, int]:
    """Decode one complete frame; raises WireError on any damage."""
    msg_type, request_id, length, crc = decode_header(data)
    payload = data[HEADER_SIZE : HEADER_SIZE + length]
    if len(payload) != length:
        raise WireError(
            f"truncated frame: declared {length} payload bytes, got {len(payload)}"
        )
    return decode_payload(msg_type, payload, crc), request_id


# -- transports ------------------------------------------------------------


def send_frame_sock(sock: socket.socket, msg: Any, request_id: int = 0) -> None:
    sock.sendall(encode_frame(msg, request_id))


def recv_frame_sock(
    sock: socket.socket, frame_timeout: float | None = 30.0
) -> tuple[Any, int]:
    """Blocking read of one frame from a stream socket.

    Raises ConnectionError on EOF at a frame boundary (clean close) and
    WireError on EOF mid-frame (the peer died mid-send).  Once a frame
    has started arriving, the rest must follow within ``frame_timeout``
    seconds, or WireError is raised — a peer that hangs mid-frame
    (truncated send, wedged process) must not wedge the reader with it.
    """
    header = _recv_exact(sock, HEADER_SIZE, mid_frame=False, frame_timeout=frame_timeout)
    msg_type, request_id, length, crc = decode_header(header)
    payload = (
        _recv_exact(sock, length, mid_frame=True, frame_timeout=frame_timeout)
        if length
        else b""
    )
    return decode_payload(msg_type, payload, crc), request_id


def _recv_exact(
    sock: socket.socket,
    n: int,
    mid_frame: bool,
    frame_timeout: float | None = None,
) -> bytes:
    from time import monotonic

    chunks = bytearray()
    # the frame deadline arms once we are committed: immediately when
    # already mid-frame, at the first received byte otherwise
    deadline = (
        monotonic() + frame_timeout
        if mid_frame and frame_timeout is not None
        else None
    )
    while len(chunks) < n:
        try:
            chunk = sock.recv(n - len(chunks))
        except socket.timeout:
            if chunks or mid_frame:
                if deadline is not None and monotonic() > deadline:
                    raise WireError(
                        "peer hung mid-frame (frame timeout exceeded)"
                    ) from None
                continue  # committed to this frame; a poll timeout only
                # surfaces at a clean frame boundary
            raise
        if not chunk:
            if chunks or mid_frame:
                raise WireError("connection closed mid-frame")
            raise ConnectionError("connection closed")
        if not chunks and deadline is None and frame_timeout is not None:
            deadline = monotonic() + frame_timeout
        chunks += chunk
    return bytes(chunks)


async def read_frame_async(
    reader, frame_timeout: float | None = 30.0
) -> tuple[Any, int]:
    """Read one frame from an asyncio StreamReader.

    Waiting at a frame boundary is unbounded (an idle endpoint is
    legal); waiting for a started frame's payload is not.  A corrupted
    length field under MAX_PAYLOAD passes decode_header but declares
    bytes that never arrive — without ``frame_timeout`` that wedges the
    connection forever and silently eats every later frame on it.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise WireError("connection closed mid-frame") from None
        raise ConnectionError("connection closed") from None
    msg_type, request_id, length, crc = decode_header(header)
    try:
        if not length:
            payload = b""
        elif frame_timeout is None:
            payload = await reader.readexactly(length)
        else:
            payload = await asyncio.wait_for(
                reader.readexactly(length), frame_timeout
            )
    except asyncio.IncompleteReadError:
        raise WireError("connection closed mid-frame") from None
    except asyncio.TimeoutError:
        raise WireError("peer hung mid-frame (frame timeout exceeded)") from None
    return decode_payload(msg_type, payload, crc), request_id
