"""``repro.fleet.shard`` — a consistent-hash sharded fleet.

One ``FleetServer`` owning every agent is the scalability ceiling the
ROADMAP names first: all diagnosis work and all cache state funnel
through a single process.  This module splits the fleet across N
server shards in one process group:

* :class:`HashRing` / :class:`ShardRouter` — consistent hashing with
  virtual nodes over the *failure signature*.  Placement is
  deterministic (SHA-256, no process entropy), balanced (virtual nodes
  smooth the ring), and stable under membership change: when one of N
  shards leaves, only the signatures it owned move (≈1/N of keys), the
  classic consistent-hashing bound.
* :class:`ShardedFleet` — the coordinator: starts N :class:`FleetServer`
  shards that share one metrics registry and one
  :class:`~repro.store.DiagnosisStore`, routes signatures to shard
  addresses, and handles membership (kill/restart a shard in place,
  or remove one and rebalance its signatures onto the survivors).

Cross-shard dedup is the store's job, not the router's: every shard
consults the shared store before dispatching a diagnosis, so a
signature diagnosed on shard A — or routed to shard B after A's
removal — is a store hit, never a second pipeline run.  Shard
placement therefore affects only *where* fresh work runs; it can never
change *what* a diagnosis concludes, which is why a shard-kill chaos
run must converge to digests byte-identical to the single-server run.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import FleetError
from repro.fleet.metrics import FleetMetrics
from repro.fleet.server import FleetServer

DEFAULT_VNODES = 128


def signature_for_failure(bug_id: str, failing_run) -> str:
    """The failure signature an agent can compute *before* connecting —
    byte-identical to the server's :func:`failure_signature` over the
    envelope this run would produce (``sample.failure`` is
    ``run.failure.report``, so the kinds agree).  This is what lets a
    reporter route itself: find the failure offline, hash the signature
    onto the ring, then connect to the owning shard."""
    code = failing_run.failure
    if code is None:
        raise FleetError("run did not fail; no signature to route")
    kind = code.report.kind if code.report is not None else "unknown"
    return f"{bug_id}|{kind}|{code.failing_uid}"


class HashRing:
    """Consistent hashing with virtual nodes.

    Each node contributes ``vnodes`` points on a 64-bit ring (SHA-256
    of ``"{node}#{i}"`` — content-hashed, so placement is identical
    across processes and runs regardless of ``PYTHONHASHSEED``).  A key
    maps to the owner of the first ring point at or after its hash.
    """

    def __init__(self, nodes=(), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise FleetError("hash ring needs vnodes >= 1")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._ring: list[tuple[int, str]] = []  # (point, node), sorted
        self._points: list[int] = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _point(label: str) -> int:
        return int.from_bytes(
            hashlib.sha256(label.encode()).digest()[:8], "big"
        )

    def _rebuild(self) -> None:
        self._ring.sort()
        self._points = [point for point, _ in self._ring]

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise FleetError(f"shard {node!r} is already on the ring")
        self._nodes.add(node)
        self._ring.extend(
            (self._point(f"{node}#{i}"), node) for i in range(self.vnodes)
        )
        self._rebuild()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise FleetError(f"shard {node!r} is not on the ring")
        self._nodes.remove(node)
        self._ring = [(p, n) for p, n in self._ring if n != node]
        self._rebuild()

    def node_for(self, key: str) -> str:
        if not self._ring:
            raise FleetError("hash ring is empty")
        index = bisect.bisect_right(self._points, self._point(key))
        return self._ring[index % len(self._ring)][1]

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


class ShardRouter:
    """Signature → shard placement over a :class:`HashRing`."""

    def __init__(self, shard_names, vnodes: int = DEFAULT_VNODES):
        self.ring = HashRing(shard_names, vnodes=vnodes)

    def route(self, signature: str) -> str:
        return self.ring.node_for(signature)

    def add_shard(self, name: str) -> None:
        self.ring.add(name)

    def remove_shard(self, name: str) -> None:
        self.ring.remove(name)

    def placement(self, signatures) -> dict[str, list[str]]:
        """Signatures grouped by owning shard (diagnostics/tests)."""
        groups: dict[str, list[str]] = {name: [] for name in self.ring.nodes}
        for signature in signatures:
            groups[self.route(signature)].append(signature)
        return groups

    @property
    def shard_names(self) -> list[str]:
        return sorted(self.ring.nodes)


class ShardedFleet:
    """N fleet-server shards, one shared store, one metrics registry.

    All shards live in this process group (each ``FleetServer`` runs
    its own event-loop thread and worker pool), listen on their own
    ports, and write through to the same :class:`DiagnosisStore` — the
    multi-process deployment story with single-process testability.
    ``server_kwargs`` are forwarded to every shard's ``FleetServer``.
    """

    def __init__(
        self,
        shards: int = 3,
        store=None,
        host: str = "127.0.0.1",
        metrics: FleetMetrics | None = None,
        obs=None,
        vnodes: int = DEFAULT_VNODES,
        **server_kwargs,
    ):
        if shards < 1:
            raise FleetError("a sharded fleet needs at least one shard")
        self.store = store
        self.metrics = metrics or FleetMetrics()
        self.obs = obs
        names = [f"shard-{i}" for i in range(shards)]
        self.router = ShardRouter(names, vnodes=vnodes)
        self.servers: dict[str, FleetServer] = {
            name: FleetServer(
                host=host,
                port=0,
                metrics=self.metrics,
                store=store,
                obs=obs,
                **server_kwargs,
            )
            for name in names
        }
        self._addresses: dict[str, tuple[str, int]] = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> dict[str, tuple[str, int]]:
        for name, server in self.servers.items():
            self._addresses[name] = server.start()
        return dict(self._addresses)

    def stop(self, drain: bool = True) -> None:
        for server in self.servers.values():
            server.stop(drain=drain)
        self._addresses.clear()
        if self.store is not None:
            self.store.absorb_into(self.metrics)

    # -- routing -----------------------------------------------------------

    def route(self, signature: str) -> str:
        """The owning shard's name (recorded as a ``shard_route`` span
        and counter, the placement side of the obs story)."""
        tracer = self.obs.tracer if self.obs is not None else None
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER as tracer  # noqa: N813
        with tracer.span("shard_route", signature=signature) as span:
            name = self.router.route(signature)
            span.set(shard=name)
        self.metrics.inc("shard_routes")
        self.metrics.inc(f"shard_routes_{name.replace('-', '_')}")
        return name

    def address_of(self, name: str) -> tuple[str, int]:
        try:
            return self._addresses[name]
        except KeyError:
            raise FleetError(f"shard {name!r} is not running") from None

    def address_for(self, signature: str) -> tuple[str, int]:
        return self.address_of(self.route(signature))

    def server_for(self, signature: str) -> FleetServer:
        return self.servers[self.route(signature)]

    @property
    def shard_names(self) -> list[str]:
        return self.router.shard_names

    # -- always-on monitoring ----------------------------------------------

    def fleet_status(self) -> dict:
        """Aggregate health across shards: one merged agent table (rows
        stamped with their shard), anomaly snapshots keyed by shard."""
        agents: list[dict] = []
        anomaly: dict[str, dict] = {}
        diagnosed: dict[str, dict] = {}
        for name, server in self.servers.items():
            status = server.fleet_status()
            agents.extend({**row, "shard": name} for row in status["agents"])
            anomaly[name] = status["anomaly"]
            diagnosed.update(status["diagnosed"])
        return {"agents": agents, "anomaly": anomaly, "diagnosed": diagnosed}

    def evidence_payload(self, key: str) -> dict | None:
        """One evidence graph, whichever shard diagnosed it (the shared
        store makes this a hit even after that shard was removed)."""
        for server in self.servers.values():
            payload = server.evidence_payload(key)
            if payload is not None:
                return payload
        return None

    # -- membership --------------------------------------------------------

    def restart_shard(self, name: str) -> None:
        """Kill a shard in place (drop its listener and every agent
        connection) and bring it back on the same port — the shard-kill
        chaos scenario.  Routing is unchanged; recovery is the agents'
        reconnect machinery plus the shared store's warm state."""
        if name not in self.servers:
            raise FleetError(f"unknown shard {name!r}")
        self.metrics.inc("shard_kills")
        self.servers[name].restart()

    def remove_shard(self, name: str, drain: bool = True) -> None:
        """Take a shard out of the fleet for good: stop its server and
        rebalance its ring segment onto the survivors.  Signatures it
        had already diagnosed are store hits wherever they land next."""
        if name not in self.servers:
            raise FleetError(f"unknown shard {name!r}")
        if len(self.servers) == 1:
            raise FleetError("cannot remove the last shard")
        server = self.servers.pop(name)
        self._addresses.pop(name, None)
        self.router.remove_shard(name)
        self.metrics.inc("shards_removed")
        server.stop(drain=drain)
