"""Networked fleet diagnosis: the paper's deployment model as a service.

``repro.runtime`` is one machine talking to itself; ``repro.fleet`` is
the Figure 2 fleet — endpoint agents reporting in-production failures
over TCP to a central server that deduplicates them, collects
successful traces from idle endpoints, runs Lazy Diagnosis on a bounded
worker pool, and fans each root cause back to every affected endpoint.

Layers::

    wire        length-prefixed, checksummed binary frames for the
                runtime protocol messages and TraceSample payloads
    chaos       deterministic, seed-driven fault injection over the
                wire transports (corruption, drops, delays, crashes)
    metrics     thread-safe counters/gauges/latency timers
    jobs        bounded diagnosis worker pool: dedup + backpressure
    anomaly     EWMA failure/hang scoring for always-on monitoring
    server      asyncio TCP server wrapping SnorlaxServer
    agent       synchronous endpoint agent owning a SnorlaxClient
                (+ MonitorLoop: heartbeats and sampled telemetry)
    shard       consistent-hash sharding: N servers, one shared store
    simulation  ≥50-agent localhost fleet (python -m repro.fleet)
"""

from repro.fleet.agent import FleetAgent, MonitorLoop
from repro.fleet.anomaly import AnomalyEvent, EwmaAnomalyDetector
from repro.fleet.chaos import (
    AgentCrashed,
    ChaosSocket,
    FaultEngine,
    FaultPlan,
    LinkCut,
)
from repro.fleet.jobs import DiagnosisJobQueue, JobRejected, QueueClosed
from repro.fleet.metrics import FleetMetrics
from repro.fleet.server import (
    FleetServer,
    failure_signature,
    render_digest,
    report_digest,
)
from repro.fleet.shard import (
    HashRing,
    ShardedFleet,
    ShardRouter,
    signature_for_failure,
)
from repro.fleet.simulation import (
    DEFAULT_BUGS,
    AgentOutcome,
    FleetConfig,
    FleetRunResult,
    run_fleet,
)
from repro.fleet.wire import (
    DiagnosisResult,
    FailureEnvelope,
    Goodbye,
    Heartbeat,
    Hello,
    MonitorSample,
    MsgType,
    Reject,
    TraceBatchRequest,
    TraceBatchResponse,
    WireFault,
    decode_frame,
    encode_frame,
    sample_from_dict,
    sample_to_dict,
)

__all__ = [
    "FleetAgent",
    "MonitorLoop",
    "AnomalyEvent",
    "EwmaAnomalyDetector",
    "AgentCrashed",
    "ChaosSocket",
    "FaultEngine",
    "FaultPlan",
    "LinkCut",
    "DiagnosisJobQueue",
    "JobRejected",
    "QueueClosed",
    "FleetMetrics",
    "FleetServer",
    "failure_signature",
    "render_digest",
    "report_digest",
    "HashRing",
    "ShardedFleet",
    "ShardRouter",
    "signature_for_failure",
    "DEFAULT_BUGS",
    "AgentOutcome",
    "FleetConfig",
    "FleetRunResult",
    "run_fleet",
    "DiagnosisResult",
    "FailureEnvelope",
    "Goodbye",
    "Heartbeat",
    "Hello",
    "MonitorSample",
    "MsgType",
    "Reject",
    "TraceBatchRequest",
    "TraceBatchResponse",
    "WireFault",
    "decode_frame",
    "encode_frame",
    "sample_from_dict",
    "sample_to_dict",
]
