"""Anomaly detection for the always-on fleet: EWMA failure scoring.

The request/response fleet waits for an endpoint to *report* a failure.
An always-on fleet should not have to wait: the monitor loops stream
sampled execution outcomes continuously, and this detector decides —
unprompted — when a failure signature is hot enough to diagnose.

Per ``(bug_id, signature)`` the detector keeps two exponentially
weighted moving averages over the bug's sample stream:

* **failure rate** — every sample of the bug decays every signature's
  score by ``1 - alpha``; a sample that *hits* the signature adds
  ``alpha``.  The score is therefore a smoothed per-sample failure
  frequency in [0, 1].
* **hang rate** — the same recurrence fed only by hang-shaped failures
  (deadlocks); hangs are rarer and costlier, so they trip at a lower
  threshold.

A signature triggers when its score crosses the threshold with at
least ``min_observations`` samples behind it, and at most once per
``window_s`` of caller-supplied time (the server passes its event
loop's clock; the soak passes a compressed clock — the detector never
reads a wall clock itself, so compressed-time tests are exact).

The detector is deterministic, lock-free (the server drives it from
the event-loop thread only), and bounded: signatures whose score has
decayed to noise are pruned on observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# scores below this are indistinguishable from "never fails"; pruning
# at it keeps per-bug state bounded over unbounded monitoring time
_PRUNE_EPSILON = 1e-6


@dataclass
class SignatureState:
    """One failure signature's rolling statistics."""

    score: float = 0.0  # EWMA of the failure indicator
    hang_score: float = 0.0  # EWMA of the hang indicator
    observations: int = 0  # samples of the owning bug seen since birth
    hits: int = 0  # samples that were this signature
    last_trigger: float | None = None  # detector time of the last trigger


@dataclass
class AnomalyEvent:
    """One detector trip: what fired and why (for the timeline)."""

    bug_id: str
    signature: str
    score: float
    hang_score: float
    reason: str  # "failure-rate" | "hang-rate"
    at: float


@dataclass
class EwmaAnomalyDetector:
    """EWMA failure/hang scoring with once-per-window triggering."""

    alpha: float = 0.25
    failure_threshold: float = 0.5
    hang_threshold: float = 0.3
    window_s: float = 60.0
    min_observations: int = 3
    _bugs: dict[str, dict[str, SignatureState]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")

    def observe(
        self,
        bug_id: str,
        signature: str | None,
        hang: bool,
        now: float,
    ) -> AnomalyEvent | None:
        """Feed one sampled execution; returns the anomaly it tripped.

        ``signature`` is None for a successful execution — it decays
        every tracked signature of the bug without crediting any.
        """
        states = self._bugs.setdefault(bug_id, {})
        decay = 1.0 - self.alpha
        stale: list[str] = []
        for sig, state in states.items():
            state.score *= decay
            state.hang_score *= decay
            state.observations += 1
            if (
                sig != signature
                and state.score < _PRUNE_EPSILON
                and state.hang_score < _PRUNE_EPSILON
            ):
                stale.append(sig)
        for sig in stale:
            del states[sig]
        if signature is None:
            return None
        state = states.get(signature)
        if state is None:
            state = states[signature] = SignatureState(observations=1)
        state.score += self.alpha
        if hang:
            state.hang_score += self.alpha
        state.hits += 1
        return self._maybe_trigger(bug_id, signature, state, now)

    def _maybe_trigger(
        self, bug_id: str, signature: str, state: SignatureState, now: float
    ) -> AnomalyEvent | None:
        if state.observations < self.min_observations:
            return None
        if (
            state.last_trigger is not None
            and now - state.last_trigger < self.window_s
        ):
            return None  # once per signature per window
        reason = None
        if state.hang_score >= self.hang_threshold:
            reason = "hang-rate"
        elif state.score >= self.failure_threshold:
            reason = "failure-rate"
        if reason is None:
            return None
        state.last_trigger = now
        return AnomalyEvent(
            bug_id=bug_id,
            signature=signature,
            score=state.score,
            hang_score=state.hang_score,
            reason=reason,
            at=now,
        )

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, dict]]:
        """The dashboard's view: per bug, per signature, the live scores."""
        return {
            bug_id: {
                sig: {
                    "score": round(state.score, 6),
                    "hang_score": round(state.hang_score, 6),
                    "observations": state.observations,
                    "hits": state.hits,
                    "last_trigger": state.last_trigger,
                }
                for sig, state in states.items()
            }
            for bug_id, states in self._bugs.items()
        }

    def tracked_signatures(self, bug_id: str) -> int:
        return len(self._bugs.get(bug_id, ()))
