"""Deterministic fault injection for the fleet transport.

In production the network misbehaves: frames arrive damaged or not at
all, links are slow, endpoint processes die mid-request, and the
diagnosis server itself restarts.  The fleet must keep producing
byte-identical diagnoses through all of it — trace collection is
deterministic in (seed, breakpoints, skip), so a lost or mangled
request can always be re-issued and yields the same evidence.

This module makes that failure weather *reproducible*.  A
:class:`FaultPlan` is a pure description of fault rates plus a seed;
:meth:`FaultPlan.engine` derives one :class:`FaultEngine` per endpoint
whose decision stream comes from ``random.Random(seed | endpoint_id)``
— no wall-clock entropy, so a given plan replays the same faults for
the same sequence of transport operations.  The engine wraps an
agent's TCP socket in a :class:`ChaosSocket` that mangles traffic at
frame granularity:

* **corrupt** — flip a byte anywhere in an outbound frame (the crc32
  rejects it on the far side) or in inbound bytes;
* **truncate** — send a prefix of the frame, then cut the connection
  (what a peer dying mid-``send`` looks like);
* **drop** — swallow an outbound ``TraceResponse`` whole (the server's
  per-request timeout fires and the request is rerouted);
* **delay / slow link** — sleep before a send, or pace bytes at a
  configured throughput;
* **crash** — the agent process dies right before answering a trace
  request (socket hard-closed, :class:`AgentCrashed` raised into the
  serving loop, which models the process restarting via reconnect).

Liveness-critical frames (``HELLO``, ``FAILURE``, ``GOODBYE``) are
never silently dropped — a real network can lose them too, but then
the *sender* notices the missing reply and retries; our agents retry
at reconnect granularity, so chaos models loss of those frames as
corruption or truncation (both sever the connection and force a
reconnect) rather than as a silent swallow that no timeout guards.

``server_restart_after_s`` is scheduled by the simulation, not the
socket wrapper: the fleet server drops its listener and every
connection mid-run, then listens again on the same port, and the
agents' reconnect/backoff machinery re-forms the fleet.
"""

from __future__ import annotations

import socket
import time
from collections import Counter
from dataclasses import dataclass, field
from random import Random

from repro.fleet.wire import HEADER_SIZE, MsgType, decode_header

_NEVER_DROPPED = frozenset(
    {MsgType.HELLO, MsgType.FAILURE, MsgType.GOODBYE}
)
# "dies right before answering": both the single-response frame and the
# batched wave frame count as answering a trace request
_ANSWER_FRAMES = frozenset(
    {MsgType.TRACE_RESPONSE, MsgType.TRACE_BATCH_RESPONSE}
)


class AgentCrashed(ConnectionError):
    """Injected: the endpoint process died mid-request."""


class LinkCut(ConnectionError):
    """Injected: the link went away mid-frame (truncation)."""


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible description of how the network misbehaves.

    Rates are per-frame probabilities drawn from the per-endpoint
    seeded stream; ``0.0`` disables a fault class.  The plan object is
    immutable and shareable — per-endpoint mutable state lives in the
    :class:`FaultEngine` it derives.
    """

    seed: int = 0
    corrupt_rate: float = 0.0  # flip a byte in an outbound frame
    truncate_rate: float = 0.0  # cut the frame (and the connection) short
    drop_rate: float = 0.0  # swallow an outbound TraceResponse whole
    delay_rate: float = 0.0  # sleep before sending a frame
    max_delay_s: float = 0.05  # uniform(0, max) per delayed frame
    inbound_corrupt_rate: float = 0.0  # flip a byte in received chunks
    crash_rate: float = 0.0  # die right before answering a request
    max_crashes_per_agent: int = 2  # bound injected crashes (liveness)
    slow_link_bytes_per_s: float | None = None  # pace outbound throughput
    server_restart_after_s: float | None = None  # simulation-level event

    @property
    def wraps_sockets(self) -> bool:
        """Does this plan inject anything at the socket layer?"""
        return any(
            rate > 0.0
            for rate in (
                self.corrupt_rate,
                self.truncate_rate,
                self.drop_rate,
                self.delay_rate,
                self.inbound_corrupt_rate,
                self.crash_rate,
            )
        ) or self.slow_link_bytes_per_s is not None

    @property
    def active(self) -> bool:
        return self.wraps_sockets or self.server_restart_after_s is not None

    def engine(self, endpoint_id: str) -> "FaultEngine":
        """The per-endpoint fault stream; deterministic in (seed, id)."""
        return FaultEngine(self, endpoint_id)


@dataclass
class FaultEngine:
    """One endpoint's seeded fault decisions plus injected-fault counts.

    The same engine survives reconnects (each new socket is wrapped by
    the same engine), so an endpoint's decision stream is a single
    seeded sequence across its whole lifetime.
    """

    plan: FaultPlan
    endpoint_id: str
    counts: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        # str seeding hashes the bytes (not PYTHONHASHSEED), so the
        # stream is reproducible across processes and runs
        self.rng = Random(f"snorlax-chaos|{self.plan.seed}|{self.endpoint_id}")

    def wrap(self, sock: socket.socket) -> "ChaosSocket":
        return ChaosSocket(sock, self)

    # -- decisions ----------------------------------------------------------

    def _roll(self, rate: float) -> bool:
        return rate > 0.0 and self.rng.random() < rate

    def _corrupted(self, data: bytes) -> bytes:
        buf = bytearray(data)
        index = self.rng.randrange(len(buf))
        buf[index] ^= self.rng.randrange(1, 256)  # non-zero mask: a real flip
        return bytes(buf)

    # -- outbound (one sendall == one frame) --------------------------------

    def send_frame(self, sock: socket.socket, data: bytes) -> None:
        """Apply the plan to one outbound frame and send what survives."""
        plan = self.plan
        try:
            msg_type, _, _, _ = decode_header(data[:HEADER_SIZE])
        except Exception:
            msg_type = None  # unknowable: treat as droppable payload
        if self._roll(plan.delay_rate):
            self.counts["delayed"] += 1
            time.sleep(self.rng.uniform(0.0, plan.max_delay_s))
        if (
            msg_type in _ANSWER_FRAMES
            and self.counts["crashes"] < plan.max_crashes_per_agent
            and self._roll(plan.crash_rate)
        ):
            self.counts["crashes"] += 1
            sock.close()
            raise AgentCrashed(
                f"chaos: {self.endpoint_id} crashed before answering"
            )
        if msg_type not in _NEVER_DROPPED and self._roll(plan.drop_rate):
            self.counts["dropped"] += 1
            return  # the far side's per-request timeout reroutes it
        if self._roll(plan.truncate_rate) and len(data) > 1:
            self.counts["truncated"] += 1
            cut = self.rng.randrange(1, len(data))
            self._paced_send(sock, data[:cut])
            sock.close()
            raise LinkCut(f"chaos: link to {self.endpoint_id} cut mid-frame")
        if self._roll(plan.corrupt_rate):
            self.counts["corrupted"] += 1
            data = self._corrupted(data)
        self._paced_send(sock, data)

    def _paced_send(self, sock: socket.socket, data: bytes) -> None:
        rate = self.plan.slow_link_bytes_per_s
        if rate:
            time.sleep(len(data) / rate)
        sock.sendall(data)

    # -- inbound -------------------------------------------------------------

    def recv_chunk(self, data: bytes) -> bytes:
        """Apply inbound faults to one received chunk."""
        if data and self._roll(self.plan.inbound_corrupt_rate):
            self.counts["inbound_corrupted"] += 1
            return self._corrupted(data)
        return data


class ChaosSocket:
    """A stream socket whose traffic passes through a FaultEngine.

    Quacks like the subset of :class:`socket.socket` the fleet agent
    uses (``sendall``/``recv``/``settimeout``/``close``).  Each
    ``sendall`` is one wire frame — the agent sends whole frames — so
    faults land on frame boundaries, the granularity the wire codec's
    crc32 and the server's per-request timeout are built to absorb.
    """

    def __init__(self, sock: socket.socket, engine: FaultEngine):
        self._sock = sock
        self.engine = engine

    def sendall(self, data: bytes) -> None:
        self.engine.send_frame(self._sock, data)

    def recv(self, bufsize: int) -> bytes:
        return self.engine.recv_chunk(self._sock.recv(bufsize))

    def settimeout(self, value: float | None) -> None:
        self._sock.settimeout(value)

    def close(self) -> None:
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()
