"""The endpoint agent: one production machine of the fleet.

An agent owns a :class:`SnorlaxClient` for the program it runs.  It does
two things, both over a single TCP connection to the fleet server:

* **Report failures** (Figure 2 step 1): run the production workload;
  when an execution fails, ship the error-tracker notification plus the
  failing trace sample, then wait for the fleet-wide diagnosis (serving
  trace requests in the meantime — the reporting endpoint is as good a
  source of successful traces as any other).
* **Answer trace requests** (step 8): execute the requested seed with
  the requested breakpoints/skip and return the snapshot, exactly what
  ``SnorlaxServer.handle_trace_request`` does in-process.

Agents are deliberately synchronous (blocking socket, one thread each):
a real endpoint is a separate machine, and the simulation runs ≥50 of
them as threads against the asyncio server.

Production endpoints do not get a polite localhost: frames arrive
damaged, the server restarts, the process itself dies and comes back.
So connection failures are *survivable* here, not fatal — on any
:class:`WireError`/``ConnectionError``/``OSError`` the agent drops the
socket and reconnects with exponential backoff plus deterministic
jitter (seeded per agent id, so a simulated fleet's retry storm is
reproducible).  A reporting agent that loses its connection re-sends
its failure envelope after reconnecting; the server's signature dedup
makes the re-report idempotent, and an already-finished diagnosis is
delivered from the job cache immediately.
"""

from __future__ import annotations

import socket
import threading
import time
from random import Random

from repro.errors import FleetError, WireError
from repro.fleet.wire import (
    DiagnosisResult,
    FailureEnvelope,
    Goodbye,
    Heartbeat,
    Hello,
    MonitorSample,
    Reject,
    TraceBatchRequest,
    TraceBatchResponse,
    WireFault,
    recv_frame_sock,
    send_frame_sock,
)
from repro.ir.module import Module
from repro.runtime.client import ClientRun, SnorlaxClient, Workload
from repro.runtime.protocol import FailureNotification, TraceRequest, TraceResponse
from repro.runtime.server import sample_from_run

_POLL_S = 0.1  # socket timeout used to poll stop events
_RECOVERABLE = (ConnectionError, WireError, OSError)


class FleetAgent:
    def __init__(
        self,
        agent_id: str,
        bug_id: str,
        module: Module,
        workload: Workload,
        host: str,
        port: int,
        entry: str = "main",
        connect_timeout: float = 10.0,
        fault_engine=None,
        reconnect_attempts: int = 8,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        frame_timeout: float = 30.0,
    ):
        self.agent_id = agent_id
        self.bug_id = bug_id
        self.client = SnorlaxClient(module, workload, entry=entry)
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        # fault injection: when set, every socket this agent opens is
        # wrapped so the chaos plan's per-endpoint stream applies
        self.fault_engine = fault_engine
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.frame_timeout = frame_timeout
        self.trace_requests_served = 0
        self.rejections = 0
        self.reconnects = 0
        self.failure_resends = 0
        self._sock: socket.socket | None = None
        # deterministic jitter: a fleet's backoff pattern replays
        self._backoff_rng = Random(f"snorlax-agent-backoff|{agent_id}")

    @classmethod
    def from_spec(
        cls, agent_id: str, spec, host: str, port: int, **kwargs
    ) -> "FleetAgent":
        """Build an agent for a corpus bug (module cached on the spec)."""
        return cls(
            agent_id,
            spec.bug_id,
            spec.module(),
            spec.workload,
            host,
            port,
            entry=spec.entry,
            **kwargs,
        )

    # -- connection --------------------------------------------------------

    def connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        # small request/response frames ping-pong on this socket; Nagle
        # + delayed ACK would add ~40ms to every collection round-trip
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(_POLL_S)
        if self.fault_engine is not None:
            sock = self.fault_engine.wrap(sock)
        self._sock = sock
        self._send(Hello(agent_id=self.agent_id, bug_id=self.bug_id))

    def connect_resilient(self, stop: threading.Event | None = None) -> None:
        """First connection with the same survivability as reconnection:
        a HELLO damaged in flight (truncated, corrupted) retries with
        backoff instead of killing the agent before it ever joined."""
        try:
            self.connect()
        except _RECOVERABLE:
            if not self._reconnect(stop):
                raise FleetError(
                    f"agent {self.agent_id}: could not reach the fleet server"
                ) from None

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._send(Goodbye(agent_id=self.agent_id))
        except OSError:
            pass
        self._sock.close()
        self._sock = None

    def _send(self, msg, request_id: int = 0) -> None:
        if self._sock is None:
            raise FleetError(f"agent {self.agent_id} is not connected")
        send_frame_sock(self._sock, msg, request_id)

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _reconnect(self, stop: threading.Event | None = None) -> bool:
        """Exponential backoff + jitter until connected; False when the
        attempt budget is spent or ``stop`` was set (give up cleanly)."""
        self._drop_socket()
        for attempt in range(self.reconnect_attempts):
            delay = min(self.backoff_cap_s, self.backoff_base_s * (2**attempt))
            delay *= 0.5 + self._backoff_rng.random()  # jitter in [0.5, 1.5)
            if stop is not None:
                if stop.wait(delay):
                    return False
            else:
                time.sleep(delay)
            try:
                self.connect()
            except OSError:
                self._drop_socket()
                continue
            self.reconnects += 1
            return True
        return False

    # -- serving -----------------------------------------------------------

    def serve_until(self, stop: threading.Event) -> None:
        """Answer trace requests until asked to stop (an idle endpoint).

        Connection damage — a corrupt frame, the server restarting, an
        injected crash — is survived by reconnecting with backoff; the
        agent only returns once ``stop`` is set or reconnection is
        exhausted (the server is genuinely gone).
        """
        while not stop.is_set():
            try:
                frame = self._recv_poll()
                if frame is None:
                    continue
                msg, request_id = frame
                if isinstance(msg, TraceRequest):
                    self._serve_trace_request(msg, request_id)
                elif isinstance(msg, TraceBatchRequest):
                    self._serve_trace_batch(msg, request_id)
                # anything else while idle (late results for a signature
                # we also reported) is informational; drop it
            except _RECOVERABLE:
                if not self._reconnect(stop):
                    return

    def _run_trace_request(self, request: TraceRequest) -> TraceResponse:
        run = self.client.run_once(
            request.seed,
            breakpoint_uids=request.breakpoint_uids,
            breakpoint_skip=request.breakpoint_skip,
        )
        sample = None
        if run.snapshot is not None:
            sample = sample_from_run(request.label, run)
        self.trace_requests_served += 1
        return TraceResponse(
            label=request.label, outcome=run.result.outcome, sample=sample
        )

    def _serve_trace_request(self, request: TraceRequest, request_id: int) -> None:
        self._send(self._run_trace_request(request), request_id)

    def _serve_trace_batch(self, batch: TraceBatchRequest, request_id: int) -> None:
        """Run a whole speculative wave chunk and answer with one frame.

        Executions are sequential on this endpoint (one CPU's worth of
        production machine); the fan-out parallelism lives on the server
        side, which shards the wave across many agents.
        """
        responses = tuple(self._run_trace_request(r) for r in batch.requests)
        self._send(TraceBatchResponse(responses=responses), request_id)

    def _recv_poll(self, timeout: float | None = None):
        """One poll for an inbound frame; None on quiet.  ``timeout``
        overrides the default 100ms poll for callers with their own
        cadence (the monitor loop drains between samples at ~5ms)."""
        if self._sock is None:
            raise FleetError(f"agent {self.agent_id} is not connected")
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            return recv_frame_sock(self._sock, frame_timeout=self.frame_timeout)
        except socket.timeout:
            return None
        finally:
            if timeout is not None and self._sock is not None:
                self._sock.settimeout(_POLL_S)

    # -- failure reporting -------------------------------------------------

    def find_failure(self, start_seed: int = 0) -> ClientRun:
        runs = self.client.find_runs(True, 1, start_seed=start_seed)
        if not runs:
            raise FleetError(f"agent {self.agent_id}: no failing run found")
        return runs[0]

    def report_failure(
        self,
        failing_run: ClientRun,
        stop: threading.Event | None = None,
        max_wait: float = 300.0,
        max_server_faults: int = 3,
    ) -> DiagnosisResult:
        """Ship a failure, keep serving trace requests, return the
        diagnosis.  Backpressure rejections are honored by sleeping the
        server's retry-after hint and resending; connection loss is
        honored by reconnecting and resending (signature dedup makes the
        re-report idempotent)."""
        if failing_run.failure is None or failing_run.snapshot is None:
            raise FleetError("failing run carries no failure/snapshot")
        code = failing_run.failure
        envelope = FailureEnvelope(
            bug_id=self.bug_id,
            seed=failing_run.seed,
            notification=FailureNotification(
                bug_hint=self.bug_id,
                failing_uid=code.failing_uid,
                failing_tid=code.failing_tid,
                time=code.time,
            ),
            sample=sample_from_run("failure", failing_run),
        )
        server_faults = 0
        self._send_resilient(envelope, stop)
        deadline = time.monotonic() + max_wait
        while time.monotonic() < deadline and (stop is None or not stop.is_set()):
            try:
                frame = self._recv_poll()
                if frame is None:
                    continue
                msg, request_id = frame
                if isinstance(msg, TraceRequest):
                    # the reporting endpoint still serves step-8 collection
                    self._serve_trace_request(msg, request_id)
                elif isinstance(msg, TraceBatchRequest):
                    self._serve_trace_batch(msg, request_id)
                elif isinstance(msg, DiagnosisResult):
                    return msg
                elif isinstance(msg, Reject):
                    self.rejections += 1
                    time.sleep(msg.retry_after)
                    self._send(envelope)
                elif isinstance(msg, WireFault):
                    # a failed diagnosis or protocol fault is retryable:
                    # the job queue evicts failed signatures, so a
                    # re-report runs the diagnosis again
                    server_faults += 1
                    if server_faults > max_server_faults:
                        raise FleetError(
                            f"agent {self.agent_id}: server error: {msg.message}"
                        )
                    time.sleep(self.backoff_base_s)
                    self._resend(envelope, stop)
            except _RECOVERABLE:
                self._resend(envelope, stop)
        raise FleetError(
            f"agent {self.agent_id}: no diagnosis within {max_wait:.0f}s"
        )

    def _resend(self, envelope: FailureEnvelope, stop) -> None:
        """Reconnect and re-report after a damaged connection."""
        if not self._reconnect(stop):
            raise FleetError(f"agent {self.agent_id}: lost the fleet server")
        self.failure_resends += 1
        self._send_resilient(envelope, stop)

    def _send_resilient(self, envelope: FailureEnvelope, stop) -> None:
        while True:
            try:
                self._send(envelope)
                return
            except _RECOVERABLE:
                if not self._reconnect(stop):
                    raise FleetError(
                        f"agent {self.agent_id}: lost the fleet server"
                    ) from None
                self.failure_resends += 1

    def produce_and_report(
        self, stop: threading.Event | None = None, start_seed: int = 0
    ) -> DiagnosisResult:
        """The full endpoint story: hit the bug in production, report it,
        help collect evidence, receive the root cause."""
        return self.report_failure(self.find_failure(start_seed), stop=stop)


class MonitorLoop:
    """The always-on half of an endpoint: heartbeats + sampled telemetry.

    Where :meth:`FleetAgent.report_failure` is request/response (hit a
    failure, ship it, wait), the monitor loop runs forever: on a timer it
    sends a :class:`Heartbeat` (liveness) and executes one production
    sample (the next seed in sequence), shipping the outcome as a
    :class:`MonitorSample` — evidence attached only when the run failed.
    The server's anomaly detector decides when the stream is hot enough
    to diagnose; this side never asks.

    Time is injected: :meth:`tick` takes ``now`` explicitly, so the soak
    harness drives hours of fleet time through a compressed clock while
    :meth:`run` is the thin real-time wrapper production would use.
    Sampling walks seeds sequentially from ``start_seed`` — the same
    walk :meth:`FleetAgent.find_failure` does — so the first failing
    sample the monitor ships is byte-identical to the envelope a
    reporting endpoint would have sent, and anomaly-triggered diagnoses
    digest identically to on-demand ones.

    Between timer events the loop drains inbound frames and serves trace
    requests: a monitored endpoint is still step-8 labor for whatever
    diagnosis its own telemetry triggered.
    """

    def __init__(
        self,
        agent: FleetAgent,
        heartbeat_interval_s: float = 1.0,
        sample_interval_s: float = 0.5,
        start_seed: int = 0,
        clock=time.monotonic,
        drain_timeout_s: float = 0.005,
    ):
        self.agent = agent
        self.heartbeat_interval_s = heartbeat_interval_s
        self.sample_interval_s = sample_interval_s
        self.clock = clock
        self.drain_timeout_s = drain_timeout_s
        self.seq = 0
        self.samples_sent = 0
        self.failures_seen = 0
        self.trace_requests_served = 0
        self._next_seed = start_seed
        self._started_at: float | None = None
        self._next_heartbeat = 0.0
        self._next_sample = 0.0

    def tick(self, now: float | None = None, stop: threading.Event | None = None) -> list[str]:
        """One scheduling step at time ``now``: drain inbound, then fire
        whichever timers are due.  Returns event labels (``"heartbeat"``,
        ``"sample:success"``, ``"sample:failure"``, ``"reconnect"``) for
        harnesses that assert on cadence."""
        if now is None:
            now = self.clock()
        if self._started_at is None:
            # first tick: both timers fire immediately
            self._started_at = now
            self._next_heartbeat = now
            self._next_sample = now
        events: list[str] = []
        try:
            self._drain()
            if now >= self._next_heartbeat:
                self._heartbeat(now)
                events.append("heartbeat")
                self._next_heartbeat = now + self.heartbeat_interval_s
            if now >= self._next_sample:
                events.append(self._sample())
                self._next_sample = now + self.sample_interval_s
        except _RECOVERABLE:
            if not self.agent._reconnect(stop):
                raise FleetError(
                    f"agent {self.agent.agent_id}: lost the fleet server"
                ) from None
            events.append("reconnect")
        return events

    def run(self, stop: threading.Event, tick_s: float = 0.01) -> None:
        """Real-time wrapper: tick on the wall clock until stopped."""
        while not stop.is_set():
            self.tick(self.clock(), stop=stop)
            stop.wait(tick_s)

    def _drain(self) -> None:
        """Serve every inbound frame already on the wire, then return."""
        while True:
            frame = self.agent._recv_poll(timeout=self.drain_timeout_s)
            if frame is None:
                return
            msg, request_id = frame
            if isinstance(msg, TraceRequest):
                self.agent._serve_trace_request(msg, request_id)
                self.trace_requests_served += 1
            elif isinstance(msg, TraceBatchRequest):
                self.agent._serve_trace_batch(msg, request_id)
                self.trace_requests_served += len(msg.requests)
            # DiagnosisResult / WireFault while monitoring are
            # informational (the server diagnoses unprompted); drop them

    def _heartbeat(self, now: float) -> None:
        self.agent._send(
            Heartbeat(
                agent_id=self.agent.agent_id,
                seq=self.seq,
                uptime_s=now - (self._started_at or now),
                samples_sent=self.samples_sent,
                failures_seen=self.failures_seen,
            )
        )
        self.seq += 1

    def _sample(self) -> str:
        """Execute the next seed and ship its outcome as telemetry."""
        seed = self._next_seed
        self._next_seed += 1
        run = self.agent.client.run_once(seed)
        failing = run.failure is not None and run.snapshot is not None
        if failing:
            msg = MonitorSample(
                bug_id=self.agent.bug_id,
                seed=seed,
                outcome="failure",
                hang=run.failure.kind in ("deadlock", "hang"),
                sample=sample_from_run("failure", run),
            )
            self.failures_seen += 1
        else:
            msg = MonitorSample(
                bug_id=self.agent.bug_id,
                seed=seed,
                outcome="success",
                hang=False,
                sample=None,
            )
        self.agent._send(msg)
        self.samples_sent += 1
        return f"sample:{msg.outcome}"
