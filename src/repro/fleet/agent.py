"""The endpoint agent: one production machine of the fleet.

An agent owns a :class:`SnorlaxClient` for the program it runs.  It does
two things, both over a single TCP connection to the fleet server:

* **Report failures** (Figure 2 step 1): run the production workload;
  when an execution fails, ship the error-tracker notification plus the
  failing trace sample, then wait for the fleet-wide diagnosis (serving
  trace requests in the meantime — the reporting endpoint is as good a
  source of successful traces as any other).
* **Answer trace requests** (step 8): execute the requested seed with
  the requested breakpoints/skip and return the snapshot, exactly what
  ``SnorlaxServer.handle_trace_request`` does in-process.

Agents are deliberately synchronous (blocking socket, one thread each):
a real endpoint is a separate machine, and the simulation runs ≥50 of
them as threads against the asyncio server.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass

from repro.errors import FleetError, WireError
from repro.fleet.wire import (
    DiagnosisResult,
    FailureEnvelope,
    Goodbye,
    Hello,
    Reject,
    WireFault,
    recv_frame_sock,
    send_frame_sock,
)
from repro.ir.module import Module
from repro.runtime.client import ClientRun, SnorlaxClient, Workload
from repro.runtime.protocol import FailureNotification, TraceRequest, TraceResponse
from repro.runtime.server import sample_from_run

_POLL_S = 0.1  # socket timeout used to poll stop events


class FleetAgent:
    def __init__(
        self,
        agent_id: str,
        bug_id: str,
        module: Module,
        workload: Workload,
        host: str,
        port: int,
        entry: str = "main",
        connect_timeout: float = 10.0,
    ):
        self.agent_id = agent_id
        self.bug_id = bug_id
        self.client = SnorlaxClient(module, workload, entry=entry)
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.trace_requests_served = 0
        self.rejections = 0
        self._sock: socket.socket | None = None

    @classmethod
    def from_spec(cls, agent_id: str, spec, host: str, port: int) -> "FleetAgent":
        """Build an agent for a corpus bug (module cached on the spec)."""
        return cls(
            agent_id,
            spec.bug_id,
            spec.module(),
            spec.workload,
            host,
            port,
            entry=spec.entry,
        )

    # -- connection --------------------------------------------------------

    def connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(_POLL_S)
        self._sock = sock
        self._send(Hello(agent_id=self.agent_id, bug_id=self.bug_id))

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._send(Goodbye(agent_id=self.agent_id))
        except OSError:
            pass
        self._sock.close()
        self._sock = None

    def _send(self, msg, request_id: int = 0) -> None:
        if self._sock is None:
            raise FleetError(f"agent {self.agent_id} is not connected")
        send_frame_sock(self._sock, msg, request_id)

    # -- serving -----------------------------------------------------------

    def serve_until(self, stop: threading.Event) -> None:
        """Answer trace requests until asked to stop (an idle endpoint)."""
        while not stop.is_set():
            try:
                frame = self._recv_poll()
            except (ConnectionError, WireError, OSError):
                return  # the server went away; nothing left to serve
            if frame is None:
                continue
            msg, request_id = frame
            if isinstance(msg, TraceRequest):
                self._serve_trace_request(msg, request_id)
            # anything else while idle (late results for a signature we
            # also reported) is informational; drop it

    def _serve_trace_request(self, request: TraceRequest, request_id: int) -> None:
        run = self.client.run_once(
            request.seed,
            breakpoint_uids=request.breakpoint_uids,
            breakpoint_skip=request.breakpoint_skip,
        )
        sample = None
        if run.snapshot is not None:
            sample = sample_from_run(request.label, run)
        self._send(
            TraceResponse(label=request.label, outcome=run.result.outcome, sample=sample),
            request_id,
        )
        self.trace_requests_served += 1

    def _recv_poll(self):
        if self._sock is None:
            raise FleetError(f"agent {self.agent_id} is not connected")
        try:
            return recv_frame_sock(self._sock)
        except socket.timeout:
            return None

    # -- failure reporting -------------------------------------------------

    def find_failure(self, start_seed: int = 0) -> ClientRun:
        runs = self.client.find_runs(True, 1, start_seed=start_seed)
        if not runs:
            raise FleetError(f"agent {self.agent_id}: no failing run found")
        return runs[0]

    def report_failure(
        self,
        failing_run: ClientRun,
        stop: threading.Event | None = None,
        max_wait: float = 300.0,
    ) -> DiagnosisResult:
        """Ship a failure, keep serving trace requests, return the
        diagnosis.  Backpressure rejections are honored by sleeping the
        server's retry-after hint and resending."""
        if failing_run.failure is None or failing_run.snapshot is None:
            raise FleetError("failing run carries no failure/snapshot")
        code = failing_run.failure
        envelope = FailureEnvelope(
            bug_id=self.bug_id,
            seed=failing_run.seed,
            notification=FailureNotification(
                bug_hint=self.bug_id,
                failing_uid=code.failing_uid,
                failing_tid=code.failing_tid,
                time=code.time,
            ),
            sample=sample_from_run("failure", failing_run),
        )
        self._send(envelope)
        deadline = time.monotonic() + max_wait
        while time.monotonic() < deadline and (stop is None or not stop.is_set()):
            frame = self._recv_poll()
            if frame is None:
                continue
            msg, request_id = frame
            if isinstance(msg, TraceRequest):
                # the reporting endpoint still serves step-8 collection
                self._serve_trace_request(msg, request_id)
            elif isinstance(msg, DiagnosisResult):
                return msg
            elif isinstance(msg, Reject):
                self.rejections += 1
                time.sleep(msg.retry_after)
                self._send(envelope)
            elif isinstance(msg, WireFault):
                raise FleetError(
                    f"agent {self.agent_id}: server error: {msg.message}"
                )
        raise FleetError(
            f"agent {self.agent_id}: no diagnosis within {max_wait:.0f}s"
        )

    def produce_and_report(
        self, stop: threading.Event | None = None, start_seed: int = 0
    ) -> DiagnosisResult:
        """The full endpoint story: hit the bug in production, report it,
        help collect evidence, receive the root cause."""
        return self.report_failure(self.find_failure(start_seed), stop=stop)
