"""Fleet observability: counters, gauges, and latency timers.

A production diagnosis service must answer "is the fleet healthy?"
without a debugger: how many failures arrived, how many were folded into
an already-running diagnosis, how deep the queue is, and where the time
goes per stage (trace collection vs. analysis).  ``FleetMetrics`` is a
small thread-safe registry the server, job queue, and simulation all
share; it exports both a machine-readable dict and a human-readable
dump (what ``python -m repro.fleet`` prints).

Resilience counter vocabulary (all zero on a polite network):

* ``wire_errors`` — frames the server could not decode (corruption);
* ``trace_request_timeouts`` — an endpoint held a request past the
  reply timeout and the request was rerouted;
* ``trace_request_reroutes`` — requests re-sent after a connection
  error mid-flight;
* ``trace_requests_abandoned`` / ``trace_requests_failed`` — requests
  whose whole wall-clock budget expired (no endpoint answered at all);
* ``orphan_trace_responses`` — late answers to already-rerouted
  requests (dropped; the rerouted run was deterministic in the seed);
* ``agents_superseded`` — connections retired by a duplicate/newer
  ``Hello`` for the same agent id;
* ``result_delivery_failures`` — finished diagnoses that could not be
  written back to a reporter (it vanished before delivery);
* ``degraded_collections`` — diagnoses that ran with fewer successful
  traces than wanted because the collection deadline expired;
* ``jobs_failed`` — diagnosis jobs that raised (evicted for retry);
* ``server_restarts`` — injected/administrative full restarts;
* ``chaos_*`` — faults the simulation's :class:`FaultPlan` injected
  (``chaos_corrupted``, ``chaos_dropped``, ``chaos_truncated``,
  ``chaos_crashes``, ``chaos_delayed``, ``chaos_inbound_corrupted``).
"""

from __future__ import annotations

import statistics
import threading
from contextlib import contextmanager
from time import perf_counter


class FleetMetrics:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            self._timers.setdefault(name, []).append(seconds)

    @contextmanager
    def timer(self, name: str):
        started = perf_counter()
        try:
            yield
        finally:
            self.observe(name, perf_counter() - started)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def timings(self, name: str) -> list[float]:
        with self._lock:
            return list(self._timers.get(name, ()))

    def median(self, name: str) -> float:
        values = self.timings(name)
        return statistics.median(values) if values else 0.0

    def percentile(self, name: str, q: float) -> float:
        """The q-th percentile (0 < q < 100) of a timer's observations —
        tail latency is what degrades first when the network misbehaves."""
        values = sorted(self.timings(name))
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = (q / 100.0) * (len(values) - 1)
        low = int(rank)
        high = min(low + 1, len(values) - 1)
        return values[low] + (values[high] - values[low]) * (rank - low)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """All counters whose name starts with ``prefix`` (e.g. the
        ``chaos_`` family) — how the simulation reports injected faults."""
        with self._lock:
            return {
                k: v for k, v in sorted(self._counters.items())
                if k.startswith(prefix)
            }

    def as_dict(self) -> dict:
        """A stable snapshot: counters, gauges, and timer summaries."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            timers = {k: list(v) for k, v in self._timers.items()}
        summary = {}
        for name, values in sorted(timers.items()):
            summary[name] = {
                "count": len(values),
                "total_s": sum(values),
                "mean_s": statistics.fmean(values) if values else 0.0,
                "median_s": statistics.median(values) if values else 0.0,
                "max_s": max(values) if values else 0.0,
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "timers": summary,
        }

    def render(self) -> str:
        snap = self.as_dict()
        lines = ["=== fleet metrics ==="]
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(k) for k in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<{width}}  {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(k) for k in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<{width}}  {value:g}")
        if snap["timers"]:
            lines.append("timers:")
            for name, s in snap["timers"].items():
                lines.append(
                    f"  {name}: n={s['count']} total={s['total_s'] * 1000:.1f}ms "
                    f"mean={s['mean_s'] * 1000:.1f}ms "
                    f"median={s['median_s'] * 1000:.1f}ms "
                    f"max={s['max_s'] * 1000:.1f}ms"
                )
        return "\n".join(lines)
