"""Fleet observability: the service-counter vocabulary.

``FleetMetrics`` is now a thin, read-compatible alias of
:class:`repro.obs.MetricsRegistry` — the process-wide registry the whole
stack (solver, caches, pipeline stages, fleet service) records into
under one snake_case naming convention.  Everything the fleet ever
exposed (``inc``/``gauge``/``observe``/``timer``, ``counter``,
``timings``, ``median``, ``percentile``, ``counters_with_prefix``,
``as_dict``, ``render``) lives on the registry; this module keeps the
name the server, job queue, simulation, and existing callers import,
plus the documentation of the fleet's counter vocabulary.

Service counters:

* ``failures_received`` / ``diagnoses_completed`` / ``jobs_*`` — the
  intake funnel (submitted, deduplicated, rejected, completed, failed);
* ``trace_requests_sent`` / ``trace_responses_received`` /
  ``traces_collected`` — step-8 collection volume;
* ``analysis_cache_*`` / ``trace_cache_*`` — cache health (unified with
  :class:`~repro.core.cache.CacheStats`);
* ``solver_*`` — points-to solver work absorbed from
  :class:`~repro.core.andersen.SolverStats`;
* ``digest_mismatches`` — fleet digests that diverged from the
  in-process diagnosis (the simulation's correctness tripwire).

Resilience counter vocabulary (all zero on a polite network):

* ``wire_errors`` — frames the server could not decode (corruption);
* ``trace_request_timeouts`` — an endpoint held a request past the
  reply timeout and the request was rerouted;
* ``trace_request_reroutes`` — requests re-sent after a connection
  error mid-flight;
* ``trace_requests_abandoned`` / ``trace_requests_failed`` — requests
  whose whole wall-clock budget expired (no endpoint answered at all);
* ``orphan_trace_responses`` — late answers to already-rerouted
  requests (dropped; the rerouted run was deterministic in the seed);
* ``agents_superseded`` — connections retired by a duplicate/newer
  ``Hello`` for the same agent id;
* ``result_delivery_failures`` — finished diagnoses that could not be
  written back to a reporter (it vanished before delivery);
* ``degraded_collections`` — diagnoses that ran with fewer successful
  traces than wanted because the collection deadline expired;
* ``jobs_failed`` — diagnosis jobs that raised (evicted for retry);
* ``server_restarts`` — injected/administrative full restarts;
* ``agents_evicted_stale`` — connections evicted by the liveness
  monitor after missing heartbeats past ``heartbeat_timeout_s``;

Always-on monitoring counter vocabulary:

* ``heartbeats_received`` — liveness beacons from monitor loops;
* ``monitor_samples_received`` / ``monitor_failures_seen`` — sampled
  executions streamed by monitor loops, and how many carried failures;
* ``anomaly_triggers`` — detector trips that started (or fetched) a
  diagnosis unprompted; ``anomaly_rejected`` counts trips bounced by
  queue backpressure (the detector re-trips next window);
* ``evidence_graphs_built`` — provenance DAGs recorded for finished
  diagnoses (queryable via the dashboard's ``/api/evidence``);
* ``chaos_*`` — faults the simulation's :class:`FaultPlan` injected
  (``chaos_corrupted``, ``chaos_dropped``, ``chaos_truncated``,
  ``chaos_crashes``, ``chaos_delayed``, ``chaos_inbound_corrupted``).
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry


class FleetMetrics(MetricsRegistry):
    """Read-compatible alias of :class:`repro.obs.MetricsRegistry`.

    Kept so existing imports and isinstance checks keep working; new
    code should construct :class:`repro.obs.MetricsRegistry` directly
    (an ``Observability`` bundle carries one).
    """
