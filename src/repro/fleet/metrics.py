"""Fleet observability: counters, gauges, and latency timers.

A production diagnosis service must answer "is the fleet healthy?"
without a debugger: how many failures arrived, how many were folded into
an already-running diagnosis, how deep the queue is, and where the time
goes per stage (trace collection vs. analysis).  ``FleetMetrics`` is a
small thread-safe registry the server, job queue, and simulation all
share; it exports both a machine-readable dict and a human-readable
dump (what ``python -m repro.fleet`` prints).
"""

from __future__ import annotations

import statistics
import threading
from contextlib import contextmanager
from time import perf_counter


class FleetMetrics:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            self._timers.setdefault(name, []).append(seconds)

    @contextmanager
    def timer(self, name: str):
        started = perf_counter()
        try:
            yield
        finally:
            self.observe(name, perf_counter() - started)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def timings(self, name: str) -> list[float]:
        with self._lock:
            return list(self._timers.get(name, ()))

    def median(self, name: str) -> float:
        values = self.timings(name)
        return statistics.median(values) if values else 0.0

    def as_dict(self) -> dict:
        """A stable snapshot: counters, gauges, and timer summaries."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            timers = {k: list(v) for k, v in self._timers.items()}
        summary = {}
        for name, values in sorted(timers.items()):
            summary[name] = {
                "count": len(values),
                "total_s": sum(values),
                "mean_s": statistics.fmean(values) if values else 0.0,
                "median_s": statistics.median(values) if values else 0.0,
                "max_s": max(values) if values else 0.0,
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "timers": summary,
        }

    def render(self) -> str:
        snap = self.as_dict()
        lines = ["=== fleet metrics ==="]
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(k) for k in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<{width}}  {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(k) for k in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<{width}}  {value:g}")
        if snap["timers"]:
            lines.append("timers:")
            for name, s in snap["timers"].items():
                lines.append(
                    f"  {name}: n={s['count']} total={s['total_s'] * 1000:.1f}ms "
                    f"mean={s['mean_s'] * 1000:.1f}ms "
                    f"median={s['median_s'] * 1000:.1f}ms "
                    f"max={s['max_s'] * 1000:.1f}ms"
                )
        return "\n".join(lines)
