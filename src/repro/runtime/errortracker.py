"""Error tracker: the client-side failure classifier.

Stands in for Ubuntu's ErrorTracker / the JVM's hang detection (paper
§4.4, §5): it turns a finished execution into the failure code the
Snorlax client ships to the server — crash vs. deadlock vs. assert,
with the failing PC and thread.  Successful executions produce no
report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.failures import ExecutionResult, FailureReport


@dataclass(frozen=True)
class FailureCode:
    """What the OS error tracker knows, before any diagnosis."""

    kind: str  # "crash" | "deadlock" | "hang" | "assert"
    failing_uid: int
    failing_tid: int
    time: int
    report: FailureReport


def classify(result: ExecutionResult) -> FailureCode | None:
    """Classify an execution result; None means a clean run."""
    if result.outcome == "success":
        return None
    failure = result.failure
    if failure is None:
        # step-limit or other harness-level outcome: not a guest failure
        return None
    return FailureCode(
        kind=failure.kind,
        failing_uid=failure.failing_uid,
        failing_tid=failure.failing_tid,
        time=failure.time,
        report=failure,
    )
