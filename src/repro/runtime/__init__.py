"""Client/server runtime: production tracing + collection policy."""

from repro.runtime.client import ClientRun, SnorlaxClient, Workload
from repro.runtime.errortracker import FailureCode, classify
from repro.runtime.protocol import FailureNotification, TraceRequest, TraceResponse
from repro.runtime.server import (
    ServerStats,
    SnorlaxServer,
    TraceTransport,
    sample_from_run,
)

__all__ = [
    "ClientRun",
    "SnorlaxClient",
    "Workload",
    "FailureCode",
    "classify",
    "FailureNotification",
    "TraceRequest",
    "TraceResponse",
    "ServerStats",
    "SnorlaxServer",
    "TraceTransport",
    "sample_from_run",
]
