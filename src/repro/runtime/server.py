"""The Snorlax server: trace collection policy + the analysis pipeline.

The server receives the first failing trace (step 1 of Figure 2), then
instructs clients to generate traces from successful executions at the
failure location (step 8), falling back to predecessor basic blocks
when the failure PC itself cannot be reached in successful runs (§4.1 —
e.g. the failure is in error-handling code).  Once enough evidence is
gathered it runs Lazy Diagnosis (steps 2-7) and returns the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import LazyDiagnosis, PipelineConfig, TraceSample
from repro.core.report import DiagnosisReport
from repro.errors import DiagnosisError
from repro.ir.cfg import predecessor_chain
from repro.ir.module import Module
from repro.runtime.client import ClientRun, SnorlaxClient
from repro.runtime.protocol import TraceRequest, TraceResponse


@dataclass
class ServerStats:
    failing_traces: int = 0
    success_traces: int = 0
    executions_requested: int = 0
    breakpoint_fallbacks: int = 0


@dataclass
class SnorlaxServer:
    module: Module
    config: PipelineConfig = field(default_factory=PipelineConfig)
    success_traces_wanted: int = 10
    max_collection_attempts: int = 2000
    stats: ServerStats = field(default_factory=ServerStats)

    def diagnose_failure(
        self, failing_run: ClientRun, client: SnorlaxClient, start_seed: int = 10_000
    ) -> DiagnosisReport:
        """The full server-side flow for one in-production failure."""
        if failing_run.failure is None or failing_run.snapshot is None:
            raise DiagnosisError("failing run carries no failure/snapshot")
        failing_sample = self.sample_from_run("failure", failing_run)
        self.stats.failing_traces += 1
        successes = self.collect_successful_traces(
            client, failing_run.failure.failing_uid, start_seed
        )
        pipeline = LazyDiagnosis(self.module, self.config)
        return pipeline.diagnose([failing_sample], successes)

    def collect_successful_traces(
        self, client: SnorlaxClient, failing_uid: int, start_seed: int
    ) -> list[TraceSample]:
        """Step 8: successful-execution traces at the failure location.

        Tries the failure PC first; if no successful run ever reaches it,
        widens the breakpoint to predecessor blocks, nearest first.
        """
        samples: list[TraceSample] = []
        breakpoints = [failing_uid]
        seed = start_seed
        attempts = 0
        misses_at_pc = 0
        while (
            len(samples) < self.success_traces_wanted
            and attempts < self.max_collection_attempts
        ):
            # Vary how many executions of the failure PC pass before the
            # trace is captured: production traces come from executions
            # of arbitrary maturity, which is what lets benign
            # occurrences of near-miss interleavings show up.
            skip = attempts % 7
            run = client.run_once(
                seed, breakpoint_uids=breakpoints, breakpoint_skip=skip
            )
            seed += 1
            attempts += 1
            self.stats.executions_requested += 1
            if run.failed:
                continue  # only successful executions feed step 8
            if run.snapshot is None:
                # Only zero-skip misses hint that the PC is unreachable
                # in successful runs (e.g. failure in error-handling
                # code); a miss with skip > 0 just means the location
                # executes fewer times than we asked to wait.
                if skip == 0:
                    misses_at_pc += 1
                if misses_at_pc >= 25 and len(breakpoints) == 1:
                    breakpoints = self._widen_breakpoints(failing_uid)
                    self.stats.breakpoint_fallbacks += 1
                continue
            samples.append(
                self.sample_from_run(f"success-{len(samples)}", run)
            )
            self.stats.success_traces += 1
        return samples

    def _widen_breakpoints(self, failing_uid: int) -> list[int]:
        """Predecessor-block fallback: arm earlier PCs too (§4.1)."""
        instr = self.module.instruction(failing_uid)
        block = instr.parent
        uids = [failing_uid]
        if block is not None:
            for pred in predecessor_chain(block, max_depth=4):
                if pred.instructions:
                    uids.append(pred.instructions[0].uid)
        return uids

    def sample_from_run(self, label: str, run: ClientRun) -> TraceSample:
        if run.snapshot is None:
            raise DiagnosisError(f"run {run.seed} has no trace snapshot")
        return TraceSample(
            label=label,
            failing=run.failed,
            buffers=dict(run.snapshot.buffers),
            positions=dict(run.snapshot.positions),
            failure=run.failure.report if run.failure else None,
            snapshot_time=run.snapshot.time,
        )

    # -- message-level API (exercises the protocol types) ------------------

    def handle_trace_request(
        self, client: SnorlaxClient, request: TraceRequest
    ) -> TraceResponse:
        run = client.run_once(request.seed, breakpoint_uids=request.breakpoint_uids)
        sample = None
        if run.snapshot is not None:
            sample = self.sample_from_run(request.label, run)
        return TraceResponse(
            label=request.label,
            outcome=run.result.outcome,
            sample=sample,
        )
