"""The Snorlax server: trace collection policy + the analysis pipeline.

The server receives the first failing trace (step 1 of Figure 2), then
instructs clients to generate traces from successful executions at the
failure location (step 8), falling back to predecessor basic blocks
when the failure PC itself cannot be reached in successful runs (§4.1 —
e.g. the failure is in error-handling code).  Once enough evidence is
gathered it runs Lazy Diagnosis (steps 2-7) and returns the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.cache import AnalysisCache, DecodedTraceCache
from repro.core.pipeline import LazyDiagnosis, PipelineConfig, TraceSample
from repro.errors import DiagnosisError
from repro.ir.cfg import predecessor_chain
from repro.ir.module import Module
from repro.obs import Observability, render_flight_recorder, resolve_obs
from repro.runtime.client import ClientRun, SnorlaxClient
from repro.runtime.protocol import TraceRequest, TraceResponse

TraceTransport = Callable[[TraceRequest], TraceResponse]
"""How the server reaches a client: in-process call or network hop."""

BatchTraceTransport = Callable[[list[TraceRequest]], list[TraceResponse]]
"""A transport that delivers a whole speculative wave at once and
returns positional responses — one fleet round-trip per wave."""


def sample_from_run(label: str, run: ClientRun) -> TraceSample:
    """Package one execution's trace snapshot as server-side evidence."""
    if run.snapshot is None:
        raise DiagnosisError(f"run {run.seed} has no trace snapshot")
    return TraceSample(
        label=label,
        failing=run.failed,
        buffers=dict(run.snapshot.buffers),
        positions=dict(run.snapshot.positions),
        failure=run.failure.report if run.failure else None,
        snapshot_time=run.snapshot.time,
    )


@dataclass
class ServerStats:
    failing_traces: int = 0
    success_traces: int = 0
    executions_requested: int = 0
    breakpoint_fallbacks: int = 0


class _CollectionState:
    """The serial collection policy, factored out of the transport loop.

    Every collection mode — serial, thread-parallel, batched — shares
    this one object: :meth:`speculate` derives request parameters from
    the attempt index and current breakpoint set alone, and
    :meth:`consume` applies responses in attempt order.  When consuming
    changes the policy state (breakpoint widening fired, or enough
    samples arrived) it returns True and the caller discards the rest of
    its speculated wave *without* counting those attempts — the next
    wave re-speculates the same attempt indices against the new state.
    That is the whole evidence-equivalence argument: any transport that
    consumes in attempt order and discards on state change gathers
    byte-identical samples.
    """

    def __init__(
        self,
        server: "SnorlaxServer",
        failing_uid: int,
        start_seed: int,
        stop_rule=None,
    ):
        self.server = server
        self.failing_uid = failing_uid
        self.start_seed = start_seed
        self.samples: list[TraceSample] = []
        self.breakpoints = [failing_uid]
        self.attempts = 0
        self.misses_at_pc = 0
        self.widened_to = 0
        self.stop_rule = stop_rule
        self.on_sample: Callable[[TraceSample], None] | None = None
        self.deadline = server._collection_deadline()

    def speculate(self, i: int) -> TraceRequest:
        """The request for attempt index (attempts + i) — a pure function
        of policy state, so whole waves can be issued concurrently."""
        attempt = self.attempts + i
        # Vary how many executions of the failure PC pass before the
        # trace is captured: production traces come from executions of
        # arbitrary maturity, which is what lets benign occurrences of
        # near-miss interleavings show up.
        return TraceRequest(
            label=(
                f"success-{len(self.samples)}"
                if i == 0
                else f"speculative-{attempt}"
            ),
            seed=self.start_seed + attempt,
            breakpoint_uids=tuple(self.breakpoints),
            breakpoint_skip=attempt % 7,
        )

    @property
    def satisfied(self) -> bool:
        if self.stop_rule is not None and self.stop_rule.satisfied:
            return True
        return len(self.samples) >= self.server.success_traces_wanted

    @property
    def done(self) -> bool:
        return (
            self.satisfied
            or self.attempts >= self.server.max_collection_attempts
            or self.server._deadline_hit(self.deadline, self.samples)
        )

    def consume(self, request: TraceRequest, resp: TraceResponse) -> bool:
        """Apply one response; True when the rest of the wave is stale."""
        server = self.server
        self.attempts += 1
        if resp.sample is not None and resp.sample.failing:
            return False  # only successful executions feed step 8
        if resp.sample is None:
            # Only zero-skip misses hint that the PC is unreachable in
            # successful runs (e.g. failure in error-handling code); a
            # miss with skip > 0 just means the location executes fewer
            # times than we asked to wait.
            if request.breakpoint_skip == 0:
                self.misses_at_pc += 1
            if self.misses_at_pc >= 25 and len(self.breakpoints) == 1:
                self.breakpoints = server._widen_breakpoints(self.failing_uid)
                self.widened_to = len(self.breakpoints)
                # start counting misses against the widened set afresh,
                # so persistent unreachability can keep surfacing (the
                # old counter saturated after the first widening)
                self.misses_at_pc = 0
                server.stats.breakpoint_fallbacks += 1
                return True  # rest of the wave used stale breakpoints
            return False
        resp.sample.label = f"success-{len(self.samples)}"
        self.samples.append(resp.sample)
        server.stats.success_traces += 1
        if self.on_sample is not None:
            self.on_sample(resp.sample)
        if self.stop_rule is not None:
            self.stop_rule.observe(self.samples)
        return self.satisfied


class _StreamingDecoder:
    """Starts decoding each sample the moment it is consumed.

    Decoding goes through the shared content-keyed ``trace_cache``, so
    this is pure cache warming: by the time the pipeline's
    trace-processing stage asks for the same (buffer, tid, period) it is
    a hit, and decode wall-clock overlapped collection round-trips
    instead of following them.  Evidence is untouched — a decode error
    here is swallowed so the pipeline surfaces it with full context.
    """

    def __init__(self, server: "SnorlaxServer", registry):
        from concurrent.futures import ThreadPoolExecutor

        self._server = server
        self._registry = registry
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, server.collection_parallelism),
            thread_name_prefix="decode",
        )

    def submit(self, sample: TraceSample) -> None:
        self._pool.submit(self._decode, sample)

    def _decode(self, sample: TraceSample) -> None:
        from time import perf_counter

        server = self._server
        started = perf_counter()
        try:
            for tid, data in sample.buffers.items():
                server.trace_cache.get_or_decode(
                    server.module, data, tid, server.config.mtc_period_ns
                )
        except Exception:
            return
        self._registry.observe("stage_decode", perf_counter() - started)

    def close(self) -> None:
        # collection ends when its decodes do — that is the overlap
        self._pool.shutdown(wait=True)


class _TopPatternEvaluator:
    """The stop rule's oracle: the current top-ranked pattern signature
    for the evidence gathered so far.

    Runs the full pipeline *quietly* (``obs=None`` — no spans, no
    counters; the fleet's registry sees only the one final diagnosis)
    against the server's shared caches, so each evaluation re-decodes
    nothing and — with incremental Andersen seeding — re-solves almost
    nothing.  A pure function of the sample prefix: same samples, same
    answer, on any transport.
    """

    def __init__(self, server: "SnorlaxServer", failing_sample: TraceSample):
        self._server = server
        self._failing = failing_sample

    def __call__(self, successes: list[TraceSample]):
        server = self._server
        pipeline = LazyDiagnosis(
            server.module,
            server.config,
            analysis_cache=server.analysis_cache,
            trace_cache=server.trace_cache,
            obs=None,
        )
        try:
            report = pipeline.diagnose([self._failing], successes)
        except DiagnosisError:
            return None
        if report.root_cause is None:
            return None
        return str(report.root_cause.signature)


@dataclass
class SnorlaxServer:
    module: Module
    config: PipelineConfig = field(default_factory=PipelineConfig)
    success_traces_wanted: int = 10
    max_collection_attempts: int = 2000
    # graceful degradation: when set, collection stops at the deadline
    # (wall-clock seconds from its start) as soon as min_success_traces
    # have arrived, and the diagnosis runs on the evidence gathered —
    # what a fleet does when endpoints are scarce or the network is bad
    collection_deadline_s: float | None = None
    min_success_traces: int = 1
    # >1 speculates trace requests concurrently (the evidence gathered is
    # byte-identical to serial collection — see _collect_parallel)
    collection_parallelism: int = 1
    # "fixed" collects success_traces_wanted samples; "stable-top" stops
    # early once the top-ranked pattern is unchanged across
    # stability_window consecutive samples (success_traces_wanted stays
    # as the cap, adaptive_min_traces as the floor)
    stopping: str = "fixed"
    stability_window: int = 3
    adaptive_min_traces: int = 4
    # shared caches: repeat diagnoses skip decoding / points-to
    analysis_cache: AnalysisCache | None = None
    trace_cache: DecodedTraceCache | None = None
    stats: ServerStats = field(default_factory=ServerStats)
    # observability context every diagnosis this server runs records into
    obs: Observability | None = None
    last_pipeline: LazyDiagnosis | None = field(default=None, repr=False)
    # the most recent collection's policy state: callers (the fleet)
    # distinguish "stopped because the evidence sufficed" from "ran out
    # of attempts/deadline" via last_collection.satisfied
    last_collection: _CollectionState | None = field(default=None, repr=False)

    def diagnose(
        self, failing_run: ClientRun, client: SnorlaxClient, start_seed: int = 10_000
    ):
        """The full server-side flow for one in-production failure:
        collect step-8 evidence, run the pipeline, return the bundled
        :class:`repro.api.DiagnosisResult`."""
        if failing_run.failure is None or failing_run.snapshot is None:
            raise DiagnosisError("failing run carries no failure/snapshot")
        obs = resolve_obs(self.obs)
        with obs.tracer.span(
            "diagnosis_job", failing_uid=failing_run.failure.failing_uid
        ) as job:
            failing_sample = self.sample_from_run("failure", failing_run)
            self.stats.failing_traces += 1
            successes = self.collect_successful_traces(
                client,
                failing_run.failure.failing_uid,
                start_seed,
                failing_sample=failing_sample,
            )
            result = self.diagnose_samples([failing_sample], successes)
        if obs.enabled:
            # widen the flight recorder from the pipeline subtree to the
            # whole job: collection round-trips included
            result.report.flight_recorder = render_flight_recorder(
                obs.tracer, job
            )
        return result

    def diagnose_samples(self, failing: list[TraceSample], successes: list[TraceSample]):
        """Diagnose already-collected evidence through :mod:`repro.api`
        (the fleet server hands traces collected over the network)."""
        from repro import api

        result = api.diagnose(
            self.module,
            traces=[*failing, *successes],
            config=self.config,
            caches=(self.analysis_cache, self.trace_cache),
            obs=self.obs,
        )
        self.last_pipeline = result.pipeline
        return result

    def make_pipeline(self) -> LazyDiagnosis:
        """A pipeline bound to this server's config and shared caches."""
        pipeline = LazyDiagnosis(
            self.module,
            self.config,
            analysis_cache=self.analysis_cache,
            trace_cache=self.trace_cache,
            obs=self.obs,
        )
        self.last_pipeline = pipeline
        return pipeline

    def collect_successful_traces(
        self,
        client: SnorlaxClient,
        failing_uid: int,
        start_seed: int,
        failing_sample: TraceSample | None = None,
    ) -> list[TraceSample]:
        """Step 8 against an in-process client (see collect_traces_via)."""
        return self.collect_traces_via(
            lambda req: self.handle_trace_request(client, req),
            failing_uid,
            start_seed,
            failing_sample=failing_sample,
        )

    def collect_traces_via(
        self,
        send: TraceTransport,
        failing_uid: int,
        start_seed: int,
        send_batch: BatchTraceTransport | None = None,
        failing_sample: TraceSample | None = None,
    ) -> list[TraceSample]:
        """Step 8: successful-execution traces at the failure location.

        Tries the failure PC first; if no successful run ever reaches it,
        widens the breakpoint to predecessor blocks, nearest first.

        ``send`` delivers one :class:`TraceRequest` to a client and
        returns its :class:`TraceResponse` — the in-process call for the
        single-machine runtime, a network round-trip for ``repro.fleet``.
        Collection is deterministic in (seed, breakpoints, skip), so the
        transport — and which endpoint serves each request — never
        changes the evidence gathered.

        Three pipelined layers, all evidence-invisible:

        * ``send_batch`` delivers a whole speculative wave in one call
          (the fleet fans it across every live agent) and takes priority
          over per-request parallelism; ``collection_parallelism > 1``
          overlaps individual round-trips on a thread pool instead.
          Both consume responses in attempt order through the one
          :class:`_CollectionState` policy, so the samples gathered are
          byte-identical to the serial loop's.
        * when ``trace_cache`` is set, every sample starts decoding the
          moment its response is consumed (a small pool), so decode
          finishes with collection instead of after it.
        * ``stopping="stable-top"`` ends collection once the top-ranked
          pattern is stable (``failing_sample`` anchors the evaluation);
          the stop decision is a pure function of the consumed sample
          prefix, hence transport-independent.
        """
        obs = resolve_obs(self.obs)
        stop_rule = self._make_stop_rule(failing_sample)
        mode = (
            "batched"
            if send_batch is not None
            else ("parallel" if self.collection_parallelism > 1 else "serial")
        )
        with obs.tracer.span(
            "collect_traces",
            failing_uid=failing_uid,
            wanted=self.success_traces_wanted,
            parallelism=self.collection_parallelism,
            mode=mode,
            stopping=self.stopping,
        ) as cspan:
            send = self._traced_transport(send, obs.tracer, cspan)
            state = _CollectionState(self, failing_uid, start_seed, stop_rule)
            self.last_collection = state
            decoder = None
            if self.trace_cache is not None:
                decoder = _StreamingDecoder(self, obs.registry)
                state.on_sample = decoder.submit
                if failing_sample is not None:
                    decoder.submit(failing_sample)
            from time import perf_counter

            started = perf_counter()
            try:
                if send_batch is not None:
                    samples = self._collect_batched(send_batch, state)
                elif self.collection_parallelism > 1:
                    samples = self._collect_parallel(send, state)
                else:
                    samples = self._collect_serial(send, state)
            finally:
                if decoder is not None:
                    decoder.close()
            obs.registry.observe("stage_collect", perf_counter() - started)
            cspan.set(
                collected=len(samples),
                attempts=state.attempts,
                widened_to=state.widened_to,
            )
        return samples

    def _traced_transport(
        self, send: TraceTransport, tracer, parent
    ) -> TraceTransport:
        """Wrap a transport so every step-8 round-trip becomes a
        ``trace_request`` span.  Parentage is explicit: speculative
        batches run on pool threads, where the thread-local stack would
        not see the collection span."""
        if not tracer.enabled:
            return send

        def traced(request: TraceRequest) -> TraceResponse:
            with tracer.span(
                "trace_request",
                parent=parent,
                seed=request.seed,
                skip=request.breakpoint_skip,
                breakpoints=len(request.breakpoint_uids),
            ) as span:
                resp = send(request)
                if resp.sample is None:
                    span.set(outcome="miss")
                else:
                    span.set(
                        outcome="failing" if resp.sample.failing else "ok"
                    )
            return resp

        return traced

    def _make_stop_rule(self, failing_sample: TraceSample | None):
        if self.stopping == "fixed":
            return None
        if self.stopping != "stable-top":
            raise DiagnosisError(
                f"unknown stopping mode {self.stopping!r} "
                "(expected 'fixed' or 'stable-top')"
            )
        if failing_sample is None:
            # the rule evaluates candidate diagnoses, which need the
            # failing evidence — without it, fall back to fixed counting
            return None
        from repro.core.statistics import StabilityStopRule

        return StabilityStopRule(
            evaluate=_TopPatternEvaluator(self, failing_sample),
            window=self.stability_window,
            min_samples=self.adaptive_min_traces,
        )

    def _collect_serial(
        self, send: TraceTransport, state: _CollectionState
    ) -> list[TraceSample]:
        while not state.done:
            request = state.speculate(0)
            state.consume(request, send(request))
        return state.samples

    def _collect_parallel(
        self, send: TraceTransport, state: _CollectionState
    ) -> list[TraceSample]:
        """Speculative thread-pool collection, serial-equivalent by
        design: whole waves are issued concurrently, then consumed in
        attempt order through the shared :class:`_CollectionState`
        policy (see its docstring for the equivalence argument)."""
        from concurrent.futures import ThreadPoolExecutor

        width = self.collection_parallelism
        with ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="collect"
        ) as pool:
            while not state.done:
                wave = min(width, self.max_collection_attempts - state.attempts)
                requests = [state.speculate(i) for i in range(wave)]
                for request, resp in zip(requests, pool.map(send, requests)):
                    if state.consume(request, resp):
                        break  # rest of the wave is stale
        return state.samples

    def _collect_batched(
        self, send_batch: BatchTraceTransport, state: _CollectionState
    ) -> list[TraceSample]:
        """Wave-at-a-time collection over a batch transport: one call
        ships the whole speculative wave (the fleet fans it across every
        live agent in one round-trip) and the positional responses are
        consumed in attempt order — the same policy, so the same
        evidence."""
        while not state.done:
            wave = self._batch_window(state)
            requests = [state.speculate(i) for i in range(wave)]
            responses = send_batch(requests)
            for request, resp in zip(requests, responses):
                if state.consume(request, resp):
                    break  # rest of the wave is stale
        return state.samples

    def _batch_window(self, state: _CollectionState) -> int:
        """How far ahead to speculate in one batched wave: what fixed
        counting still needs (or the stop rule's useful lookahead) plus
        margin for seeds that miss the armed breakpoint, clamped to the
        attempt cap.  The window only sizes the wave; responses are
        still consumed in attempt order, so the evidence is
        window-invariant."""
        need = max(1, self.success_traces_wanted - len(state.samples))
        if state.stop_rule is not None:
            need = min(need, state.stop_rule.lookahead())
        window = need + max(2, need // 2)
        return min(window, self.max_collection_attempts - state.attempts)

    def _collection_deadline(self) -> float | None:
        if self.collection_deadline_s is None:
            return None
        from time import monotonic

        return monotonic() + self.collection_deadline_s

    def _deadline_hit(self, deadline: float | None, samples: list) -> bool:
        """Degrade once the deadline passes — but never below the
        minimum evidence the pipeline needs (keep trying for that)."""
        if deadline is None or len(samples) < self.min_success_traces:
            return False
        from time import monotonic

        return monotonic() > deadline

    def _widen_breakpoints(self, failing_uid: int) -> list[int]:
        """Predecessor-block fallback: arm earlier PCs too (§4.1)."""
        instr = self.module.instruction(failing_uid)
        block = instr.parent
        uids = [failing_uid]
        if block is not None:
            for pred in predecessor_chain(block, max_depth=4):
                if pred.instructions:
                    uids.append(pred.instructions[0].uid)
        return uids

    def sample_from_run(self, label: str, run: ClientRun) -> TraceSample:
        return sample_from_run(label, run)

    # -- message-level API (the transport collect_traces_via speaks) -------

    def handle_trace_request(
        self, client: SnorlaxClient, request: TraceRequest
    ) -> TraceResponse:
        run = client.run_once(
            request.seed,
            breakpoint_uids=request.breakpoint_uids,
            breakpoint_skip=request.breakpoint_skip,
        )
        self.stats.executions_requested += 1
        sample = None
        if run.snapshot is not None:
            sample = sample_from_run(request.label, run)
        return TraceResponse(
            label=request.label,
            outcome=run.result.outcome,
            sample=sample,
        )
