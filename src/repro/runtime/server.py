"""The Snorlax server: trace collection policy + the analysis pipeline.

The server receives the first failing trace (step 1 of Figure 2), then
instructs clients to generate traces from successful executions at the
failure location (step 8), falling back to predecessor basic blocks
when the failure PC itself cannot be reached in successful runs (§4.1 —
e.g. the failure is in error-handling code).  Once enough evidence is
gathered it runs Lazy Diagnosis (steps 2-7) and returns the report.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.core.cache import AnalysisCache, DecodedTraceCache
from repro.core.pipeline import LazyDiagnosis, PipelineConfig, TraceSample
from repro.core.report import DiagnosisReport
from repro.errors import DiagnosisError
from repro.ir.cfg import predecessor_chain
from repro.ir.module import Module
from repro.obs import Observability, render_flight_recorder, resolve_obs
from repro.runtime.client import ClientRun, SnorlaxClient
from repro.runtime.protocol import TraceRequest, TraceResponse

TraceTransport = Callable[[TraceRequest], TraceResponse]
"""How the server reaches a client: in-process call or network hop."""


def sample_from_run(label: str, run: ClientRun) -> TraceSample:
    """Package one execution's trace snapshot as server-side evidence."""
    if run.snapshot is None:
        raise DiagnosisError(f"run {run.seed} has no trace snapshot")
    return TraceSample(
        label=label,
        failing=run.failed,
        buffers=dict(run.snapshot.buffers),
        positions=dict(run.snapshot.positions),
        failure=run.failure.report if run.failure else None,
        snapshot_time=run.snapshot.time,
    )


@dataclass
class ServerStats:
    failing_traces: int = 0
    success_traces: int = 0
    executions_requested: int = 0
    breakpoint_fallbacks: int = 0


@dataclass
class SnorlaxServer:
    module: Module
    config: PipelineConfig = field(default_factory=PipelineConfig)
    success_traces_wanted: int = 10
    max_collection_attempts: int = 2000
    # graceful degradation: when set, collection stops at the deadline
    # (wall-clock seconds from its start) as soon as min_success_traces
    # have arrived, and the diagnosis runs on the evidence gathered —
    # what a fleet does when endpoints are scarce or the network is bad
    collection_deadline_s: float | None = None
    min_success_traces: int = 1
    # >1 speculates trace requests concurrently (the evidence gathered is
    # byte-identical to serial collection — see _collect_parallel)
    collection_parallelism: int = 1
    # shared caches: repeat diagnoses skip decoding / points-to
    analysis_cache: AnalysisCache | None = None
    trace_cache: DecodedTraceCache | None = None
    stats: ServerStats = field(default_factory=ServerStats)
    # observability context every diagnosis this server runs records into
    obs: Observability | None = None
    last_pipeline: LazyDiagnosis | None = field(default=None, repr=False)

    def diagnose(
        self, failing_run: ClientRun, client: SnorlaxClient, start_seed: int = 10_000
    ):
        """The full server-side flow for one in-production failure:
        collect step-8 evidence, run the pipeline, return the bundled
        :class:`repro.api.DiagnosisResult`."""
        if failing_run.failure is None or failing_run.snapshot is None:
            raise DiagnosisError("failing run carries no failure/snapshot")
        obs = resolve_obs(self.obs)
        with obs.tracer.span(
            "diagnosis_job", failing_uid=failing_run.failure.failing_uid
        ) as job:
            failing_sample = self.sample_from_run("failure", failing_run)
            self.stats.failing_traces += 1
            successes = self.collect_successful_traces(
                client, failing_run.failure.failing_uid, start_seed
            )
            result = self.diagnose_samples([failing_sample], successes)
        if obs.enabled:
            # widen the flight recorder from the pipeline subtree to the
            # whole job: collection round-trips included
            result.report.flight_recorder = render_flight_recorder(
                obs.tracer, job
            )
        return result

    def diagnose_samples(self, failing: list[TraceSample], successes: list[TraceSample]):
        """Diagnose already-collected evidence through :mod:`repro.api`
        (the fleet server hands traces collected over the network)."""
        from repro import api

        result = api.diagnose(
            self.module,
            traces=[*failing, *successes],
            config=self.config,
            caches=(self.analysis_cache, self.trace_cache),
            obs=self.obs,
        )
        self.last_pipeline = result.pipeline
        return result

    def diagnose_failure(
        self, failing_run: ClientRun, client: SnorlaxClient, start_seed: int = 10_000
    ) -> DiagnosisReport:
        """Deprecated: use :meth:`diagnose` (returns the full
        :class:`repro.api.DiagnosisResult`; this shim keeps the old
        report-only return shape)."""
        warnings.warn(
            "SnorlaxServer.diagnose_failure() is deprecated; call "
            "SnorlaxServer.diagnose() or repro.api.diagnose() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.diagnose(failing_run, client, start_seed).report

    def make_pipeline(self) -> LazyDiagnosis:
        """A pipeline bound to this server's config and shared caches."""
        pipeline = LazyDiagnosis(
            self.module,
            self.config,
            analysis_cache=self.analysis_cache,
            trace_cache=self.trace_cache,
            obs=self.obs,
        )
        self.last_pipeline = pipeline
        return pipeline

    def collect_successful_traces(
        self, client: SnorlaxClient, failing_uid: int, start_seed: int
    ) -> list[TraceSample]:
        """Step 8 against an in-process client (see collect_traces_via)."""
        return self.collect_traces_via(
            lambda req: self.handle_trace_request(client, req),
            failing_uid,
            start_seed,
        )

    def collect_traces_via(
        self, send: TraceTransport, failing_uid: int, start_seed: int
    ) -> list[TraceSample]:
        """Step 8: successful-execution traces at the failure location.

        Tries the failure PC first; if no successful run ever reaches it,
        widens the breakpoint to predecessor blocks, nearest first.

        ``send`` delivers one :class:`TraceRequest` to a client and
        returns its :class:`TraceResponse` — the in-process call for the
        single-machine runtime, a network round-trip for ``repro.fleet``.
        Collection is deterministic in (seed, breakpoints, skip), so the
        transport — and which endpoint serves each request — never
        changes the evidence gathered.

        ``collection_parallelism > 1`` overlaps request round-trips by
        speculating batches; the consumed evidence is byte-identical to
        what this serial loop gathers (see :meth:`_collect_parallel`).
        """
        obs = resolve_obs(self.obs)
        with obs.tracer.span(
            "collect_traces",
            failing_uid=failing_uid,
            wanted=self.success_traces_wanted,
            parallelism=self.collection_parallelism,
        ) as cspan:
            send = self._traced_transport(send, obs.tracer, cspan)
            if self.collection_parallelism > 1:
                samples = self._collect_parallel(send, failing_uid, start_seed)
            else:
                samples = self._collect_serial(send, failing_uid, start_seed)
            cspan.set(collected=len(samples))
        return samples

    def _traced_transport(
        self, send: TraceTransport, tracer, parent
    ) -> TraceTransport:
        """Wrap a transport so every step-8 round-trip becomes a
        ``trace_request`` span.  Parentage is explicit: speculative
        batches run on pool threads, where the thread-local stack would
        not see the collection span."""
        if not tracer.enabled:
            return send

        def traced(request: TraceRequest) -> TraceResponse:
            with tracer.span(
                "trace_request",
                parent=parent,
                seed=request.seed,
                skip=request.breakpoint_skip,
                breakpoints=len(request.breakpoint_uids),
            ) as span:
                resp = send(request)
                if resp.sample is None:
                    span.set(outcome="miss")
                else:
                    span.set(
                        outcome="failing" if resp.sample.failing else "ok"
                    )
            return resp

        return traced

    def _collect_serial(
        self, send: TraceTransport, failing_uid: int, start_seed: int
    ) -> list[TraceSample]:
        samples: list[TraceSample] = []
        breakpoints = [failing_uid]
        seed = start_seed
        attempts = 0
        misses_at_pc = 0
        deadline = self._collection_deadline()
        while (
            len(samples) < self.success_traces_wanted
            and attempts < self.max_collection_attempts
            and not self._deadline_hit(deadline, samples)
        ):
            # Vary how many executions of the failure PC pass before the
            # trace is captured: production traces come from executions
            # of arbitrary maturity, which is what lets benign
            # occurrences of near-miss interleavings show up.
            skip = attempts % 7
            resp = send(
                TraceRequest(
                    label=f"success-{len(samples)}",
                    seed=seed,
                    breakpoint_uids=tuple(breakpoints),
                    breakpoint_skip=skip,
                )
            )
            seed += 1
            attempts += 1
            if resp.sample is not None and resp.sample.failing:
                continue  # only successful executions feed step 8
            if resp.sample is None:
                # Only zero-skip misses hint that the PC is unreachable
                # in successful runs (e.g. failure in error-handling
                # code); a miss with skip > 0 just means the location
                # executes fewer times than we asked to wait.
                if skip == 0:
                    misses_at_pc += 1
                if misses_at_pc >= 25 and len(breakpoints) == 1:
                    breakpoints = self._widen_breakpoints(failing_uid)
                    self.stats.breakpoint_fallbacks += 1
                continue
            samples.append(resp.sample)
            self.stats.success_traces += 1
        return samples

    def _collect_parallel(
        self, send: TraceTransport, failing_uid: int, start_seed: int
    ) -> list[TraceSample]:
        """Speculative batched collection, serial-equivalent by design.

        The serial loop's request parameters depend only on the attempt
        index (seed = start_seed + attempt, skip = attempt % 7) and the
        current breakpoint set — the per-request *label* is the one thing
        derived from consumed results, and it is rewritten at consume
        time.  So a whole batch can be speculated and sent concurrently,
        then consumed in attempt order with the serial policy applied.
        When consuming a response changes the policy state — breakpoint
        widening fires, or enough samples arrived — the rest of the
        batch is discarded *without* counting those attempts, and the
        next batch re-speculates the same attempt indices against the
        new state.  The evidence gathered is therefore byte-identical to
        serial collection; only wall-clock changes.
        """
        from concurrent.futures import ThreadPoolExecutor

        samples: list[TraceSample] = []
        breakpoints = [failing_uid]
        attempts = 0
        misses_at_pc = 0
        deadline = self._collection_deadline()
        width = self.collection_parallelism
        with ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="collect"
        ) as pool:
            while (
                len(samples) < self.success_traces_wanted
                and attempts < self.max_collection_attempts
                and not self._deadline_hit(deadline, samples)
            ):
                batch = min(width, self.max_collection_attempts - attempts)
                requests = [
                    TraceRequest(
                        label=f"speculative-{attempts + i}",
                        seed=start_seed + attempts + i,
                        breakpoint_uids=tuple(breakpoints),
                        breakpoint_skip=(attempts + i) % 7,
                    )
                    for i in range(batch)
                ]
                for request, resp in zip(requests, pool.map(send, requests)):
                    attempts += 1
                    if resp.sample is not None and resp.sample.failing:
                        continue  # only successful executions feed step 8
                    if resp.sample is None:
                        if request.breakpoint_skip == 0:
                            misses_at_pc += 1
                        if misses_at_pc >= 25 and len(breakpoints) == 1:
                            breakpoints = self._widen_breakpoints(failing_uid)
                            self.stats.breakpoint_fallbacks += 1
                            break  # rest of batch used stale breakpoints
                        continue
                    resp.sample.label = f"success-{len(samples)}"
                    samples.append(resp.sample)
                    self.stats.success_traces += 1
                    if len(samples) >= self.success_traces_wanted:
                        break
        return samples

    def _collection_deadline(self) -> float | None:
        if self.collection_deadline_s is None:
            return None
        from time import monotonic

        return monotonic() + self.collection_deadline_s

    def _deadline_hit(self, deadline: float | None, samples: list) -> bool:
        """Degrade once the deadline passes — but never below the
        minimum evidence the pipeline needs (keep trying for that)."""
        if deadline is None or len(samples) < self.min_success_traces:
            return False
        from time import monotonic

        return monotonic() > deadline

    def _widen_breakpoints(self, failing_uid: int) -> list[int]:
        """Predecessor-block fallback: arm earlier PCs too (§4.1)."""
        instr = self.module.instruction(failing_uid)
        block = instr.parent
        uids = [failing_uid]
        if block is not None:
            for pred in predecessor_chain(block, max_depth=4):
                if pred.instructions:
                    uids.append(pred.instructions[0].uid)
        return uids

    def sample_from_run(self, label: str, run: ClientRun) -> TraceSample:
        return sample_from_run(label, run)

    # -- message-level API (the transport collect_traces_via speaks) -------

    def handle_trace_request(
        self, client: SnorlaxClient, request: TraceRequest
    ) -> TraceResponse:
        run = client.run_once(
            request.seed,
            breakpoint_uids=request.breakpoint_uids,
            breakpoint_skip=request.breakpoint_skip,
        )
        self.stats.executions_requested += 1
        sample = None
        if run.snapshot is not None:
            sample = sample_from_run(request.label, run)
        return TraceResponse(
            label=request.label,
            outcome=run.result.outcome,
            sample=sample,
        )
