"""The Snorlax client: runs the production program under tracing.

One client owns a module plus a workload (a seed-indexed argument
generator, modelling the varying requests a production system serves).
Each ``run_once`` boots a fresh machine with PT-like tracing enabled,
optionally arms a driver breakpoint (for collecting successful traces
at a previous failure location, step 8 of Figure 2), and returns the
execution result together with the trace snapshot and failure code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.api import SchedulerPolicy
from repro.ir.module import Module
from repro.pt.driver import PTDriver, TraceSnapshot
from repro.pt.timing import TraceConfig
from repro.runtime.errortracker import FailureCode, classify
from repro.sim.clock import CostModel
from repro.sim.failures import ExecutionResult
from repro.sim.machine import Machine
from repro.sim.scheduler import Scheduler

Workload = Callable[[int], tuple]
"""seed -> arguments for the program's entry function."""


@dataclass
class ClientRun:
    seed: int
    result: ExecutionResult
    failure: FailureCode | None
    snapshot: TraceSnapshot | None
    driver: PTDriver

    @property
    def failed(self) -> bool:
        return self.failure is not None


@dataclass
class SnorlaxClient:
    module: Module
    workload: Workload
    entry: str = "main"
    trace_config: TraceConfig = field(default_factory=TraceConfig)
    cost_model: CostModel = field(default_factory=CostModel)
    tracing: bool = True
    max_steps: int = 20_000_000
    # how this client's machines schedule threads; part of the
    # collection policy, so caches key on policy.cache_key() (see
    # CollectedEvidenceCache)
    policy: SchedulerPolicy = field(default_factory=SchedulerPolicy)

    def run_once(
        self,
        seed: int,
        breakpoint_uids: Sequence[int] = (),
        watch_uids: set[int] | None = None,
        breakpoint_skip: int = 0,
        scheduler: Scheduler | None = None,
    ) -> ClientRun:
        """One production execution.

        ``breakpoint_uids`` — PCs at which the driver snapshots the
        trace (the server's step-8 request); the first one reached wins.
        ``breakpoint_skip`` ignores that many hits first, so collected
        traces come from executions of varying maturity.  On failure the
        driver snapshots at the failure point regardless.
        """
        driver = PTDriver(self.trace_config, enabled=self.tracing)
        machine = Machine(
            self.module,
            scheduler=scheduler or self.policy.build(seed),
            cost_model=self.cost_model,
            trace_driver=driver if self.tracing else None,
            watch_uids=watch_uids,
            max_steps=self.max_steps,
        )
        if self.tracing:
            for uid in breakpoint_uids:
                driver.arm_breakpoint(machine, uid, skip=breakpoint_skip)
        result = machine.run(self.entry, self.workload(seed))
        failure = classify(result)
        snapshot = driver.snapshot
        if failure is not None and snapshot is None and self.tracing:
            # fail-stop: the driver saves the trace at the failure
            snapshot = driver.take_snapshot(
                "failure", machine.thread_positions(), machine.clock.now
            )
        return ClientRun(seed, result, failure, snapshot, driver)

    def run_untraced(
        self, seed: int, scheduler: Scheduler | None = None
    ) -> ExecutionResult:
        """Baseline run without any tracing (for overhead measurements,
        and for repro.validate's directed replays)."""
        machine = Machine(
            self.module,
            scheduler=scheduler or self.policy.build(seed),
            cost_model=self.cost_model,
            max_steps=self.max_steps,
        )
        return machine.run(self.entry, self.workload(seed))

    def find_runs(
        self,
        want_failing: bool,
        count: int,
        start_seed: int = 0,
        max_attempts: int = 5000,
        breakpoint_uids: Sequence[int] = (),
    ) -> list[ClientRun]:
        """Scan seeds for failing (or successful) executions.

        Mirrors the paper's §3.2 methodology: no artificial delays are
        injected to raise reproduction probability; programs are simply
        run repeatedly (they needed up to a few thousand runs).
        """
        found: list[ClientRun] = []
        seed = start_seed
        attempts = 0
        while len(found) < count and attempts < max_attempts:
            run = self.run_once(seed, breakpoint_uids=breakpoint_uids)
            if run.failed == want_failing:
                found.append(run)
            seed += 1
            attempts += 1
        return found
