"""Client/server message types.

The real Snorlax speaks over the network; here the messages are plain
dataclasses so tests can exercise the protocol surface (what the server
may ask of a client, what a client may reply) without sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.pipeline import TraceSample


@dataclass(frozen=True)
class TraceRequest:
    """Server -> client: produce a trace at these PCs (step 8).

    ``breakpoint_skip`` asks the client to let that many executions of
    the breakpoint PC pass before snapshotting, so collected traces come
    from executions of varying maturity (see §4.1 and
    ``SnorlaxServer.collect_successful_traces``).
    """

    label: str
    seed: int
    breakpoint_uids: Sequence[int] = ()
    breakpoint_skip: int = 0


@dataclass
class TraceResponse:
    """Client -> server: the run's outcome and (maybe) a trace sample."""

    label: str
    outcome: str
    sample: TraceSample | None = None


@dataclass(frozen=True)
class FailureNotification:
    """Client -> server: an in-production failure occurred (step 1)."""

    bug_hint: str
    failing_uid: int
    failing_tid: int
    time: int
