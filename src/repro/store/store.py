"""The SQLite-backed diagnosis store.

One file holds the fleet's accumulated knowledge in three tiers:

* ``reports`` — finished diagnosis digests keyed by failure signature.
  This is the cross-process/cross-shard dedup tier: a signature stored
  by any server is served straight from disk by every other, with zero
  pipeline work.  Degraded reports (collection deadline hit, thinner
  evidence) are never stored — a re-report re-diagnoses with full
  evidence instead of freezing the degraded answer forever.
* ``analyses`` — solved points-to fixpoints keyed by
  ``(module fingerprint, scope key, algorithm)``, mirroring
  :class:`repro.core.cache.AnalysisCache`.  Payloads are the rebindable
  form produced by :mod:`repro.store.codec`.
* ``traces`` — decoded per-thread traces keyed by ``(module
  fingerprint, tid, buffer hash, MTC period)``, mirroring
  :class:`repro.core.cache.DecodedTraceCache`.

The schema is versioned: ``meta.schema_version`` records what is on
disk, and :data:`_MIGRATIONS` carries forward migrations that an open
of an older file replays in order.  A fresh file is created at version
1 and migrated up, so the migration path is exercised on every create.

Writes use ``INSERT OR IGNORE``: tiers are content-keyed (an identical
key means identical evidence), so the first write wins and repeats are
free.  ``writes`` counts rows actually inserted.  The store is
thread-safe (one connection, one lock) and safe to share across the
shards of one process group; separate processes open their own store
on the same path — WAL mode gives them concurrent readers plus a
single writer without ``SQLITE_BUSY`` storms.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass

from repro.core.cache import CacheStats
from repro.errors import FleetError

SCHEMA_VERSION = 4

_DDL_V1 = (
    """CREATE TABLE IF NOT EXISTS meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS reports (
        signature TEXT PRIMARY KEY,
        bug_id TEXT NOT NULL,
        digest TEXT NOT NULL,
        degraded INTEGER NOT NULL DEFAULT 0,
        created_at REAL NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS analyses (
        module_fp TEXT NOT NULL,
        scope_key TEXT NOT NULL,
        algorithm TEXT NOT NULL,
        payload BLOB NOT NULL,
        created_at REAL NOT NULL,
        PRIMARY KEY (module_fp, scope_key, algorithm)
    )""",
    """CREATE TABLE IF NOT EXISTS traces (
        module_fp TEXT NOT NULL,
        tid INTEGER NOT NULL,
        buffer_hash TEXT NOT NULL,
        mtc_period INTEGER NOT NULL,
        payload BLOB NOT NULL,
        created_at REAL NOT NULL,
        PRIMARY KEY (module_fp, tid, buffer_hash, mtc_period)
    )""",
)

# version N -> statements that bring an N-schema file to N+1
_MIGRATIONS: dict[int, tuple[str, ...]] = {
    # v2: reports carry the flight recorder of the diagnosing job, so a
    # stored root cause keeps its collection/analysis provenance
    1: ("ALTER TABLE reports ADD COLUMN flight_recorder TEXT",),
    # v3: reports carry their repro.validate outcome (status + witness
    # schedules as JSON) so validated/refuted is queryable per row
    2: ("ALTER TABLE reports ADD COLUMN validation TEXT",),
    # v4: provenance — every report's evidence graph (content-addressed
    # nodes + stage-stamped edges, see repro.provenance) is persisted
    # and queryable via evidence_for(report_key)
    3: (
        """CREATE TABLE IF NOT EXISTS evidence_nodes (
            report_key TEXT NOT NULL,
            node_digest TEXT NOT NULL,
            kind TEXT NOT NULL,
            payload TEXT NOT NULL,
            PRIMARY KEY (report_key, node_digest)
        )""",
        """CREATE TABLE IF NOT EXISTS evidence_edges (
            report_key TEXT NOT NULL,
            src TEXT NOT NULL,
            dst TEXT NOT NULL,
            stage TEXT NOT NULL,
            span_id INTEGER,
            PRIMARY KEY (report_key, src, dst, stage)
        )""",
    ),
}


@dataclass(frozen=True)
class StoredReport:
    """One persisted diagnosis: the digest plus its metadata."""

    signature: str
    bug_id: str
    digest: dict
    degraded: bool
    flight_recorder: str | None
    created_at: float
    validation: dict | None = None


class DiagnosisStore:
    """The persistent report/analysis/trace store (one SQLite file).

    ``path=":memory:"`` gives an ephemeral store (used by the check
    harness differentials); any other path persists across processes.
    Per-tier :class:`~repro.core.cache.CacheStats` count hits, misses,
    and writes; :meth:`absorb_into` folds them into a metrics registry
    under the ``store_*`` (aggregate) and ``{tier}_store_*`` (per-tier)
    vocabularies.
    """

    def __init__(self, path: str = ":memory:", tracer=None):
        self.path = path
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER as tracer  # noqa: N813
        self.tracer = tracer
        self._lock = threading.RLock()
        try:
            self._conn = sqlite3.connect(
                path, check_same_thread=False, timeout=30.0
            )
        except sqlite3.Error as exc:
            raise FleetError(f"cannot open diagnosis store {path!r}: {exc}")
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._migrate()
        self.report_stats = CacheStats()
        self.analysis_stats = CacheStats()
        self.trace_stats = CacheStats()
        self.evidence_stats = CacheStats()

    # -- schema ------------------------------------------------------------

    def _migrate(self) -> None:
        with self._lock, self._conn:
            for ddl in _DDL_V1:
                self._conn.execute(ddl)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            version = int(row[0]) if row else 1
            if version > SCHEMA_VERSION:
                raise FleetError(
                    f"store {self.path!r} has schema v{version}; this build "
                    f"understands up to v{SCHEMA_VERSION}"
                )
            while version < SCHEMA_VERSION:
                for statement in _MIGRATIONS[version]:
                    try:
                        self._conn.execute(statement)
                    except sqlite3.OperationalError as exc:
                        # replaying onto a file another process already
                        # migrated: duplicate-column is the benign race
                        if "duplicate column" not in str(exc):
                            raise
                version += 1
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES "
                "('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )

    @property
    def schema_version(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
        return int(row[0]) if row else 0

    # -- reports -----------------------------------------------------------

    def get_report(self, signature: str) -> StoredReport | None:
        with self.tracer.span("store_get", tier="report") as span:
            with self._lock:
                row = self._conn.execute(
                    "SELECT bug_id, digest, degraded, flight_recorder, "
                    "created_at, validation FROM reports WHERE signature=?",
                    (signature,),
                ).fetchone()
            if row is None:
                self.report_stats.misses += 1
                span.set(outcome="miss")
                return None
            self.report_stats.hits += 1
            span.set(outcome="hit")
            return StoredReport(
                signature=signature,
                bug_id=row[0],
                digest=json.loads(row[1]),
                degraded=bool(row[2]),
                flight_recorder=row[3],
                created_at=row[4],
                validation=json.loads(row[5]) if row[5] else None,
            )

    def put_report(
        self,
        signature: str,
        bug_id: str,
        digest: dict,
        degraded: bool = False,
        flight_recorder: str | None = None,
        validation: dict | None = None,
    ) -> bool:
        """Store a finished diagnosis; returns True if the row is new.

        Degraded diagnoses are refused: serving thinner-than-wanted
        evidence forever would freeze a transient outage into the
        fleet's permanent answer."""
        if degraded:
            return False
        with self.tracer.span("store_put", tier="report") as span:
            with self._lock, self._conn:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO reports (signature, bug_id, "
                    "digest, degraded, flight_recorder, created_at, "
                    "validation) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        signature,
                        bug_id,
                        json.dumps(digest, sort_keys=True),
                        int(degraded),
                        flight_recorder,
                        time.time(),
                        (
                            json.dumps(validation, sort_keys=True)
                            if validation is not None
                            else None
                        ),
                    ),
                )
            inserted = cursor.rowcount > 0
            if inserted:
                self.report_stats.writes += 1
            span.set(outcome="inserted" if inserted else "duplicate")
            return inserted

    def signatures(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT signature FROM reports ORDER BY signature"
            ).fetchall()
        return [r[0] for r in rows]

    # -- analyses ----------------------------------------------------------

    def get_analysis(
        self, module_fp: str, scope_key: str, algorithm: str
    ) -> bytes | None:
        with self.tracer.span("store_get", tier="analysis") as span:
            with self._lock:
                row = self._conn.execute(
                    "SELECT payload FROM analyses WHERE module_fp=? AND "
                    "scope_key=? AND algorithm=?",
                    (module_fp, scope_key, algorithm),
                ).fetchone()
            if row is None:
                self.analysis_stats.misses += 1
                span.set(outcome="miss")
                return None
            self.analysis_stats.hits += 1
            span.set(outcome="hit", bytes=len(row[0]))
            return row[0]

    def put_analysis(
        self, module_fp: str, scope_key: str, algorithm: str, payload: bytes
    ) -> bool:
        with self.tracer.span("store_put", tier="analysis") as span:
            with self._lock, self._conn:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO analyses (module_fp, scope_key, "
                    "algorithm, payload, created_at) VALUES (?, ?, ?, ?, ?)",
                    (module_fp, scope_key, algorithm, payload, time.time()),
                )
            inserted = cursor.rowcount > 0
            if inserted:
                self.analysis_stats.writes += 1
            span.set(outcome="inserted" if inserted else "duplicate")
            return inserted

    # -- traces ------------------------------------------------------------

    def get_trace(
        self, module_fp: str, tid: int, buffer_hash: str, mtc_period: int
    ) -> bytes | None:
        with self.tracer.span("store_get", tier="trace") as span:
            with self._lock:
                row = self._conn.execute(
                    "SELECT payload FROM traces WHERE module_fp=? AND tid=? "
                    "AND buffer_hash=? AND mtc_period=?",
                    (module_fp, tid, buffer_hash, mtc_period),
                ).fetchone()
            if row is None:
                self.trace_stats.misses += 1
                span.set(outcome="miss")
                return None
            self.trace_stats.hits += 1
            span.set(outcome="hit", bytes=len(row[0]))
            return row[0]

    def put_trace(
        self,
        module_fp: str,
        tid: int,
        buffer_hash: str,
        mtc_period: int,
        payload: bytes,
    ) -> bool:
        with self.tracer.span("store_put", tier="trace") as span:
            with self._lock, self._conn:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO traces (module_fp, tid, "
                    "buffer_hash, mtc_period, payload, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (module_fp, tid, buffer_hash, mtc_period, payload, time.time()),
                )
            inserted = cursor.rowcount > 0
            if inserted:
                self.trace_stats.writes += 1
            span.set(outcome="inserted" if inserted else "duplicate")
            return inserted

    # -- evidence graphs ---------------------------------------------------

    def put_evidence(self, graph) -> bool:
        """Persist one report's :class:`~repro.provenance.EvidenceGraph`.

        Content-keyed like every other tier (nodes by digest, edges by
        (src, dst, stage)): re-persisting the graph a replayed diagnosis
        rebuilt is free, and the stored graph digests identically to the
        in-memory one.  Returns True when any row was new."""
        with self.tracer.span("store_put", tier="evidence") as span:
            inserted = 0
            with self._lock, self._conn:
                for node in graph.nodes:
                    cursor = self._conn.execute(
                        "INSERT OR IGNORE INTO evidence_nodes (report_key, "
                        "node_digest, kind, payload) VALUES (?, ?, ?, ?)",
                        (
                            graph.report_key,
                            node.digest,
                            node.kind,
                            json.dumps(node.payload, sort_keys=True),
                        ),
                    )
                    inserted += cursor.rowcount
                for edge in graph.edges:
                    cursor = self._conn.execute(
                        "INSERT OR IGNORE INTO evidence_edges (report_key, "
                        "src, dst, stage, span_id) VALUES (?, ?, ?, ?, ?)",
                        (graph.report_key, edge.src, edge.dst, edge.stage,
                         edge.span_id),
                    )
                    inserted += cursor.rowcount
            if inserted:
                self.evidence_stats.writes += 1
            span.set(outcome="inserted" if inserted else "duplicate",
                     rows=inserted)
            return inserted > 0

    def evidence_for(self, report_key: str):
        """The persisted evidence graph of one report digest (by its
        :func:`~repro.provenance.report_key`), or None."""
        from repro.provenance import EvidenceEdge, EvidenceGraph, EvidenceNode

        with self.tracer.span("store_get", tier="evidence") as span:
            with self._lock:
                node_rows = self._conn.execute(
                    "SELECT node_digest, kind, payload FROM evidence_nodes "
                    "WHERE report_key=? ORDER BY node_digest",
                    (report_key,),
                ).fetchall()
                edge_rows = self._conn.execute(
                    "SELECT src, dst, stage, span_id FROM evidence_edges "
                    "WHERE report_key=? ORDER BY src, dst, stage",
                    (report_key,),
                ).fetchall()
            if not node_rows:
                self.evidence_stats.misses += 1
                span.set(outcome="miss")
                return None
            self.evidence_stats.hits += 1
            span.set(outcome="hit", nodes=len(node_rows), edges=len(edge_rows))
            return EvidenceGraph(
                report_key=report_key,
                nodes=tuple(
                    EvidenceNode(
                        digest=r[0], kind=r[1], payload=json.loads(r[2])
                    )
                    for r in node_rows
                ),
                edges=tuple(
                    EvidenceEdge(src=r[0], dst=r[1], stage=r[2], span_id=r[3])
                    for r in edge_rows
                ),
            )

    # -- introspection -----------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Aggregate across the tiers (the ``store_*`` counters)."""
        tiers = (
            self.report_stats,
            self.analysis_stats,
            self.trace_stats,
            self.evidence_stats,
        )
        return CacheStats(
            hits=sum(t.hits for t in tiers),
            misses=sum(t.misses for t in tiers),
            evictions=sum(t.evictions for t in tiers),
            writes=sum(t.writes for t in tiers),
        )

    def counts(self) -> dict[str, int]:
        """Row counts per tier — what a warm restart has to work with."""
        with self._lock:
            return {
                table: self._conn.execute(
                    f"SELECT COUNT(*) FROM {table}"
                ).fetchone()[0]
                for table in (
                    "reports",
                    "analyses",
                    "traces",
                    "evidence_nodes",
                    "evidence_edges",
                )
            }

    def absorb_into(self, registry) -> None:
        """Snapshot store counters into a
        :class:`~repro.obs.MetricsRegistry` (idempotent: cumulative
        totals are *set*, not incremented — same contract as
        ``absorb_cache_stats``)."""
        registry.absorb_cache_stats("store", self.stats)
        registry.absorb_cache_stats("report_store", self.report_stats)
        registry.absorb_cache_stats("analysis_store", self.analysis_stats)
        registry.absorb_cache_stats("trace_store", self.trace_stats)
        registry.absorb_cache_stats("evidence_store", self.evidence_stats)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "DiagnosisStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
