"""Write-through adapters: the in-memory diagnosis caches, store-backed.

These subclass the LRUs of :mod:`repro.core.cache` so every existing
call site (pipeline, fleet server, ``repro.api``) keeps working
unchanged; the only new behavior is at the edges:

* a **memory miss** consults the store and, on a hit, hydrates the LRU
  with the rebound object (disk → memory, no re-solve/re-decode);
* a **fill** writes through to the store (memory → disk), so the next
  process — or the next shard — starts warm.

Memory-tier stats stay on the inherited :class:`CacheStats`; the store
tiers count their own hits/misses/writes on the
:class:`~repro.store.store.DiagnosisStore`.
"""

from __future__ import annotations

from repro.core.cache import (
    AnalysisCache,
    CachedAnalysis,
    DecodedTraceCache,
    DiagnosisCaches,
    _LruCache,
)
from repro.store.codec import (
    decode_analysis,
    decode_trace,
    encode_analysis,
    encode_trace,
    scope_key,
)
from repro.store.store import DiagnosisStore


class PersistentAnalysisCache(AnalysisCache):
    """An :class:`AnalysisCache` whose misses fall through to the store.

    Hydration needs the live module (rebinding a fixpoint regenerates
    its constraint system), which the cache key alone cannot supply —
    so the pipeline calls :meth:`get_for_module` (the protocol hook
    :meth:`repro.core.points_to.PointsToAnalysis.run` prefers when a
    cache provides it) instead of the key-only :meth:`get`.
    """

    def __init__(self, store: DiagnosisStore, max_entries: int = 64):
        super().__init__(max_entries)
        self.store = store

    def get_for_module(
        self, key: tuple, module, executed_uids
    ) -> CachedAnalysis | None:
        cached = super().get(key)
        if cached is not None:
            return cached
        module_fp, _scope, algorithm = key
        blob = self.store.get_analysis(
            module_fp, scope_key(executed_uids), algorithm
        )
        if blob is None:
            return None
        decoded = decode_analysis(blob, module, executed_uids, algorithm)
        if decoded is None:
            return None  # unrebindable payload: fall back to a fresh solve
        # hydrate memory only — the row is already on disk
        _LruCache.put(self, key, decoded)
        return decoded

    def put(self, key: tuple, value) -> None:
        super().put(key, value)
        if not isinstance(value, CachedAnalysis):
            return
        blob = encode_analysis(value.system, value.result)
        if blob is not None:
            module_fp, scope, algorithm = key
            self.store.put_analysis(
                module_fp, scope_key(scope), algorithm, blob
            )


class PersistentTraceCache(DecodedTraceCache):
    """A :class:`DecodedTraceCache` whose misses fall through to the
    store.  Decoded traces are self-contained, so plain :meth:`get` can
    hydrate — ``get_or_decode`` works unchanged from the base class."""

    def __init__(self, store: DiagnosisStore, max_entries: int = 1024):
        super().__init__(max_entries)
        self.store = store

    def get(self, key: object):
        entry = super().get(key)
        if entry is not None:
            return entry
        module_fp, tid, buffer_hash, mtc_period = key  # type: ignore[misc]
        blob = self.store.get_trace(
            module_fp, tid, buffer_hash.hex(), mtc_period
        )
        if blob is None:
            return None
        trace = decode_trace(blob)
        if trace is None:
            return None
        _LruCache.put(self, key, trace)
        return trace

    def put(self, key: object, value: object) -> None:
        super().put(key, value)
        module_fp, tid, buffer_hash, mtc_period = key  # type: ignore[misc]
        self.store.put_trace(
            module_fp, tid, buffer_hash.hex(), mtc_period, encode_trace(value)
        )


def persistent_caches(
    store: DiagnosisStore,
    analysis_entries: int = 64,
    trace_entries: int = 1024,
) -> DiagnosisCaches:
    """A :class:`DiagnosisCaches` pair backed by ``store`` — what a
    fleet server uses so restarts resume warm and shards share work."""
    return DiagnosisCaches(
        analysis=PersistentAnalysisCache(store, analysis_entries),
        traces=PersistentTraceCache(store, trace_entries),
    )
