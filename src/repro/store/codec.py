"""Rebindable serialization for the persistent store's payload tiers.

Decoded traces are pure data (uids, tids, time intervals) and pickle
across processes unchanged.  Points-to fixpoints do not: IR ``Value``
objects compare by identity, so a naively pickled ``AndersenResult``
holds *copies* of the module's values and silently answers "empty" to
every query against the live module.  The fix exploits determinism:
``generate_constraints`` over a byte-identical module with an identical
scope enumerates semantically corresponding values in the same order,
so a fixpoint is stored as points-to sets over *node indices* of that
canonical enumeration, and decoding regenerates the (cheap) constraint
system from the live module and rebinds each index to the live value.
The expensive part — solving — is what the store saves.

Encoding is verified, not assumed: a points-to key that does not
appear in the canonical enumeration (a solver-internal node we cannot
rebind) makes the fixpoint non-persistable and ``encode_analysis``
returns ``None`` — the caller just skips the store and re-solves on
the next process, which is always correct.  ``decode_analysis``
likewise returns ``None`` on any payload it cannot rebind (codec
version drift, index out of range), turning corruption into a cache
miss instead of a wrong answer.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import asdict

from repro.core.andersen import AndersenResult, SolverStats, _ContentsNode
from repro.core.cache import CachedAnalysis
from repro.core.constraints import AbstractObject, generate_constraints

CODEC_VERSION = 1

_PICKLE_PROTOCOL = 4  # stable across the supported CPythons (3.10+)


def scope_key(executed_uids) -> str:
    """A stable text key for an analysis scope: ``whole`` for the
    whole-program analysis, else a hash of the sorted executed set."""
    if executed_uids is None:
        return "whole"
    text = ",".join(str(uid) for uid in sorted(executed_uids))
    return hashlib.sha256(text.encode()).hexdigest()


def _iter_system_values(system):
    """Every value the solver can attach a points-to set to, in the
    deterministic order constraint generation produced them (plus the
    function params/returns indirect-call resolution binds on the fly)."""
    for v in system.addr_of:
        yield v
    for dst, src in system.copies:
        yield dst
        yield src
    for dst, pointer in system.loads:
        yield dst
        yield pointer
    for pointer, src in system.stores:
        yield pointer
        yield src
    for instr, callee in system.indirect_calls:
        yield instr
        yield callee
        for arg in getattr(instr, "args", ()):
            yield arg
    for fn in system.functions_by_object.values():
        yield from fn.params
    for rets in system.returns_of.values():
        yield from rets


def _enumerate_nodes(system) -> list:
    """The canonical node list: first occurrence wins, identity-deduped
    (IR values hash by identity; constants by content, which is also
    stable across regenerations of the same module)."""
    order: list = []
    seen: set[int] = set()
    for value in _iter_system_values(system):
        if id(value) not in seen:
            seen.add(id(value))
            order.append(value)
    return order


def _obj_key(obj: AbstractObject) -> tuple[str, int, str]:
    return (obj.kind, obj.uid, obj.name)


def encode_analysis(system, result) -> bytes | None:
    """Serialize one solved analysis, or ``None`` when it cannot be
    rebound on load (non-Andersen result, unenumerable solver node)."""
    if not isinstance(result, AndersenResult):
        return None  # Steensgaard results have a different shape; re-solve
    index: dict[int, int] = {}
    for position, value in enumerate(_enumerate_nodes(system)):
        index[id(value)] = position
    entries: list[tuple] = []
    for node, objs in result._pts.items():
        if not objs:
            continue
        if isinstance(node, _ContentsNode):
            ref: tuple = ("c", _obj_key(node.obj))
        else:
            position = index.get(id(node))
            if position is None:
                return None  # solver-internal node we cannot rebind
            ref = ("v", position)
        entries.append((ref, sorted(_obj_key(o) for o in objs)))
    payload = {
        "codec": CODEC_VERSION,
        "pts": entries,
        "stats": asdict(result.stats),
    }
    return pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)


def decode_analysis(
    blob: bytes, module, executed_uids, algorithm: str
) -> CachedAnalysis | None:
    """Rebind a stored fixpoint onto the live module, or ``None`` (a
    miss — the caller re-solves) when the payload cannot be rebound."""
    try:
        payload = pickle.loads(blob)
    except Exception:
        return None
    if not isinstance(payload, dict) or payload.get("codec") != CODEC_VERSION:
        return None
    system = generate_constraints(module, executed_uids)
    order = _enumerate_nodes(system)
    pts: dict[object, set[AbstractObject]] = {}
    for ref, obj_keys in payload["pts"]:
        objs = {AbstractObject(*key) for key in obj_keys}
        if ref[0] == "c":
            node: object = _ContentsNode(AbstractObject(*ref[1]))
        else:
            position = ref[1]
            if not 0 <= position < len(order):
                return None  # enumeration drifted; treat as corruption
            node = order[position]
        pts[node] = objs
    stats = SolverStats(**payload.get("stats", {}))
    return CachedAnalysis(system, AndersenResult(pts, stats))


def encode_trace(trace) -> bytes:
    """Decoded traces are identity-free plain data; pickle is exact."""
    return pickle.dumps(
        {"codec": CODEC_VERSION, "trace": trace}, protocol=_PICKLE_PROTOCOL
    )


def decode_trace(blob: bytes):
    """The stored :class:`~repro.pt.decoder.ThreadTrace`, or ``None``
    on version drift/corruption (a miss; the caller re-decodes)."""
    try:
        payload = pickle.loads(blob)
    except Exception:
        return None
    if not isinstance(payload, dict) or payload.get("codec") != CODEC_VERSION:
        return None
    return payload.get("trace")
