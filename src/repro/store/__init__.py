"""``repro.store`` — the persistent diagnosis store.

Everything the fleet learns — diagnosis reports, solved Andersen
fixpoints, decoded PT traces — used to live in process memory and die
with the process.  This package gives those three tiers a disk-backed
home (one SQLite file in WAL mode) plus write-through cache adapters,
so a restarted server resumes with a hot cache and a signature
diagnosed anywhere in the fleet is a store hit everywhere else.

Layers::

    store     DiagnosisStore: the SQLite schema (reports / analyses /
              traces), versioned with forward migrations
    codec     rebindable serialization: points-to fixpoints are stored
              as node indices over the deterministic constraint
              enumeration and re-bound to the live module on load
    adapters  PersistentAnalysisCache / PersistentTraceCache: the
              in-memory LRUs of repro.core.cache, hydrating from the
              store on miss and writing through on fill
"""

from repro.store.adapters import (
    PersistentAnalysisCache,
    PersistentTraceCache,
    persistent_caches,
)
from repro.store.codec import (
    decode_analysis,
    decode_trace,
    encode_analysis,
    encode_trace,
    scope_key,
)
from repro.store.store import SCHEMA_VERSION, DiagnosisStore, StoredReport

__all__ = [
    "SCHEMA_VERSION",
    "DiagnosisStore",
    "StoredReport",
    "PersistentAnalysisCache",
    "PersistentTraceCache",
    "persistent_caches",
    "encode_analysis",
    "decode_analysis",
    "encode_trace",
    "decode_trace",
    "scope_key",
]
