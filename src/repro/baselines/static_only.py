"""Whole-program static analysis baseline (Table 4's comparator).

Runs the same inclusion-based points-to analysis as the hybrid stage but
*eagerly*, over every instruction in the module — what a server would
have to do without control-flow traces.  Table 4 reports Snorlax's
speedup over this baseline (geometric mean 24x, growing with program
size, because the trace covers a fixed-size window while the program
does not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.points_to import PointsToAnalysis
from repro.ir.module import Module


@dataclass
class StaticAnalysisResult:
    analysis: PointsToAnalysis
    seconds: float
    instructions: int


def run_whole_program(module: Module, algorithm: str = "andersen") -> StaticAnalysisResult:
    analysis = PointsToAnalysis(module, executed_uids=None, algorithm=algorithm).run()
    return StaticAnalysisResult(
        analysis=analysis,
        seconds=analysis.stats.analysis_seconds,
        instructions=analysis.stats.instructions_analyzed,
    )


def speedup_vs_hybrid(
    module: Module,
    executed_uids: set[int],
    algorithm: str = "andersen",
    repeats: int = 3,
) -> dict:
    """Time both scopes (best of ``repeats``); Table 4 row ingredients."""
    whole_runs = [run_whole_program(module, algorithm) for _ in range(repeats)]
    whole = min(whole_runs, key=lambda r: r.seconds)
    hybrid_runs = [
        PointsToAnalysis(module, executed_uids, algorithm).run()
        for _ in range(repeats)
    ]
    hybrid = min(hybrid_runs, key=lambda a: a.stats.analysis_seconds)
    hybrid_s = hybrid.stats.analysis_seconds
    return {
        "instructions_total": whole.instructions,
        "instructions_hybrid": hybrid.stats.instructions_analyzed,
        "whole_seconds": whole.seconds,
        "hybrid_seconds": hybrid_s,
        "speedup": whole.seconds / hybrid_s if hybrid_s > 0 else float("inf"),
        "scope_reduction": hybrid.stats.scope_reduction,
    }
