"""Gist baseline: the state-of-the-art comparator of the paper's §6.3.

Gist (SOSP'15) diagnoses failures by *instrumenting* the program: it
computes a static backward slice from the failing instruction, monitors
an adaptively-refined window of that slice, and needs the failure to
recur several times (3.7 on average in its paper) before the root cause
is isolated.  Monitoring shared accesses requires synchronization, whose
contention grows with thread count — the scalability gap of Figure 9.

Three aspects are modeled here, each matching what §6.3 attributes to
Gist:

* ``GistInstrumentation`` — a per-access software probe with a blocking-
  synchronization cost model (base + contention * (threads - 1)).
* ``GistDiagnoser`` — iterative slice refinement across failure
  recurrences; diagnosis latency is the number of recurrences needed.
* ``SpaceSampling`` — one bug monitored per execution: with B bugs
  tracked, the expected latency multiplies by B (the paper's Chromium
  example: 684 open races -> 2523x vs Snorlax).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.slicing import BackwardSlicer
from repro.ir.instructions import Instruction
from repro.ir.module import Module


@dataclass
class GistCostModel:
    """Per-monitored-access instrumentation cost (ns).

    ``contention_ns`` is charged once per *other* runnable thread: the
    instrumentation serializes its updates on shared monitor state, so
    every concurrent thread adds queuing delay.
    """

    base_ns: int = 105
    contention_ns: int = 4


class GistInstrumentation:
    """Machine ``instrumentation`` hook monitoring a set of instructions."""

    def __init__(self, monitored_uids: set[int], costs: GistCostModel | None = None):
        self.monitored = set(monitored_uids)
        self.costs = costs or GistCostModel()
        self.events_recorded = 0

    def before_instruction(self, machine, tid: int, instr: Instruction) -> int:
        if instr.uid not in self.monitored:
            return 0
        if not (instr.is_memory_access or instr.is_lock_op):
            return 0
        self.events_recorded += 1
        # Contenders on the monitor's lock: threads currently on-CPU or
        # queued behind a lock (sleeping threads don't touch the monitor).
        active = sum(
            1
            for t in machine.threads.values()
            if t.alive and t.state in ("runnable", "blocked-lock")
        )
        return self.costs.base_ns + self.costs.contention_ns * max(0, active - 1)


@dataclass
class GistAttempt:
    recurrence: int
    slice_depth: int
    monitored: int
    covered: bool  # did the monitored window cover all target events?


@dataclass
class GistResult:
    diagnosed: bool
    recurrences_needed: int  # failing executions observed before diagnosis
    attempts: list[GistAttempt] = field(default_factory=list)
    final_monitored: int = 0


class GistDiagnoser:
    """Iterative slice refinement across failure recurrences.

    Starting from a narrow dependence window around the failing
    instruction, each *recurrence* of the failure lets Gist widen the
    monitored window (its "refinement").  Diagnosis completes on the
    first recurrence whose window covers every target event of the bug —
    the information Snorlax extracts from a single failure because its
    trace is always on.
    """

    def __init__(self, module: Module, initial_depth: int = 1, growth: int = 1):
        self.module = module
        self.slicer = BackwardSlicer(module)
        self.initial_depth = initial_depth
        self.growth = growth

    def diagnose(
        self, failing_uid: int, target_uids: list[int], max_recurrences: int = 64
    ) -> GistResult:
        result = GistResult(False, 0)
        depth = self.initial_depth
        targets = set(target_uids)
        for recurrence in range(1, max_recurrences + 1):
            window = self.slicer.slice_from(failing_uid, max_depth=depth)
            covered = targets <= window
            result.attempts.append(
                GistAttempt(recurrence, depth, len(window), covered)
            )
            if covered:
                # One more recurrence must be observed *with* the full
                # window monitored to capture the interleaving.
                result.diagnosed = True
                result.recurrences_needed = recurrence + 1
                result.final_monitored = len(window)
                return result
            depth += self.growth
        result.recurrences_needed = max_recurrences
        return result


@dataclass
class SpaceSampling:
    """Gist monitors one bug per execution (sampling in space, §6.3)."""

    tracked_bugs: int = 1

    def expected_latency_factor(self, recurrences_needed: int) -> float:
        """Expected failing executions until diagnosis when only 1/B of
        executions monitor the right bug."""
        return recurrences_needed * self.tracked_bugs

    def snorlax_latency(self) -> int:
        """Snorlax needs exactly one failure regardless of bug count."""
        return 1
