"""Baselines: Gist-style instrumentation diagnosis and whole-program static analysis."""

from repro.baselines.gist import (
    GistCostModel,
    GistDiagnoser,
    GistInstrumentation,
    GistResult,
    SpaceSampling,
)
from repro.baselines.slicing import BackwardSlicer
from repro.baselines.static_only import (
    StaticAnalysisResult,
    run_whole_program,
    speedup_vs_hybrid,
)

__all__ = [
    "GistCostModel",
    "GistDiagnoser",
    "GistInstrumentation",
    "GistResult",
    "SpaceSampling",
    "BackwardSlicer",
    "StaticAnalysisResult",
    "run_whole_program",
    "speedup_vs_hybrid",
]
