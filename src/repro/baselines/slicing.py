"""Static backward slicing (the analysis underlying the Gist baseline).

Gist's static analysis "computes a static backward slice which includes
all the program instructions that could affect the failing instruction"
(§6.3).  The slice follows data dependences (through registers and — via
a points-to analysis — through memory) and control dependences, growing
outward from the failing instruction.  Gist refines the slice after
every failure recurrence by widening the monitored window.
"""

from __future__ import annotations

from collections import deque

from repro.core.points_to import PointsToAnalysis
from repro.ir.cfg import control_dependent_blocks
from repro.ir.instructions import Free, Instruction, Load, Lock, Store, Unlock
from repro.ir.module import Module
from repro.ir.values import Value


class BackwardSlicer:
    def __init__(self, module: Module, analysis: PointsToAnalysis | None = None):
        self.module = module
        self.analysis = analysis or PointsToAnalysis(module).run()
        self._stores_by_object: dict[object, list[Store]] = {}
        self._locks_by_object: dict[object, list[Instruction]] = {}
        self._control_deps: dict = {}
        self._index_stores()

    def _index_stores(self) -> None:
        for instr in self.module.instructions():
            if isinstance(instr, (Store, Free)):
                # A free mutates the object's liveness: loads of the
                # object are affected by it exactly like by a store.
                pointer = instr.pointer_operand()
                for obj in self.analysis.points_to(pointer):
                    self._stores_by_object.setdefault(obj, []).append(instr)
            elif isinstance(instr, (Lock, Unlock)):
                for obj in self.analysis.points_to(instr.pointer):
                    self._locks_by_object.setdefault(obj, []).append(instr)

    def _control_dep_blocks(self, fn):
        if fn not in self._control_deps:
            self._control_deps[fn] = control_dependent_blocks(fn)
        return self._control_deps[fn]

    def slice_from(self, seed_uid: int, max_depth: int = 10**9) -> set[int]:
        """All instruction uids that may affect ``seed_uid``.

        ``max_depth`` bounds the dependence distance — Gist's iterative
        refinement corresponds to growing this bound per recurrence.
        """
        seed = self.module.instruction(seed_uid)
        sliced: set[int] = set()
        work: deque[tuple[Instruction, int]] = deque([(seed, 0)])
        while work:
            instr, depth = work.popleft()
            if instr.uid in sliced or depth > max_depth:
                continue
            sliced.add(instr.uid)
            for dep in self._dependences(instr):
                if dep.uid not in sliced:
                    work.append((dep, depth + 1))
        return sliced

    def _dependences(self, instr: Instruction) -> list[Instruction]:
        from repro.ir.instructions import Call, Ret
        from repro.ir.values import FunctionRef

        deps: list[Instruction] = []
        # data deps through SSA operands
        for op in instr.operands:
            if isinstance(op, Instruction):
                deps.append(op)
        # a call's value flows from the callee's returns
        if isinstance(instr, Call) and isinstance(instr.callee, FunctionRef):
            for callee_instr in instr.callee.function.instructions():
                if isinstance(callee_instr, Ret) and callee_instr.value is not None:
                    deps.append(callee_instr)
        # data deps through memory: loads depend on may-aliased stores
        if isinstance(instr, Load):
            for obj in self.analysis.points_to(instr.pointer):
                deps.extend(self._stores_by_object.get(obj, ()))
        # synchronization deps: a lock operation depends on (a) every
        # lock/unlock that may touch the same mutex (cross-thread
        # ordering) and (b) the lock operations preceding it in its own
        # function (the lockset held at this point — what makes opposite
        # acquisition orders reachable in a deadlock slice)
        if isinstance(instr, (Lock, Unlock)):
            for obj in self.analysis.points_to(instr.pointer):
                deps.extend(self._locks_by_object.get(obj, ()))
            fn = instr.parent.function if instr.parent else None
            if fn is not None:
                for other in fn.instructions():
                    if other.uid == instr.uid:
                        break
                    if isinstance(other, (Lock, Unlock)):
                        deps.append(other)
        # control deps: the branches governing this block
        block = instr.parent
        if block is not None and block.function is not None:
            governing = self._control_dep_blocks(block.function).get(block, ())
            for brancher in governing:
                deps.append(brancher.terminator)
        return deps
