"""Virtual time and instruction cost model.

The simulator keeps one global nanosecond clock.  Executing an
instruction advances the clock by that opcode's cost; a ``delay d``
instruction puts its thread to sleep for ``d`` virtual nanoseconds while
other threads keep running, which is how corpus programs model the
application work (parsing, I/O, computation) between target events.

The default costs are loosely calibrated to a Skylake-class core (the
paper's client machine): ~1 ns simple ops, ~2 ns cache-hit memory
accesses, ~20 ns uncontended lock operations.  Exact values do not
matter for any experiment — all paper-relevant intervals are dominated
by explicit delays — but keeping them physical makes the ~5-orders-of-
magnitude claim in §3.3 meaningful inside the simulation too.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostModel:
    """Nanosecond cost of executing each instruction class once."""

    default: int = 1
    load: int = 2
    store: int = 2
    lock: int = 20
    unlock: int = 15
    lock_init: int = 10
    malloc: int = 50
    free: int = 30
    call: int = 5
    ret: int = 3
    spawn: int = 2000
    join: int = 10
    branch: int = 1
    overrides: dict[str, int] = field(default_factory=dict)

    def cost(self, opcode: str) -> int:
        if opcode in self.overrides:
            return self.overrides[opcode]
        return {
            "load": self.load,
            "store": self.store,
            "lock": self.lock,
            "unlock": self.unlock,
            "lockinit": self.lock_init,
            "malloc": self.malloc,
            "free": self.free,
            "call": self.call,
            "ret": self.ret,
            "spawn": self.spawn,
            "join": self.join,
            "br": self.branch,
            "cbr": self.branch,
        }.get(opcode, self.default)


class VirtualClock:
    """A monotonically advancing global nanosecond counter.

    This plays the role of the invariant TSC in the paper (§3.2): a
    time source synchronized across all (virtual) cores that timing
    packets and the coarse interleaving study read.
    """

    def __init__(self, start: int = 0):
        self._now = start

    @property
    def now(self) -> int:
        return self._now

    def advance(self, delta: int) -> int:
        if delta < 0:
            raise ValueError(f"clock cannot go backwards (delta={delta})")
        self._now += delta
        return self._now

    def advance_to(self, target: int) -> int:
        if target > self._now:
            self._now = target
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualClock {self._now}ns>"


US = 1_000
"""Nanoseconds per microsecond."""

MS = 1_000_000
"""Nanoseconds per millisecond."""
