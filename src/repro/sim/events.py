"""Target-event instrumentation.

The coarse-interleaving-hypothesis study (paper §3.2) instruments the
*target instructions* of each bug with ``clock_gettime()`` calls and
measures the elapsed time between them.  :class:`EventLog` is our
equivalent: the machine records a timestamped :class:`TargetEvent` each
time a watched instruction executes.  Lazy Diagnosis itself never sees
this log — it only sees PT-like traces — so the log doubles as ground
truth when validating diagnosis output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class TargetEvent:
    """One dynamic execution of a watched instruction."""

    uid: int  # instruction uid
    tid: int  # executing thread
    time: int  # virtual ns at which the instruction executed
    kind: str  # "read" | "write" | "lock" | "unlock" | "other"
    address: int | None = None  # accessed memory address, if any

    def __str__(self) -> str:
        addr = f" @0x{self.address:x}" if self.address is not None else ""
        return f"[t={self.time}ns T{self.tid}] uid={self.uid} {self.kind}{addr}"


class EventLog:
    """An append-only, time-ordered log of target events."""

    def __init__(self, watched: Iterable[int] = ()):
        self.watched: set[int] = set(watched)
        self.events: list[TargetEvent] = []

    def watch(self, uid: int) -> None:
        self.watched.add(uid)

    def record(self, event: TargetEvent) -> None:
        self.events.append(event)

    def for_uid(self, uid: int) -> list[TargetEvent]:
        return [e for e in self.events if e.uid == uid]

    def for_thread(self, tid: int) -> list[TargetEvent]:
        return [e for e in self.events if e.tid == tid]

    def first(self, uid: int) -> TargetEvent | None:
        for e in self.events:
            if e.uid == uid:
                return e
        return None

    def last(self, uid: int) -> TargetEvent | None:
        found = None
        for e in self.events:
            if e.uid == uid:
                found = e
        return found

    def gaps(self, uids: list[int]) -> list[int] | None:
        """Elapsed ns between consecutive events of the given uid sequence.

        Matches the paper's ΔT measurements: for ``[u1, u2]`` returns one
        gap (order violations / deadlocks); for ``[u1, u2, u3]`` returns
        two gaps (ΔT1, ΔT2 of atomicity violations).  Uses the first
        occurrence of each uid at or after the previous event's time.
        Returns None if the sequence did not occur in order.
        """
        gaps: list[int] = []
        t_prev: int | None = None
        for uid in uids:
            candidates = [e for e in self.events if e.uid == uid]
            if t_prev is not None:
                candidates = [e for e in candidates if e.time >= t_prev]
            if not candidates:
                return None
            chosen = min(candidates, key=lambda e: e.time)
            if t_prev is not None:
                gaps.append(chosen.time - t_prev)
            t_prev = chosen.time
        return gaps

    def __iter__(self) -> Iterator[TargetEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
