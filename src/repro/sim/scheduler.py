"""Thread scheduling policies.

The scheduler is the simulator's source of interleaving nondeterminism:
given the set of runnable threads it picks who runs next and for how
many instructions (the quantum).  A seeded RNG makes every execution
reproducible from ``(module, workload, seed)`` — the property the whole
evaluation leans on, since benches need both failing and successful
executions of the same bug on demand.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass


class Scheduler:
    """Base policy: round-robin with quantum 1 (fully deterministic)."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._last: int | None = None

    def reset(self) -> None:
        self._last = None

    def pick(self, runnable: list[int]) -> tuple[int, int]:
        """Return (tid to run, instruction quantum)."""
        if not runnable:
            raise ValueError("pick() with no runnable threads")
        ordered = sorted(runnable)
        if self._last is None:
            tid = ordered[0]
        elif self._last in ordered:
            tid = ordered[(ordered.index(self._last) + 1) % len(ordered)]
        else:
            # _last exited or blocked: resume round-robin from its
            # successor position instead of restarting at ordered[0],
            # which starved high tids whenever low tids churned
            tid = ordered[bisect.bisect_right(ordered, self._last) % len(ordered)]
        self._last = tid
        return tid, 1


class RandomScheduler(Scheduler):
    """Uniform random choice with geometric quanta (the default policy).

    ``mean_quantum`` instructions run between preemption points on
    average.  Preemption can occur anywhere, so data races can resolve
    either way across executions — exactly the in-production behaviour
    Snorlax watches for.
    """

    def __init__(self, seed: int = 0, mean_quantum: int = 24):
        super().__init__(seed)
        if mean_quantum < 1:
            raise ValueError("mean_quantum must be >= 1")
        self.mean_quantum = mean_quantum
        self._rng = random.Random(seed)

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)

    def pick(self, runnable: list[int]) -> tuple[int, int]:
        if not runnable:
            raise ValueError("pick() with no runnable threads")
        tid = self._rng.choice(sorted(runnable))
        # geometric quantum with mean mean_quantum, at least 1
        quantum = 1
        p = 1.0 / self.mean_quantum
        while self._rng.random() > p:
            quantum += 1
            if quantum >= 16 * self.mean_quantum:
                break
        self._last = tid
        return tid, quantum


class HierarchicalScheduler(Scheduler):
    """Two-level (vcpu -> thread) scheduling, modeled on schedsi.

    Threads are pinned to one of ``vcpus`` virtual CPUs by tid.  The top
    level picks a vcpu with runnable work uniformly at random; within a
    vcpu, threads run round-robin, but a thread keeps its vcpu for a
    whole *timeslice* (several picks) before the local queue rotates.
    When the running thread leaves the race mid-slice (blocks, sleeps,
    exits), the next thread on the same vcpu **inherits the remainder of
    the slice** instead of drawing a fresh one — schedsi's timeslice
    inheritance.  The result is bursty, affinity-clustered interleaving:
    same-vcpu threads alternate coarsely while cross-vcpu preemption
    stays fine-grained, which is what real OS scheduling looks like and
    what uniform random preemption cannot produce.

    Per-pick quanta are geometric with ``mean_quantum``, like
    :class:`RandomScheduler`, so diagnosis timing assumptions carry over.
    """

    def __init__(
        self,
        seed: int = 0,
        vcpus: int = 2,
        mean_quantum: int = 24,
        slice_picks: int = 4,
    ):
        super().__init__(seed)
        if vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if mean_quantum < 1:
            raise ValueError("mean_quantum must be >= 1")
        if slice_picks < 1:
            raise ValueError("slice_picks must be >= 1")
        self.vcpus = vcpus
        self.mean_quantum = mean_quantum
        self.slice_picks = slice_picks
        self._rng = random.Random(seed)
        # per-vcpu: (current thread, picks left in the current slice)
        self._running: dict[int, int] = {}
        self._slice_left: dict[int, int] = {}

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)
        self._running = {}
        self._slice_left = {}

    def _vcpu_of(self, tid: int) -> int:
        return tid % self.vcpus

    def _draw_slice(self) -> int:
        # geometric number of picks, mean slice_picks, at least 1
        picks = 1
        p = 1.0 / self.slice_picks
        while self._rng.random() > p:
            picks += 1
            if picks >= 16 * self.slice_picks:
                break
        return picks

    def _draw_quantum(self) -> int:
        quantum = 1
        p = 1.0 / self.mean_quantum
        while self._rng.random() > p:
            quantum += 1
            if quantum >= 16 * self.mean_quantum:
                break
        return quantum

    def pick(self, runnable: list[int]) -> tuple[int, int]:
        if not runnable:
            raise ValueError("pick() with no runnable threads")
        by_vcpu: dict[int, list[int]] = {}
        for tid in sorted(runnable):
            by_vcpu.setdefault(self._vcpu_of(tid), []).append(tid)
        vcpu = self._rng.choice(sorted(by_vcpu))
        queue = by_vcpu[vcpu]
        current = self._running.get(vcpu)
        left = self._slice_left.get(vcpu, 0)
        if current in queue and left > 0:
            tid = current
        else:
            # rotate the local queue past the previous occupant; if it
            # left the race with slice remaining, the successor inherits
            # that remainder (timeslice inheritance), else a fresh draw
            if current is not None and current not in queue and left > 0:
                pass  # inherited: keep `left`
            else:
                left = self._draw_slice()
            tid = queue[(bisect.bisect_right(queue, current if current is not None else -1)) % len(queue)]
        self._running[vcpu] = tid
        self._slice_left[vcpu] = left - 1
        self._last = tid
        return tid, self._draw_quantum()


class FixedOrderScheduler(Scheduler):
    """Replays an explicit (tid, quantum) script, then falls back to RR.

    Used by tests that need one exact interleaving.
    """

    def __init__(self, script: list[tuple[int, int]]):
        super().__init__(0)
        self.script = list(script)
        self._idx = 0

    def reset(self) -> None:
        super().reset()
        self._idx = 0

    def pick(self, runnable: list[int]) -> tuple[int, int]:
        while self._idx < len(self.script):
            tid, quantum = self.script[self._idx]
            self._idx += 1
            if tid in runnable:
                return tid, quantum
        return super().pick(runnable)


# -- directed scheduling (repro.validate) ------------------------------------
#
# A DirectedScheduler runs threads freely but *gates* execution at the
# uids of a diagnosed target-event order: threads positioned at a gated
# instruction are held until it is that event's turn.  Because inter-
# event gaps in this simulator are dominated by virtual-clock delays,
# pick() alone cannot reorder events — the machine consults
# ``filter_runnable`` every scheduling round (advancing the clock when
# every runnable thread is held and sleepers exist) so a gate can
# outwait arbitrary timing.  ``force_release`` is the no-deadlock escape
# hatch: when nothing is runnable, nothing sleeps, and every runnable
# thread is held, the machine executes one instruction of the
# scheduler's choice rather than stalling — so a directive that became
# unsatisfiable (e.g. after an IR fix) degrades to a free run instead
# of a hang.
#
# The machine is duck-typed here (thread_positions(), .threads, state
# strings) because repro.sim.machine imports this module.

_FINISHED_STATES = ("done", "crashed")
# A thread blocked in join() counts as "out of the race" for
# serialization purposes: it will not execute another target event
# until the thread it waits for (often the gated one) finishes, so
# treating it as a blocker would deadlock the gate.  The same holds for
# waits with no identifiable owner (condvar/semaphore/barrier): the
# waker is frequently the gated thread itself.  Lock-style waits
# (blocked-lock, blocked-rw) stay *blocking*: any current holder can
# release and put the thread back in the race.
_INERT_STATES = (
    "done",
    "crashed",
    "blocked-join",
    "blocked-cond",
    "blocked-sema",
    "blocked-barrier",
)


@dataclass(frozen=True)
class ForceOrder:
    """Force the target events at ``uids`` to execute in exactly this
    order (the diagnosed failing interleaving).  The same uid may appear
    more than once — each occurrence gates one dynamic instance."""

    uids: tuple[int, ...]

    def describe(self) -> str:
        return "force-order " + "->".join(str(u) for u in self.uids)


@dataclass(frozen=True)
class SerializeAfter:
    """Hold any thread positioned at ``gate_uid`` while another live
    thread rooted (frames[0]) at one of ``other_roots`` could still
    execute its slot's events — the *inverse* of an order violation:
    the diagnosed-first event is forced to happen last."""

    gate_uid: int
    other_roots: frozenset[str]

    def describe(self) -> str:
        roots = ",".join(sorted(self.other_roots))
        return f"serialize uid {self.gate_uid} after roots [{roots}]"


@dataclass(frozen=True)
class SerializeFunction:
    """Serialize whole-function entry for threads rooted at
    ``function``: one rooted thread runs to completion before the next
    starts.  The inverse directive when both racing slots execute the
    same function (symmetric races, e.g. a double free)."""

    function: str

    def describe(self) -> str:
        return f"serialize function {self.function}"


Directive = ForceOrder | SerializeAfter | SerializeFunction


class DirectedScheduler(RandomScheduler):
    """RandomScheduler plus one gating :data:`Directive`.

    Free-running behaviour (choice + quantum) is byte-identical to
    ``RandomScheduler(seed, mean_quantum)`` consuming the same RNG
    stream; the directive only *filters* who may run.  When a thread
    sits at the front of a ForceOrder it runs exclusively with quantum
    1, so it executes exactly the gated instruction before the gate is
    re-evaluated.
    """

    def __init__(
        self, seed: int = 0, directive: Directive | None = None,
        mean_quantum: int = 24,
    ):
        super().__init__(seed, mean_quantum)
        self.directive = directive
        self._cursor = 0  # next unmet position in a ForceOrder
        self._advance_next = False  # front thread ran; advance on re-entry
        self._exclusive: int | None = None  # tid owed a quantum-1 run
        self._token: int | None = None  # SerializeFunction entry token
        self.releases = 0  # force_release invocations (gate gave up)

    def reset(self) -> None:
        super().reset()
        self._cursor = 0
        self._advance_next = False
        self._exclusive = None
        self._token = None
        self.releases = 0

    @property
    def satisfied(self) -> bool:
        """True once a ForceOrder has gated every position (always True
        for the serialization directives — they never "complete")."""
        if isinstance(self.directive, ForceOrder):
            # _advance_next means the front event already executed but
            # the cursor bump is still pending (it lands on the next
            # filter round — which never comes when the run *ends* at
            # the final gated instruction, e.g. a forced crash)
            cursor = self._cursor + (1 if self._advance_next else 0)
            return cursor >= len(self.directive.uids)
        return True

    # -- machine hooks ---------------------------------------------------

    def filter_runnable(self, machine, runnable: list[int]) -> list[int]:
        """The runnable tids the directive allows this round (may be
        empty: the machine then advances the clock or force-releases)."""
        self._exclusive = None
        if self.directive is None or not runnable:
            return list(runnable)
        if isinstance(self.directive, ForceOrder):
            return self._filter_force_order(machine, runnable)
        if isinstance(self.directive, SerializeAfter):
            return self._filter_serialize_after(machine, runnable)
        return self._filter_serialize_function(machine, runnable)

    def barrier_uids(self, machine) -> set[int]:
        """Uids a quantum must not run *through*: the machine truncates
        a quantum when the next instruction is one of these, so the
        round-level filter gets to rule on every gated instruction."""
        d = self.directive
        if isinstance(d, ForceOrder):
            return set(d.uids[self._cursor:])
        if isinstance(d, SerializeAfter):
            return {d.gate_uid}
        return set()

    def force_release(self, machine, runnable: list[int]) -> int:
        """Choose who runs when the gate held everyone and nothing
        sleeps.  For a ForceOrder, prefer the thread whose gated event
        comes earliest in the remaining order (least damage to it)."""
        self.releases += 1
        if isinstance(self.directive, ForceOrder):
            remaining = self.directive.uids[self._cursor:]
            positions = machine.thread_positions()
            best: tuple[int, int] | None = None
            for tid in runnable:
                uid = positions.get(tid)
                if uid in remaining:
                    rank = (remaining.index(uid), tid)
                    if best is None or rank < best:
                        best = rank
            if best is not None:
                return best[1]
        return min(runnable)

    # -- directive implementations ---------------------------------------

    def _filter_force_order(self, machine, runnable: list[int]) -> list[int]:
        if self._advance_next:
            self._cursor += 1
            self._advance_next = False
        remaining = self.directive.uids[self._cursor:]
        if not remaining:
            return list(runnable)
        positions = machine.thread_positions()
        front = remaining[0]
        front_tids = [t for t in runnable if positions.get(t) == front]
        if front_tids:
            tid = min(front_tids)
            self._advance_next = True
            self._exclusive = tid
            return [tid]
        gated = set(remaining)
        return [t for t in runnable if positions.get(t) not in gated]

    def _filter_serialize_after(self, machine, runnable: list[int]) -> list[int]:
        directive = self.directive
        rival_seen = False
        blockers: set[int] = set()
        active: set[int] = set()  # every non-inert thread, any root
        for t in machine.threads.values():
            inert = t.state in _INERT_STATES
            if not inert:
                active.add(t.tid)
            if t.root in directive.other_roots:
                rival_seen = True
                if not inert:
                    blockers.add(t.tid)
        positions = machine.thread_positions()
        allowed = []
        for t in runnable:
            if positions.get(t) != directive.gate_uid:
                allowed.append(t)
            elif blockers - {t}:
                continue  # a rival thread is still in the race
            elif not rival_seen and (active - {t}):
                continue  # the rival may not have been spawned yet
            else:
                allowed.append(t)
        return allowed

    def _filter_serialize_function(self, machine, runnable: list[int]) -> list[int]:
        fn = self.directive.function
        rooted = {
            t.tid
            for t in machine.threads.values()
            if t.state not in _FINISHED_STATES and t.root == fn
        }
        if self._token is not None and self._token not in rooted:
            self._token = None  # holder finished; pass the token on
        if self._token is None and rooted:
            self._token = min(rooted)
        return [t for t in runnable if t not in rooted or t == self._token]

    # -- picking ----------------------------------------------------------

    def pick(self, runnable: list[int]) -> tuple[int, int]:
        if self._exclusive is not None and self._exclusive in runnable:
            tid = self._exclusive
            self._exclusive = None
            self._last = tid
            return tid, 1
        self._exclusive = None
        return super().pick(runnable)
