"""Thread scheduling policies.

The scheduler is the simulator's source of interleaving nondeterminism:
given the set of runnable threads it picks who runs next and for how
many instructions (the quantum).  A seeded RNG makes every execution
reproducible from ``(module, workload, seed)`` — the property the whole
evaluation leans on, since benches need both failing and successful
executions of the same bug on demand.
"""

from __future__ import annotations

import random


class Scheduler:
    """Base policy: round-robin with quantum 1 (fully deterministic)."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._last: int | None = None

    def reset(self) -> None:
        self._last = None

    def pick(self, runnable: list[int]) -> tuple[int, int]:
        """Return (tid to run, instruction quantum)."""
        if not runnable:
            raise ValueError("pick() with no runnable threads")
        ordered = sorted(runnable)
        if self._last is None or self._last not in ordered:
            tid = ordered[0]
        else:
            tid = ordered[(ordered.index(self._last) + 1) % len(ordered)]
        self._last = tid
        return tid, 1


class RandomScheduler(Scheduler):
    """Uniform random choice with geometric quanta (the default policy).

    ``mean_quantum`` instructions run between preemption points on
    average.  Preemption can occur anywhere, so data races can resolve
    either way across executions — exactly the in-production behaviour
    Snorlax watches for.
    """

    def __init__(self, seed: int = 0, mean_quantum: int = 24):
        super().__init__(seed)
        if mean_quantum < 1:
            raise ValueError("mean_quantum must be >= 1")
        self.mean_quantum = mean_quantum
        self._rng = random.Random(seed)

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)

    def pick(self, runnable: list[int]) -> tuple[int, int]:
        if not runnable:
            raise ValueError("pick() with no runnable threads")
        tid = self._rng.choice(sorted(runnable))
        # geometric quantum with mean mean_quantum, at least 1
        quantum = 1
        p = 1.0 / self.mean_quantum
        while self._rng.random() > p:
            quantum += 1
            if quantum >= 16 * self.mean_quantum:
                break
        self._last = tid
        return tid, quantum


class FixedOrderScheduler(Scheduler):
    """Replays an explicit (tid, quantum) script, then falls back to RR.

    Used by tests that need one exact interleaving.
    """

    def __init__(self, script: list[tuple[int, int]]):
        super().__init__(0)
        self.script = list(script)
        self._idx = 0

    def reset(self) -> None:
        super().reset()
        self._idx = 0

    def pick(self, runnable: list[int]) -> tuple[int, int]:
        while self._idx < len(self.script):
            tid, quantum = self.script[self._idx]
            self._idx += 1
            if tid in runnable:
                return tid, quantum
        return super().pick(runnable)
