"""The simulated flat address space.

Every allocation (global, stack slot, heap object) becomes a
:class:`MemoryObject` with a unique base address from a bump allocator.
Word-granular values live in a sparse dict keyed by absolute address.
Accesses are validated: null/unmapped/out-of-bounds/freed accesses raise
:class:`GuestFault`, which the machine converts into the fail-stop crash
failures that trigger Lazy Diagnosis.

Each object remembers its *allocation site* (the uid of the alloca /
malloc instruction, or the global's uid).  Allocation sites are exactly
the abstract objects of the points-to analyses, so diagnosis results can
be cross-checked against concrete addresses in tests.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.ir.types import Type

NULL_GUARD_SIZE = 0x1000
"""Addresses below this are never mapped; dereferencing them is a null crash."""

_OBJECT_GAP = 64
"""Unmapped red-zone bytes between objects, so overflows fault."""


class GuestFault(Exception):
    """An invalid memory access by the simulated program (not a host bug)."""

    def __init__(self, kind: str, address: int, detail: str = ""):
        self.kind = kind  # "null" | "unmapped" | "oob" | "use-after-free"
        self.address = address
        self.detail = detail
        super().__init__(f"{kind} access at 0x{address:x}{': ' + detail if detail else ''}")


@dataclass
class MemoryObject:
    base: int
    size: int
    kind: str  # "global" | "stack" | "heap"
    alloc_site: int  # uid of the allocating instruction / global
    ty: Type | None
    freed: bool = False
    label: str = ""

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " freed" if self.freed else ""
        return (
            f"<MemoryObject {self.kind} base=0x{self.base:x} size={self.size}"
            f" site={self.alloc_site}{state}>"
        )


class Memory:
    def __init__(self):
        self._next_base = NULL_GUARD_SIZE
        self._bases: list[int] = []  # sorted, for containment lookup
        self._objects: dict[int, MemoryObject] = {}
        self._words: dict[int, object] = {}
        self.bytes_allocated = 0

    # -- allocation -----------------------------------------------------

    def allocate(
        self, size: int, kind: str, alloc_site: int, ty: Type | None = None, label: str = ""
    ) -> MemoryObject:
        if size < 0:
            raise SimulationError(f"negative allocation size {size}")
        size = max(size, 8)
        obj = MemoryObject(self._next_base, size, kind, alloc_site, ty, label=label)
        self._next_base += size + _OBJECT_GAP
        bisect.insort(self._bases, obj.base)
        self._objects[obj.base] = obj
        self.bytes_allocated += size
        # zero-initialize: absent words read as 0 (see read_word)
        return obj

    def free(self, address: int) -> MemoryObject:
        obj = self.object_at(address)
        if obj is None:
            raise GuestFault("unmapped", address, "free of unmapped address")
        if obj.base != address:
            raise GuestFault("oob", address, "free of interior pointer")
        if obj.freed:
            raise GuestFault("use-after-free", address, "double free")
        if obj.kind != "heap":
            raise GuestFault("oob", address, f"free of {obj.kind} object")
        obj.freed = True
        return obj

    def release_stack(self, obj: MemoryObject) -> None:
        """Mark a stack slot dead when its frame pops (dangling-pointer bugs)."""
        obj.freed = True

    # -- lookup ------------------------------------------------------------

    def object_at(self, address: int) -> MemoryObject | None:
        idx = bisect.bisect_right(self._bases, address) - 1
        if idx < 0:
            return None
        obj = self._objects[self._bases[idx]]
        return obj if obj.contains(address) else None

    def objects(self) -> list[MemoryObject]:
        return [self._objects[b] for b in self._bases]

    # -- access --------------------------------------------------------------

    def check_access(self, address: int) -> MemoryObject:
        if 0 <= address < NULL_GUARD_SIZE:
            raise GuestFault("null", address)
        obj = self.object_at(address)
        if obj is None:
            raise GuestFault("unmapped", address)
        if obj.freed:
            raise GuestFault("use-after-free", address, f"object from site {obj.alloc_site}")
        if address % 8 != 0:
            raise GuestFault("oob", address, "misaligned word access")
        return obj

    def read_word(self, address: int) -> object:
        self.check_access(address)
        return self._words.get(address, 0)

    def write_word(self, address: int, value: object) -> None:
        self.check_access(address)
        self._words[address] = value

    def peek_word(self, address: int) -> object:
        """Unchecked read for inspection in tests/debugging."""
        return self._words.get(address, 0)
