"""Failure reports and execution results.

Guest failures are data, not exceptions: a crashed or deadlocked
execution returns an :class:`ExecutionResult` whose ``failure`` field
carries what a production error tracker would know — the failure kind,
the failing program counter, the failing thread, and (for crashes) the
corrupt operand value.  This mirrors the paper's step 1: "the control
flow trace ... is generated upon a failure such as a crash or a
deadlock", with the failure code coming from Ubuntu's ErrorTracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class FailureReport:
    """Base: what the client knows when an execution fails."""

    kind: str  # "crash" | "deadlock" | "hang" | "assert"
    failing_uid: int  # instruction uid where the failure surfaced
    failing_tid: int
    time: int  # virtual ns of the failure
    detail: str = ""


@dataclass(frozen=True)
class CrashReport(FailureReport):
    """A fail-stop memory error (null/dangling dereference, bad free)."""

    fault_kind: str = ""  # "null" | "unmapped" | "oob" | "use-after-free"
    fault_address: int = 0
    operand_value: int | None = None  # runtime value of the bad pointer


@dataclass(frozen=True)
class DeadlockEntry:
    """One thread's position in a deadlock cycle."""

    tid: int
    waiting_for_lock: int  # address of the lock being acquired
    held_locks: tuple[int, ...]  # addresses currently held
    instr_uid: int  # the blocked lock instruction
    since: int = 0  # virtual ns when the thread blocked (context switch)


@dataclass(frozen=True)
class DeadlockReport(FailureReport):
    cycle: tuple[DeadlockEntry, ...] = ()


@dataclass
class ThreadStats:
    tid: int
    instructions: int = 0
    branches: int = 0
    memory_accesses: int = 0
    lock_ops: int = 0


@dataclass
class ExecutionResult:
    """Everything one simulated run produced."""

    outcome: str  # "success" | "crash" | "deadlock" | "hang" | "assert" | "step-limit"
    duration: int  # virtual ns from start to finish/failure
    failure: FailureReport | None = None
    event_log: Any = None  # EventLog if instrumentation was on
    trace_snapshots: dict[int, bytes] = field(default_factory=dict)  # tid -> ring bytes
    trace_metadata: dict[str, Any] = field(default_factory=dict)
    thread_stats: dict[int, ThreadStats] = field(default_factory=dict)
    instructions_executed: int = 0
    exit_value: Any = None

    @property
    def failed(self) -> bool:
        return self.outcome not in ("success",)

    def total_branches(self) -> int:
        return sum(s.branches for s in self.thread_stats.values())

    def summary(self) -> str:
        lines = [
            f"outcome:      {self.outcome}",
            f"duration:     {self.duration} ns ({self.duration / 1e6:.3f} ms)",
            f"instructions: {self.instructions_executed}",
            f"threads:      {len(self.thread_stats)}",
        ]
        if self.failure is not None:
            lines.append(
                f"failure:      {self.failure.kind} at uid={self.failure.failing_uid} "
                f"on T{self.failure.failing_tid} ({self.failure.detail})"
            )
        return "\n".join(lines)
