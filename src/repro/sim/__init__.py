"""The execution substrate: a deterministic multithreaded IR interpreter."""

from repro.sim.clock import MS, US, CostModel, VirtualClock
from repro.sim.events import EventLog, TargetEvent
from repro.sim.failures import (
    CrashReport,
    DeadlockEntry,
    DeadlockReport,
    ExecutionResult,
    FailureReport,
    ThreadStats,
)
from repro.sim.machine import Machine
from repro.sim.memory import GuestFault, Memory, MemoryObject
from repro.sim.scheduler import (
    DirectedScheduler,
    Directive,
    FixedOrderScheduler,
    ForceOrder,
    RandomScheduler,
    Scheduler,
    SerializeAfter,
    SerializeFunction,
)
from repro.sim.sync import LockTable, WaitEdge

__all__ = [
    "MS",
    "US",
    "CostModel",
    "VirtualClock",
    "EventLog",
    "TargetEvent",
    "CrashReport",
    "DeadlockEntry",
    "DeadlockReport",
    "ExecutionResult",
    "FailureReport",
    "ThreadStats",
    "Machine",
    "GuestFault",
    "Memory",
    "MemoryObject",
    "DirectedScheduler",
    "Directive",
    "FixedOrderScheduler",
    "ForceOrder",
    "RandomScheduler",
    "Scheduler",
    "SerializeAfter",
    "SerializeFunction",
    "LockTable",
    "WaitEdge",
]
