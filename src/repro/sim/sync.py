"""Sync-primitive state and deadlock detection.

Locks (and the richer primitives: condition variables, reader-writer
locks, semaphores, barriers) live in guest memory as one word of their
opaque type; the machine keys their runtime state by address.  When a
thread blocks on a lock the table records a wait-for edge; a cycle in
the wait-for graph is a deadlock, reported with each participating
thread's pending acquisition site — the information Figure 1(a) of the
paper calls the deadlock's target events.

Reader-writer locks have known owners, so their waits also contribute
wait-for edges (``find_wait_cycle`` walks the merged graph).  Condvar,
semaphore, and barrier waits have no identifiable owner — a thread
stuck there with no possible waker is a *hang*, not a deadlock, which
is exactly how the machine reports it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LockState:
    address: int
    owner: int | None = None  # tid of holder
    waiters: list[int] = field(default_factory=list)
    acquisitions: int = 0


@dataclass(frozen=True)
class WaitEdge:
    """Thread ``waiter`` wants ``lock_address`` held by ``owner``."""

    waiter: int
    owner: int
    lock_address: int
    instr_uid: int  # the blocked lock instruction
    since: int  # virtual time the wait began


class LockTable:
    def __init__(self):
        self._locks: dict[int, LockState] = {}
        self._pending: dict[int, WaitEdge] = {}  # waiter tid -> edge

    def state(self, address: int) -> LockState:
        if address not in self._locks:
            self._locks[address] = LockState(address)
        return self._locks[address]

    def try_acquire(self, address: int, tid: int) -> bool:
        st = self.state(address)
        if st.owner is None:
            st.owner = tid
            st.acquisitions += 1
            return True
        if st.owner == tid:
            # Non-recursive mutex: self-acquisition is a 1-thread deadlock.
            return False
        return False

    def add_waiter(self, address: int, tid: int, instr_uid: int, now: int) -> None:
        st = self.state(address)
        if tid not in st.waiters:
            st.waiters.append(tid)
        owner = st.owner
        assert owner is not None
        self._pending[tid] = WaitEdge(tid, owner, address, instr_uid, now)

    def release(self, address: int, tid: int) -> int | None:
        """Release; returns the tid of the waiter that inherits the lock."""
        st = self.state(address)
        if st.owner != tid:
            # Releasing a lock you don't hold is undefined behaviour in
            # pthreads; we surface it as owner=None so a later deadlock
            # check doesn't chase a stale owner.
            st.owner = None
            return None
        if st.waiters:
            next_tid = st.waiters.pop(0)
            st.owner = next_tid
            st.acquisitions += 1
            self._pending.pop(next_tid, None)
            # re-point the remaining waiters' wait-for edges at the
            # inheritor: an edge frozen on the old owner would hide any
            # cycle that runs through the new one
            for waiter in st.waiters:
                edge = self._pending.get(waiter)
                if edge is not None:
                    self._pending[waiter] = WaitEdge(
                        waiter, next_tid, address, edge.instr_uid, edge.since
                    )
            return next_tid
        st.owner = None
        return None

    def holder(self, address: int) -> int | None:
        st = self._locks.get(address)
        return st.owner if st else None

    def held_by(self, tid: int) -> list[int]:
        return [a for a, st in self._locks.items() if st.owner == tid]

    def waiting_edge(self, tid: int) -> WaitEdge | None:
        return self._pending.get(tid)

    def pending_edges(self) -> dict[int, WaitEdge]:
        return dict(self._pending)

    def find_deadlock_cycle(self, start_tid: int) -> list[WaitEdge] | None:
        """Follow wait-for edges from ``start_tid``; return the cycle if any."""
        return find_wait_cycle(self._pending, start_tid)


def find_wait_cycle(
    pending: dict[int, WaitEdge], start_tid: int
) -> list[WaitEdge] | None:
    """Follow wait-for edges from ``start_tid``; return the cycle if any.

    ``pending`` may merge edges from several tables (mutexes and
    reader-writer locks), so mixed-primitive cycles are found too.
    """
    path: list[WaitEdge] = []
    seen: set[int] = set()
    tid = start_tid
    while True:
        edge = pending.get(tid)
        if edge is None:
            return None
        if tid in seen:
            # trim the path to the actual cycle
            for i, e in enumerate(path):
                if e.waiter == tid:
                    return path[i:]
            return path
        seen.add(tid)
        path.append(edge)
        tid = edge.owner


class CondTable:
    """Condition-variable wait queues, keyed by address.

    Waits are naked (no mutex hand-off) and notifies have no memory: a
    notify with no waiter is dropped.  That asymmetry is what makes a
    lost wakeup a *schedule-dependent* hang rather than a logic error.
    """

    def __init__(self):
        self._waiters: dict[int, list[int]] = {}

    def wait(self, address: int, tid: int) -> None:
        self._waiters.setdefault(address, []).append(tid)

    def notify(self, address: int) -> int | None:
        """Wake the longest-waiting thread (FIFO); None if the signal
        found nobody waiting and was lost."""
        queue = self._waiters.get(address)
        if not queue:
            return None
        return queue.pop(0)

    def waiters(self, address: int) -> list[int]:
        return list(self._waiters.get(address, ()))


@dataclass
class RwLockState:
    address: int
    writer: int | None = None
    readers: list[int] = field(default_factory=list)  # acquisition order
    # (tid, "rd"|"wr") in arrival order; FIFO grant with reader batching
    waiters: list[tuple[int, str]] = field(default_factory=list)
    acquisitions: int = 0


class RwLockTable:
    """Reader-writer locks: many readers or one writer, FIFO waiters.

    Grant policy on release: the front waiter wins; if it is a reader,
    every consecutive reader behind it is granted in the same batch
    (writers never jump the queue, so they cannot starve).
    """

    def __init__(self):
        self._locks: dict[int, RwLockState] = {}
        self._pending: dict[int, WaitEdge] = {}  # waiter tid -> edge

    def state(self, address: int) -> RwLockState:
        if address not in self._locks:
            self._locks[address] = RwLockState(address)
        return self._locks[address]

    def try_rdlock(self, address: int, tid: int) -> bool:
        st = self.state(address)
        # readers must also queue behind waiting writers (FIFO fairness)
        if st.writer is None and not st.waiters:
            st.readers.append(tid)
            st.acquisitions += 1
            return True
        return False

    def try_wrlock(self, address: int, tid: int) -> bool:
        st = self.state(address)
        if st.writer is None and not st.readers and not st.waiters:
            st.writer = tid
            st.acquisitions += 1
            return True
        return False

    def add_waiter(
        self, address: int, tid: int, mode: str, instr_uid: int, now: int
    ) -> None:
        st = self.state(address)
        if all(w != tid for w, _ in st.waiters):
            st.waiters.append((tid, mode))
        # the wait-for edge points at whoever currently excludes us: the
        # writer if one holds, else the first reader (a writer waiting
        # behind readers waits on each of them; one edge is enough for
        # cycle detection because readers holding rd-locks rarely block
        # on each other without also creating the reverse edge)
        owner = st.writer if st.writer is not None else (
            st.readers[0] if st.readers else tid
        )
        self._pending[tid] = WaitEdge(tid, owner, address, instr_uid, now)

    def release(self, address: int, tid: int) -> list[int]:
        """Release whichever mode ``tid`` holds; returns the tids that
        inherit the lock (possibly several readers)."""
        st = self.state(address)
        if st.writer == tid:
            st.writer = None
        elif tid in st.readers:
            st.readers.remove(tid)
        else:
            # releasing a mode you don't hold: surface as free so a
            # later deadlock check doesn't chase a stale owner
            st.writer = None
        if st.writer is not None or st.readers:
            return []  # still held (other readers remain)
        granted: list[int] = []
        while st.waiters:
            wtid, mode = st.waiters[0]
            if mode == "wr":
                if granted:
                    break  # writer waits for this reader batch
                st.waiters.pop(0)
                st.writer = wtid
                st.acquisitions += 1
                self._pending.pop(wtid, None)
                return [wtid]
            st.waiters.pop(0)
            st.readers.append(wtid)
            st.acquisitions += 1
            self._pending.pop(wtid, None)
            granted.append(wtid)
        if st.waiters:
            # same re-pointing as the mutex table: the ungranted
            # waiters now wait on whoever excludes them after the grant
            owner = st.writer if st.writer is not None else (
                st.readers[0] if st.readers else None
            )
            if owner is not None:
                for wtid, _mode in st.waiters:
                    edge = self._pending.get(wtid)
                    if edge is not None:
                        self._pending[wtid] = WaitEdge(
                            wtid, owner, address, edge.instr_uid, edge.since
                        )
        return granted

    def holders(self, address: int) -> list[int]:
        st = self._locks.get(address)
        if st is None:
            return []
        return [st.writer] if st.writer is not None else list(st.readers)

    def held_by(self, tid: int) -> list[int]:
        return [
            a
            for a, st in self._locks.items()
            if st.writer == tid or tid in st.readers
        ]

    def pending_edges(self) -> dict[int, WaitEdge]:
        return dict(self._pending)


@dataclass
class SemState:
    address: int
    count: int = 0
    waiters: list[int] = field(default_factory=list)
    posts: int = 0


class SemTable:
    """Counting semaphores with FIFO waiters.

    A post with waiters hands the permit directly to the head waiter
    (the count never goes back above zero while someone blocks), so the
    invariant the fuzz stage restates — count never negative, and zero
    whenever the wait queue is non-empty — holds by construction.
    """

    def __init__(self):
        self._sems: dict[int, SemState] = {}

    def state(self, address: int) -> SemState:
        if address not in self._sems:
            self._sems[address] = SemState(address)
        return self._sems[address]

    def init(self, address: int, count: int) -> None:
        st = self.state(address)
        st.count = count
        st.waiters.clear()

    def try_wait(self, address: int) -> bool:
        st = self.state(address)
        if st.count > 0:
            st.count -= 1
            return True
        return False

    def add_waiter(self, address: int, tid: int) -> None:
        st = self.state(address)
        if tid not in st.waiters:
            st.waiters.append(tid)

    def post(self, address: int) -> int | None:
        """V: returns the tid that inherits the permit, if any waited."""
        st = self.state(address)
        st.posts += 1
        if st.waiters:
            return st.waiters.pop(0)
        st.count += 1
        return None


@dataclass
class BarrierState:
    address: int
    parties: int = 0
    arrived: list[int] = field(default_factory=list)
    generation: int = 0


class BarrierTable:
    """Cyclic barriers: the Nth arrival releases the whole batch and
    advances the generation (monotonically — the fuzzed invariant)."""

    def __init__(self):
        self._barriers: dict[int, BarrierState] = {}

    def state(self, address: int) -> BarrierState:
        if address not in self._barriers:
            self._barriers[address] = BarrierState(address)
        return self._barriers[address]

    def init(self, address: int, parties: int) -> None:
        st = self.state(address)
        st.parties = max(1, parties)
        st.arrived.clear()

    def arrive(self, address: int, tid: int) -> list[int] | None:
        """Record an arrival.  Returns the list of *previously blocked*
        tids to wake when the barrier trips, or None if ``tid`` must
        block for the rest of the batch."""
        st = self.state(address)
        st.arrived.append(tid)
        if len(st.arrived) >= st.parties:
            woken = [t for t in st.arrived if t != tid]
            st.arrived.clear()
            st.generation += 1
            return woken
        return None

    def waiting(self, address: int) -> list[int]:
        return list(self.state(address).arrived)
