"""Lock state and deadlock detection.

Locks live in guest memory (a word of ``lock`` type); the machine keys
their runtime state by address.  When a thread blocks on a lock the
table records a wait-for edge; a cycle in the wait-for graph is a
deadlock, reported with each participating thread's pending acquisition
site — the information Figure 1(a) of the paper calls the deadlock's
target events.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LockState:
    address: int
    owner: int | None = None  # tid of holder
    waiters: list[int] = field(default_factory=list)
    acquisitions: int = 0


@dataclass(frozen=True)
class WaitEdge:
    """Thread ``waiter`` wants ``lock_address`` held by ``owner``."""

    waiter: int
    owner: int
    lock_address: int
    instr_uid: int  # the blocked lock instruction
    since: int  # virtual time the wait began


class LockTable:
    def __init__(self):
        self._locks: dict[int, LockState] = {}
        self._pending: dict[int, WaitEdge] = {}  # waiter tid -> edge

    def state(self, address: int) -> LockState:
        if address not in self._locks:
            self._locks[address] = LockState(address)
        return self._locks[address]

    def try_acquire(self, address: int, tid: int) -> bool:
        st = self.state(address)
        if st.owner is None:
            st.owner = tid
            st.acquisitions += 1
            return True
        if st.owner == tid:
            # Non-recursive mutex: self-acquisition is a 1-thread deadlock.
            return False
        return False

    def add_waiter(self, address: int, tid: int, instr_uid: int, now: int) -> None:
        st = self.state(address)
        if tid not in st.waiters:
            st.waiters.append(tid)
        owner = st.owner
        assert owner is not None
        self._pending[tid] = WaitEdge(tid, owner, address, instr_uid, now)

    def release(self, address: int, tid: int) -> int | None:
        """Release; returns the tid of the waiter that inherits the lock."""
        st = self.state(address)
        if st.owner != tid:
            # Releasing a lock you don't hold is undefined behaviour in
            # pthreads; we surface it as owner=None so a later deadlock
            # check doesn't chase a stale owner.
            st.owner = None
            return None
        if st.waiters:
            next_tid = st.waiters.pop(0)
            st.owner = next_tid
            st.acquisitions += 1
            self._pending.pop(next_tid, None)
            return next_tid
        st.owner = None
        return None

    def holder(self, address: int) -> int | None:
        st = self._locks.get(address)
        return st.owner if st else None

    def held_by(self, tid: int) -> list[int]:
        return [a for a, st in self._locks.items() if st.owner == tid]

    def waiting_edge(self, tid: int) -> WaitEdge | None:
        return self._pending.get(tid)

    def find_deadlock_cycle(self, start_tid: int) -> list[WaitEdge] | None:
        """Follow wait-for edges from ``start_tid``; return the cycle if any."""
        path: list[WaitEdge] = []
        seen: set[int] = set()
        tid = start_tid
        while True:
            edge = self._pending.get(tid)
            if edge is None:
                return None
            if tid in seen:
                # trim the path to the actual cycle
                for i, e in enumerate(path):
                    if e.waiter == tid:
                        return path[i:]
                return path
            seen.add(tid)
            path.append(edge)
            tid = edge.owner
