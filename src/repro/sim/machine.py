"""The multithreaded IR interpreter.

``Machine`` executes a finalized :class:`repro.ir.Module` under a
scheduling policy, producing an :class:`ExecutionResult`.  It plays the
role of the paper's client hardware: programs run to completion, crash
(fail-stop memory errors / assertion failures), deadlock (wait-for-graph
cycle), or hang (global stall without a cycle).

Extension points:

* ``trace_driver`` — receives control-flow and timing callbacks; the
  PT-like driver in :mod:`repro.pt.driver` implements this interface to
  build per-thread ring buffers and charge tracing overhead.
* ``instrumentation`` — a per-instruction hook charged before execution;
  the Gist baseline implements its monitoring (and its contention
  overhead model) here.
* ``event_log`` — ground-truth timestamping of watched target
  instructions (the §3.2 study's clock_gettime instrumentation).
* ``breakpoints`` — uid-keyed callbacks, used by the runtime client to
  snapshot traces at a previous failure location (step 8 in Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.errors import SimulationError, StepLimitExceeded
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Assert,
    BarrierInit,
    BarrierWait,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    CondInit,
    CondNotify,
    CondWait,
    Delay,
    FieldAddr,
    Free,
    IndexAddr,
    Instruction,
    Join,
    Load,
    Lock,
    LockInit,
    Malloc,
    Ret,
    RwInit,
    RwRdLock,
    RwUnlock,
    RwWrLock,
    SemInit,
    SemPost,
    SemWait,
    Spawn,
    Store,
    Unlock,
)
from repro.ir.module import Module
from repro.ir.types import ArrayType
from repro.ir.values import (
    Argument,
    Constant,
    FunctionRef,
    GlobalVariable,
    NullPointer,
    Value,
)
from repro.sim.clock import CostModel, VirtualClock
from repro.sim.events import EventLog, TargetEvent
from repro.sim.failures import (
    CrashReport,
    DeadlockEntry,
    DeadlockReport,
    ExecutionResult,
    FailureReport,
    ThreadStats,
)
from repro.sim.memory import GuestFault, Memory, MemoryObject
from repro.sim.scheduler import RandomScheduler, Scheduler


class TraceDriver(Protocol):
    """What the machine needs from a control-flow tracing backend.

    Every hook may return extra nanoseconds to charge the traced thread
    (how the PT driver models its packet-write overhead).  ``uid``
    payloads are instruction uids — the IR's equivalent of the
    instruction pointers a real PT TIP/FUP packet carries.
    """

    def on_thread_start(self, tid: int, start_uid: int, time: int) -> int: ...

    def on_cond_branch(self, tid: int, taken: bool, target_uid: int, time: int) -> int: ...

    def on_indirect_call(self, tid: int, target_uid: int, time: int) -> int: ...

    def on_call(self, tid: int, callee_uid: int, time: int) -> int: ...

    def on_ret(self, tid: int, resume_uid: int | None, time: int) -> int: ...

    def on_br(self, tid: int, target_uid: int, time: int) -> int: ...

    def on_work(
        self, tid: int, instr_uid: int, resume_uid: int, start: int, duration: int
    ) -> int: ...

    def on_block(self, tid: int, instr_uid: int, time: int) -> int: ...

    def on_wake(self, tid: int, resume_uid: int, time: int) -> int: ...

    def on_thread_end(self, tid: int, time: int) -> None: ...


class Instrumentation(Protocol):
    """A per-instruction software hook (how Gist-style tools monitor)."""

    def before_instruction(
        self, machine: "Machine", tid: int, instr: Instruction
    ) -> int:
        """Return extra ns charged to the clock for this instruction."""
        ...


@dataclass
class Frame:
    function: Function
    block: BasicBlock
    index: int = 0
    values: dict[Value, Any] = field(default_factory=dict)
    allocas: dict[Alloca, MemoryObject] = field(default_factory=dict)
    call_site: Call | None = None  # instruction in the caller to resume


RUNNABLE = "runnable"
SLEEPING = "sleeping"
BLOCKED_LOCK = "blocked-lock"
BLOCKED_JOIN = "blocked-join"
BLOCKED_COND = "blocked-cond"
BLOCKED_RW = "blocked-rw"
BLOCKED_SEMA = "blocked-sema"
BLOCKED_BARRIER = "blocked-barrier"
DONE = "done"
CRASHED = "crashed"

# states whose waits participate in the wait-for graph (known owners);
# cond/sema/barrier waits have no owner and can only hang
_DEADLOCKABLE_STATES = (BLOCKED_LOCK, BLOCKED_RW)


@dataclass
class SimThread:
    tid: int
    root: str = ""  # entry function name; survives frame pops at exit
    frames: list[Frame] = field(default_factory=list)
    state: str = RUNNABLE
    wake_time: int = 0
    join_target: int | None = None
    pending_lock: int | None = None  # address being acquired
    pending_lock_instr: int = 0
    return_value: Any = None

    @property
    def alive(self) -> bool:
        return self.state not in (DONE, CRASHED)

    @property
    def frame(self) -> Frame:
        return self.frames[-1]


class Machine:
    def __init__(
        self,
        module: Module,
        scheduler: Scheduler | None = None,
        cost_model: CostModel | None = None,
        trace_driver: TraceDriver | None = None,
        instrumentation: Instrumentation | None = None,
        watch_uids: set[int] | None = None,
        max_steps: int = 20_000_000,
    ):
        if not module.finalized:
            raise SimulationError("module must be finalized before execution")
        self.module = module
        self.scheduler = scheduler or RandomScheduler(seed=0)
        self.costs = cost_model or CostModel()
        self.driver = trace_driver
        self.instrumentation = instrumentation
        self.event_log = EventLog(watch_uids or ())
        self.max_steps = max_steps
        self.clock = VirtualClock()
        self.memory = Memory()
        self.threads: dict[int, SimThread] = {}
        self.locks: "LockTableShim" = LockTableShim()
        self.breakpoints: dict[int, Callable[["Machine", SimThread, Instruction], None]] = {}
        self._global_addr: dict[str, int] = {}
        self._next_tid = 1
        self._failure: FailureReport | None = None
        self._outcome: str | None = None
        self._steps = 0
        self.stats: dict[int, ThreadStats] = {}
        self._init_globals()

    # -- setup ------------------------------------------------------------

    def _init_globals(self) -> None:
        for g in self.module.globals.values():
            obj = self.memory.allocate(
                g.value_type.size(), "global", g.uid, g.value_type, label=g.name
            )
            self._global_addr[g.name] = obj.base
            if g.initializer is not None:
                init = g.initializer
                if isinstance(init, Constant):
                    self.memory.write_word(obj.base, init.value)
                elif isinstance(init, NullPointer):
                    self.memory.write_word(obj.base, 0)
                else:
                    raise SimulationError(
                        f"unsupported global initializer for @{g.name}"
                    )

    def global_address(self, name: str) -> int:
        return self._global_addr[name]

    def thread_position(self, thread: SimThread) -> int:
        """The thread's current/next instruction uid (0 once exited)."""
        if not thread.frames:
            return 0
        frame = thread.frame
        if frame.index < len(frame.block.instructions):
            return frame.block.instructions[frame.index].uid
        return 0

    def thread_positions(self) -> dict[int, int]:
        """Each thread's current/next instruction uid (0 for exited threads).

        For a crashed thread this is the failing instruction; for a
        thread blocked on a lock it is the blocked acquisition.  The PT
        driver stores these as the FUP stop markers of a trace snapshot.
        """
        return {
            t.tid: self.thread_position(t) for t in self.threads.values()
        }

    # -- public API ----------------------------------------------------------

    def run(self, entry: str = "main", args: tuple = ()) -> ExecutionResult:
        fn = self.module.function(entry)
        main = self._spawn_thread(fn, list(args))
        if self.driver is not None:
            self.driver.on_thread_start(
                main.tid, fn.entry.instructions[0].uid, self.clock.now
            )
        try:
            self._loop()
        except StepLimitExceeded:
            self._outcome = "step-limit"
        outcome = self._outcome or "success"
        snapshots: dict[int, bytes] = {}
        metadata: dict[str, Any] = {}
        if self.driver is not None:
            snap = getattr(self.driver, "snapshots", None)
            if snap:
                snapshots = dict(snap)
            meta = getattr(self.driver, "metadata", None)
            if meta:
                metadata = dict(meta)
        return ExecutionResult(
            outcome=outcome,
            duration=self.clock.now,
            failure=self._failure,
            event_log=self.event_log,
            trace_snapshots=snapshots,
            trace_metadata=metadata,
            thread_stats=self.stats,
            instructions_executed=self._steps,
            exit_value=self.threads[main.tid].return_value,
        )

    # -- main loop --------------------------------------------------------------

    def _loop(self) -> None:
        # a directing scheduler (repro.validate) may veto runnable
        # threads each round; plain schedulers have no such hook and
        # take the exact legacy path
        gate = getattr(self.scheduler, "filter_runnable", None)
        while self._outcome is None:
            alive = [t for t in self.threads.values() if t.alive]
            if not alive:
                return  # clean exit
            runnable = [t.tid for t in alive if t.state == RUNNABLE]
            if not runnable:
                sleepers = [t for t in alive if t.state == SLEEPING]
                if sleepers:
                    self.clock.advance_to(min(t.wake_time for t in sleepers))
                    self._wake_sleepers()
                    continue
                self._report_stall(alive)
                return
            self._wake_sleepers()
            if gate is not None:
                allowed = gate(self, runnable)
                if not allowed:
                    sleepers = [t for t in alive if t.state == SLEEPING]
                    if sleepers:
                        # every runnable thread is held at a gate; let
                        # time pass so the thread the gate waits for
                        # can wake and make progress
                        self.clock.advance_to(
                            min(t.wake_time for t in sleepers)
                        )
                        self._wake_sleepers()
                        continue
                    # held threads, no sleepers: the directive cannot be
                    # satisfied — execute one instruction of the
                    # scheduler's choice instead of stalling forever
                    tid = self.scheduler.force_release(self, runnable)
                    self._step(self.threads[tid])
                    continue
                runnable = allowed
            tid, quantum = self.scheduler.pick(runnable)
            thread = self.threads[tid]
            # a directing scheduler also truncates quanta at gated uids:
            # the round-level veto alone would let a long quantum blow
            # straight through a gate reached mid-quantum
            barriers = (
                self.scheduler.barrier_uids(self) if gate is not None else None
            )
            for ran in range(quantum):
                if self._outcome is not None or thread.state != RUNNABLE:
                    break
                if (
                    ran
                    and barriers
                    and self.thread_position(thread) in barriers
                ):
                    break
                self._step(thread)

    def _wake_sleepers(self) -> None:
        now = self.clock.now
        for t in self.threads.values():
            if t.state == SLEEPING and t.wake_time <= now:
                t.state = RUNNABLE

    def _report_stall(self, alive: list[SimThread]) -> None:
        """All alive threads blocked and nothing will wake them."""
        for t in alive:
            if t.state in _DEADLOCKABLE_STATES:
                cycle = self._find_sync_cycle(t.tid)
                if cycle:
                    self._deadlock(cycle)
                    return
        # No lock cycle: a hang.  Anchor it at a thread stuck on a sync
        # primitive (a lost condwait, a starved semwait, an unfilled
        # barrier) rather than at e.g. main blocked in join — the sync
        # instruction has a pointer operand the pipeline can diagnose.
        anchor = next((t for t in alive if t.pending_lock_instr), alive[0])
        uid = anchor.pending_lock_instr
        if uid == 0 and anchor.frames:
            frame = anchor.frame
            if frame.index < len(frame.block.instructions):
                uid = frame.block.instructions[frame.index].uid
        self._failure = FailureReport(
            kind="hang",
            failing_uid=uid,
            failing_tid=anchor.tid,
            time=self.clock.now,
            detail="global stall without a lock cycle",
        )
        self._outcome = "hang"

    def _find_sync_cycle(self, start_tid: int):
        """Cycle search over the merged mutex + rwlock wait-for graph."""
        from repro.sim.sync import find_wait_cycle

        pending = self.locks.table.pending_edges()
        pending.update(self.locks.rw.pending_edges())
        return find_wait_cycle(pending, start_tid)

    # -- thread management ---------------------------------------------------

    def _spawn_thread(self, fn: Function, args: list[Any]) -> SimThread:
        tid = self._next_tid
        self._next_tid += 1
        thread = SimThread(tid, root=fn.name)
        self.threads[tid] = thread
        self.stats[tid] = ThreadStats(tid)
        self._push_frame(thread, fn, args, call_site=None)
        return thread

    def _push_frame(
        self, thread: SimThread, fn: Function, args: list[Any], call_site: Call | None
    ) -> None:
        frame = Frame(fn, fn.entry, 0, call_site=call_site)
        if len(args) != len(fn.params):
            raise SimulationError(
                f"calling {fn.name} with {len(args)} args, expected {len(fn.params)}"
            )
        for param, arg in zip(fn.params, args):
            frame.values[param] = arg
        for alloca in fn.allocas():
            size = alloca.allocated_type.size()
            obj = self.memory.allocate(
                size, "stack", alloca.uid, alloca.allocated_type, label=alloca.name
            )
            frame.allocas[alloca] = obj
            frame.values[alloca] = obj.base
        thread.frames.append(frame)

    def _pop_frame(self, thread: SimThread) -> Frame:
        frame = thread.frames.pop()
        for obj in frame.allocas.values():
            self.memory.release_stack(obj)
        return frame

    # -- single step -----------------------------------------------------------

    def _step(self, thread: SimThread) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise StepLimitExceeded(
                f"exceeded {self.max_steps} steps at t={self.clock.now}ns"
            )
        frame = thread.frame
        if frame.index >= len(frame.block.instructions):
            raise SimulationError(f"fell off block {frame.block.label()}")
        instr = frame.block.instructions[frame.index]
        if instr.uid in self.breakpoints:
            self.breakpoints[instr.uid](self, thread, instr)
        if self.instrumentation is not None:
            extra = self.instrumentation.before_instruction(self, thread.tid, instr)
            if extra:
                self.clock.advance(extra)
        self.clock.advance(self.costs.cost(instr.opcode))
        stats = self.stats[thread.tid]
        stats.instructions += 1
        try:
            self._dispatch(thread, frame, instr)
        except GuestFault as fault:
            self._crash(thread, instr, fault)

    def _dispatch(self, thread: SimThread, frame: Frame, instr: Instruction) -> None:
        stats = self.stats[thread.tid]
        advance = True
        if isinstance(instr, Alloca):
            pass  # slot was materialized at frame push; value already bound
        elif isinstance(instr, Malloc):
            count = 1
            if instr.count is not None:
                count = int(self._value(frame, instr.count))
                if count < 0:
                    raise GuestFault("oob", 0, f"malloc with negative count {count}")
            base_ty = instr.allocated_type
            size = base_ty.size() * count
            ty = ArrayType(base_ty, count) if count != 1 else base_ty
            obj = self.memory.allocate(size, "heap", instr.uid, ty, label=instr.name)
            frame.values[instr] = obj.base
        elif isinstance(instr, Free):
            addr = self._pointer(frame, instr.pointer)
            if addr == 0:
                raise GuestFault("null", 0, "free(NULL)")
            self.memory.free(addr)
            stats.memory_accesses += 1
            self._record_event(instr, thread, "write", addr)
        elif isinstance(instr, Load):
            addr = self._pointer(frame, instr.pointer)
            value = self.memory.read_word(addr)
            frame.values[instr] = value
            stats.memory_accesses += 1
            self._record_event(instr, thread, "read", addr)
        elif isinstance(instr, Store):
            addr = self._pointer(frame, instr.pointer)
            value = self._value(frame, instr.value)
            self.memory.write_word(addr, value)
            stats.memory_accesses += 1
            self._record_event(instr, thread, "write", addr)
        elif isinstance(instr, FieldAddr):
            # Address arithmetic never faults (like LLVM GEP); the
            # dereference is the failing instruction, which is what the
            # diagnosis pipeline must anchor on.
            base = self._pointer(frame, instr.pointer)
            frame.values[instr] = base + instr.offset
        elif isinstance(instr, IndexAddr):
            base = self._pointer(frame, instr.pointer)
            idx = int(self._value(frame, instr.index))
            frame.values[instr] = base + idx * instr.element_type.size()
        elif isinstance(instr, BinOp):
            frame.values[instr] = self._binop(frame, instr)
        elif isinstance(instr, Cmp):
            frame.values[instr] = self._cmp(frame, instr)
        elif isinstance(instr, Cast):
            frame.values[instr] = self._value(frame, instr.value)
        elif isinstance(instr, Br):
            self._transfer(thread, frame, instr.target)
            if self.driver is not None:
                extra = self.driver.on_br(
                    thread.tid, instr.target.instructions[0].uid, self.clock.now
                )
                if extra:
                    self.clock.advance(extra)
            advance = False
            stats.branches += 1
        elif isinstance(instr, CondBr):
            cond = self._value(frame, instr.cond)
            taken = bool(cond)
            target = instr.then_block if taken else instr.else_block
            self._transfer(thread, frame, target)
            if self.driver is not None:
                extra = self.driver.on_cond_branch(
                    thread.tid, taken, target.instructions[0].uid, self.clock.now
                )
                if extra:
                    self.clock.advance(extra)
            advance = False
            stats.branches += 1
        elif isinstance(instr, Ret):
            self._do_ret(thread, frame, instr)
            advance = False
        elif isinstance(instr, Call):
            self._do_call(thread, frame, instr)
            advance = False
        elif isinstance(instr, LockInit):
            addr = self._pointer(frame, instr.pointer)
            self.memory.write_word(addr, 0)  # validates the address
        elif isinstance(instr, Lock):
            advance = self._do_lock(thread, frame, instr)
            stats.lock_ops += 1
        elif isinstance(instr, Unlock):
            self._do_unlock(thread, frame, instr)
            stats.lock_ops += 1
        elif isinstance(instr, (CondInit, RwInit)):
            addr = self._pointer(frame, instr.pointer)
            self.memory.write_word(addr, 0)  # validates the address
        elif isinstance(instr, CondWait):
            advance = self._do_cond_wait(thread, frame, instr)
            stats.lock_ops += 1
        elif isinstance(instr, CondNotify):
            self._do_cond_notify(thread, frame, instr)
            stats.lock_ops += 1
        elif isinstance(instr, (RwRdLock, RwWrLock)):
            advance = self._do_rw_lock(thread, frame, instr)
            stats.lock_ops += 1
        elif isinstance(instr, RwUnlock):
            self._do_rw_unlock(thread, frame, instr)
            stats.lock_ops += 1
        elif isinstance(instr, SemInit):
            addr = self._pointer(frame, instr.pointer)
            count = int(self._value(frame, instr.count))
            if count < 0:
                raise GuestFault("oob", 0, f"seminit with negative count {count}")
            self.memory.write_word(addr, count)  # validates the address
            self.locks.sems.init(addr, count)
        elif isinstance(instr, SemWait):
            advance = self._do_sem_wait(thread, frame, instr)
            stats.lock_ops += 1
        elif isinstance(instr, SemPost):
            self._do_sem_post(thread, frame, instr)
            stats.lock_ops += 1
        elif isinstance(instr, BarrierInit):
            addr = self._pointer(frame, instr.pointer)
            parties = int(self._value(frame, instr.parties))
            if parties < 1:
                raise GuestFault(
                    "oob", 0, f"barrierinit with parties {parties} < 1"
                )
            self.memory.write_word(addr, parties)  # validates the address
            self.locks.barriers.init(addr, parties)
        elif isinstance(instr, BarrierWait):
            advance = self._do_barrier_wait(thread, frame, instr)
            stats.lock_ops += 1
        elif isinstance(instr, Spawn):
            self._do_spawn(thread, frame, instr)
        elif isinstance(instr, Join):
            advance = self._do_join(thread, frame, instr)
        elif isinstance(instr, Delay):
            duration = int(self._value(frame, instr.duration))
            if duration < 0:
                raise GuestFault("oob", 0, f"negative delay {duration}")
            start = self.clock.now
            extra = 0
            if self.driver is not None:
                resume_uid = frame.block.instructions[instr.block_index + 1].uid
                extra = self.driver.on_work(
                    thread.tid, instr.uid, resume_uid, start, duration
                )
            thread.wake_time = start + duration + extra
            thread.state = SLEEPING
            frame.index += 1
            advance = False
        elif isinstance(instr, Assert):
            cond = self._value(frame, instr.cond)
            if not cond:
                raise GuestFault("assert", 0, instr.message)
        else:
            raise SimulationError(f"cannot execute {instr.opcode}")
        if advance:
            frame.index += 1

    # -- control transfers ----------------------------------------------------

    def _transfer(self, thread: SimThread, frame: Frame, target: BasicBlock) -> None:
        frame.block = target
        frame.index = 0

    def _do_call(self, thread: SimThread, frame: Frame, instr: Call) -> None:
        callee = self._resolve_callee(frame, instr.callee)
        args = [self._value(frame, a) for a in instr.args]
        if self.driver is not None:
            if instr.is_direct:
                extra = self.driver.on_call(
                    thread.tid, callee.entry.instructions[0].uid, self.clock.now
                )
            else:
                extra = self.driver.on_indirect_call(
                    thread.tid, callee.entry.instructions[0].uid, self.clock.now
                )
            if extra:
                self.clock.advance(extra)
        self._push_frame(thread, callee, args, call_site=instr)

    def _do_ret(self, thread: SimThread, frame: Frame, instr: Ret) -> None:
        value = self._value(frame, instr.value) if instr.value is not None else None
        self._pop_frame(thread)
        if not thread.frames:
            thread.state = DONE
            thread.return_value = value
            if self.driver is not None:
                self.driver.on_ret(thread.tid, None, self.clock.now)
                self.driver.on_thread_end(thread.tid, self.clock.now)
            self._wake_joiners(thread.tid)
            return
        caller = thread.frame
        call_site = caller.block.instructions[caller.index]
        if value is not None:
            caller.values[call_site] = value
        caller.index += 1
        if self.driver is not None:
            resume_uid = caller.block.instructions[caller.index].uid
            extra = self.driver.on_ret(thread.tid, resume_uid, self.clock.now)
            if extra:
                self.clock.advance(extra)

    def _resolve_callee(self, frame: Frame, callee_value: Value) -> Function:
        if isinstance(callee_value, FunctionRef):
            return callee_value.function
        runtime = self._value(frame, callee_value)
        if isinstance(runtime, FunctionRef):
            return runtime.function
        raise GuestFault(
            "unmapped", runtime if isinstance(runtime, int) else 0,
            "indirect call through a non-function value",
        )

    def _do_spawn(self, thread: SimThread, frame: Frame, instr: Spawn) -> None:
        callee = self._resolve_callee(frame, instr.callee)
        args = [self._value(frame, a) for a in instr.args]
        child = self._spawn_thread(callee, args)
        frame.values[instr] = child.tid
        if self.driver is not None:
            self.driver.on_thread_start(
                child.tid, callee.entry.instructions[0].uid, self.clock.now
            )
        self._record_event(instr, thread, "other", None)

    def _do_join(self, thread: SimThread, frame: Frame, instr: Join) -> bool:
        target_tid = int(self._value(frame, instr.handle))
        target = self.threads.get(target_tid)
        if target is None:
            raise GuestFault("unmapped", target_tid, "join on unknown thread")
        if target.state in (DONE, CRASHED):
            return True
        thread.state = BLOCKED_JOIN
        thread.join_target = target_tid
        if self.driver is not None:
            self.driver.on_block(thread.tid, instr.uid, self.clock.now)
        return False

    def _wake_joiners(self, finished_tid: int) -> None:
        for t in self.threads.values():
            if t.state == BLOCKED_JOIN and t.join_target == finished_tid:
                t.state = RUNNABLE
                t.join_target = None
                t.frame.index += 1  # move past the join
                if self.driver is not None:
                    frame = t.frame
                    resume = frame.block.instructions[frame.index].uid
                    self.driver.on_wake(t.tid, resume, self.clock.now)

    # -- locks -------------------------------------------------------------------

    def _do_lock(self, thread: SimThread, frame: Frame, instr: Lock) -> bool:
        addr = self._pointer(frame, instr.pointer)
        self.memory.check_access(addr)
        self._record_event(instr, thread, "lock", addr)
        table = self.locks.table
        if table.try_acquire(addr, thread.tid):
            return True
        holder = table.holder(addr)
        if holder == thread.tid:
            # self-deadlock on a non-recursive mutex
            entry = DeadlockEntry(
                thread.tid, addr, tuple(table.held_by(thread.tid)), instr.uid,
                self.clock.now,
            )
            self._failure = DeadlockReport(
                kind="deadlock",
                failing_uid=instr.uid,
                failing_tid=thread.tid,
                time=self.clock.now,
                detail="self-deadlock (non-recursive mutex)",
                cycle=(entry,),
            )
            self._outcome = "deadlock"
            return False
        table.add_waiter(addr, thread.tid, instr.uid, self.clock.now)
        thread.state = BLOCKED_LOCK
        thread.pending_lock = addr
        thread.pending_lock_instr = instr.uid
        if self.driver is not None:
            # A blocked thread context-switches out; the trace carries a
            # position marker + exact timestamp (like PT's mode packets).
            self.driver.on_block(thread.tid, instr.uid, self.clock.now)
        cycle = table.find_deadlock_cycle(thread.tid)
        if cycle:
            self._deadlock(cycle)
        return False

    def _do_unlock(self, thread: SimThread, frame: Frame, instr: Unlock) -> None:
        addr = self._pointer(frame, instr.pointer)
        self.memory.check_access(addr)
        self._record_event(instr, thread, "unlock", addr)
        next_tid = self.locks.table.release(addr, thread.tid)
        if next_tid is not None:
            waiter = self.threads[next_tid]
            waiter.state = RUNNABLE
            waiter.pending_lock = None
            waiter.pending_lock_instr = 0
            waiter.frame.index += 1  # move past the blocked lock instruction
            if self.driver is not None:
                wframe = waiter.frame
                resume = wframe.block.instructions[wframe.index].uid
                self.driver.on_wake(waiter.tid, resume, self.clock.now)

    # -- richer sync primitives (condvar / rwlock / semaphore / barrier) ----

    def _block_on_sync(
        self, thread: SimThread, state: str, addr: int, instr: Instruction
    ) -> None:
        """Common bookkeeping when a sync op cannot complete yet."""
        thread.state = state
        thread.pending_lock = addr
        thread.pending_lock_instr = instr.uid
        if self.driver is not None:
            self.driver.on_block(thread.tid, instr.uid, self.clock.now)

    def _wake_from_sync(self, tid: int) -> None:
        """Wake a thread blocked mid-instruction on a sync primitive:
        the op completed on its behalf, so resume *past* it."""
        waiter = self.threads[tid]
        waiter.state = RUNNABLE
        waiter.pending_lock = None
        waiter.pending_lock_instr = 0
        waiter.frame.index += 1  # move past the blocked instruction
        if self.driver is not None:
            wframe = waiter.frame
            resume = wframe.block.instructions[wframe.index].uid
            self.driver.on_wake(waiter.tid, resume, self.clock.now)

    def _do_cond_wait(self, thread: SimThread, frame: Frame, instr: CondWait) -> bool:
        addr = self._pointer(frame, instr.pointer)
        self.memory.check_access(addr)
        self._record_event(instr, thread, "read", addr)
        self.locks.conds.wait(addr, thread.tid)
        self._block_on_sync(thread, BLOCKED_COND, addr, instr)
        return False

    def _do_cond_notify(
        self, thread: SimThread, frame: Frame, instr: CondNotify
    ) -> None:
        addr = self._pointer(frame, instr.pointer)
        self.memory.check_access(addr)
        self._record_event(instr, thread, "write", addr)
        tid = self.locks.conds.notify(addr)
        if tid is not None:
            self._wake_from_sync(tid)
        # else: the signal found no waiter and is lost — the semantics
        # behind every lost-wakeup bug in the corpus

    def _do_rw_lock(self, thread: SimThread, frame: Frame, instr: Instruction) -> bool:
        addr = self._pointer(frame, instr.pointer)
        self.memory.check_access(addr)
        self._record_event(instr, thread, "lock", addr)
        rw = self.locks.rw
        mode = "wr" if isinstance(instr, RwWrLock) else "rd"
        acquired = (
            rw.try_wrlock(addr, thread.tid)
            if mode == "wr"
            else rw.try_rdlock(addr, thread.tid)
        )
        if acquired:
            return True
        rw.add_waiter(addr, thread.tid, mode, instr.uid, self.clock.now)
        self._block_on_sync(thread, BLOCKED_RW, addr, instr)
        cycle = self._find_sync_cycle(thread.tid)
        if cycle:
            self._deadlock(cycle)
        return False

    def _do_rw_unlock(self, thread: SimThread, frame: Frame, instr: RwUnlock) -> None:
        addr = self._pointer(frame, instr.pointer)
        self.memory.check_access(addr)
        self._record_event(instr, thread, "unlock", addr)
        for tid in self.locks.rw.release(addr, thread.tid):
            self._wake_from_sync(tid)

    def _do_sem_wait(self, thread: SimThread, frame: Frame, instr: SemWait) -> bool:
        addr = self._pointer(frame, instr.pointer)
        self.memory.check_access(addr)
        self._record_event(instr, thread, "read", addr)
        sems = self.locks.sems
        if sems.try_wait(addr):
            return True
        sems.add_waiter(addr, thread.tid)
        self._block_on_sync(thread, BLOCKED_SEMA, addr, instr)
        return False

    def _do_sem_post(self, thread: SimThread, frame: Frame, instr: SemPost) -> None:
        addr = self._pointer(frame, instr.pointer)
        self.memory.check_access(addr)
        self._record_event(instr, thread, "write", addr)
        tid = self.locks.sems.post(addr)
        if tid is not None:
            self._wake_from_sync(tid)

    def _do_barrier_wait(
        self, thread: SimThread, frame: Frame, instr: BarrierWait
    ) -> bool:
        addr = self._pointer(frame, instr.pointer)
        self.memory.check_access(addr)
        self._record_event(instr, thread, "read", addr)
        woken = self.locks.barriers.arrive(addr, thread.tid)
        if woken is None:
            self._block_on_sync(thread, BLOCKED_BARRIER, addr, instr)
            return False
        for tid in woken:
            self._wake_from_sync(tid)
        return True  # the tripping arrival continues immediately

    def _deadlock(self, cycle: list) -> None:
        table = self.locks.table
        rw = self.locks.rw
        entries = tuple(
            DeadlockEntry(
                e.waiter,
                e.lock_address,
                tuple(table.held_by(e.waiter) + rw.held_by(e.waiter)),
                e.instr_uid,
                e.since,
            )
            for e in cycle
        )
        last = cycle[-1]
        self._failure = DeadlockReport(
            kind="deadlock",
            failing_uid=last.instr_uid,
            failing_tid=last.waiter,
            time=self.clock.now,
            detail=f"{len(entries)}-thread lock cycle",
            cycle=entries,
        )
        self._outcome = "deadlock"

    # -- faults --------------------------------------------------------------------

    def _crash(self, thread: SimThread, instr: Instruction, fault: GuestFault) -> None:
        operand_value: int | None = None
        pointer = instr.pointer_operand()
        if pointer is not None:
            try:
                runtime = self._value(thread.frame, pointer)
                if isinstance(runtime, int):
                    operand_value = runtime
            except Exception:
                operand_value = None
        kind = "assert" if fault.kind == "assert" else "crash"
        self._failure = CrashReport(
            kind=kind,
            failing_uid=instr.uid,
            failing_tid=thread.tid,
            time=self.clock.now,
            detail=str(fault),
            fault_kind=fault.kind,
            fault_address=fault.address,
            operand_value=operand_value,
        )
        thread.state = CRASHED
        self._outcome = kind

    # -- value evaluation --------------------------------------------------------

    def _value(self, frame: Frame, v: Value) -> Any:
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, NullPointer):
            return 0
        if isinstance(v, GlobalVariable):
            return self._global_addr[v.name]
        if isinstance(v, FunctionRef):
            return v
        if isinstance(v, (Argument, Instruction)):
            try:
                return frame.values[v]
            except KeyError:
                raise SimulationError(
                    f"read of undefined value {v.short()} in {frame.function.name}"
                ) from None
        raise SimulationError(f"cannot evaluate {v!r}")

    def _pointer(self, frame: Frame, v: Value) -> int:
        value = self._value(frame, v)
        if not isinstance(value, int):
            raise GuestFault("unmapped", 0, f"non-address pointer value {value!r}")
        return value

    def _binop(self, frame: Frame, instr: BinOp) -> Any:
        a = self._value(frame, instr.lhs)
        b = self._value(frame, instr.rhs)
        op = instr.op
        if op in ("div", "mod") and b == 0:
            raise GuestFault("arith", 0, "division by zero")
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "div":
            return int(a / b) if isinstance(a, int) else a / b
        if op == "mod":
            return a - b * int(a / b) if isinstance(a, int) else a % b
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return a << b
        if op == "shr":
            return a >> b
        raise SimulationError(f"unknown binop {op}")

    def _cmp(self, frame: Frame, instr: Cmp) -> int:
        a = self._value(frame, instr.lhs)
        b = self._value(frame, instr.rhs)
        op = instr.op
        result = {
            "eq": a == b,
            "ne": a != b,
            "lt": a < b,
            "le": a <= b,
            "gt": a > b,
            "ge": a >= b,
        }[op]
        return 1 if result else 0

    # -- events ---------------------------------------------------------------------

    def _record_event(
        self, instr: Instruction, thread: SimThread, kind: str, address: int | None
    ) -> None:
        if instr.uid in self.event_log.watched:
            self.event_log.record(
                TargetEvent(instr.uid, thread.tid, self.clock.now, kind, address)
            )


class LockTableShim:
    """Late-bound sync tables so sim modules stay import-cycle free.

    ``table`` (mutexes) keeps its historical name; the richer primitives
    added with the corpus expansion hang off the same shim.
    """

    def __init__(self):
        from repro.sim.sync import (
            BarrierTable,
            CondTable,
            LockTable,
            RwLockTable,
            SemTable,
        )

        self.table = LockTable()
        self.conds = CondTable()
        self.rw = RwLockTable()
        self.sems = SemTable()
        self.barriers = BarrierTable()
