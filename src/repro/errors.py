"""Exception hierarchy shared across the repro packages.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures without also swallowing Python
built-ins.  Subsystems define narrower classes here (rather than in their
own modules) to avoid import cycles between the IR, simulator, and
analysis layers, all of which need to signal errors about each other's
artifacts.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed IR: bad types, unknown operands, invalid structure."""


class IRTypeError(IRError):
    """An operation was applied to values of the wrong IR type."""


class IRParseError(IRError):
    """The textual IR could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class VerifierError(IRError):
    """Module verification failed (dangling blocks, type mismatches...)."""


class SimulationError(ReproError):
    """The simulator itself hit an unrecoverable condition.

    Note: *guest* failures (crashes, deadlocks) are not exceptions; they
    are reported through :class:`repro.sim.failures.FailureReport` so the
    diagnosis pipeline can consume them.  SimulationError means the
    simulation harness was misused (e.g. running a module that does not
    verify, or exceeding the configured step budget).
    """


class StepLimitExceeded(SimulationError):
    """The execution did not finish within the configured step budget."""


class TraceError(ReproError):
    """A control-flow trace could not be encoded or decoded."""


class TraceDecodeError(TraceError):
    """The PT-like byte stream could not be decoded back to a path."""


class AnalysisError(ReproError):
    """A static/hybrid analysis was run on inconsistent inputs."""


class DiagnosisError(ReproError):
    """The Lazy Diagnosis pipeline could not produce a result."""


class CorpusError(ReproError):
    """A corpus bug specification is unknown or inconsistent."""


class ProtocolError(ReproError):
    """Client/server runtime protocol violation."""


class FleetError(ReproError):
    """The networked fleet service hit an unrecoverable condition."""


class WireError(FleetError):
    """A wire frame could not be encoded or decoded (bad magic/version,
    truncated payload, checksum mismatch, unknown message type)."""
