"""``python -m repro.check`` — the self-check CLI.

Examples::

    python -m repro.check --cases 300 --seed 5
    python -m repro.check --stages trace,stats --cases 50
    python -m repro.check --stages sim,validate \\
        --primitives condvar,rwlock,sema,barrier
    python -m repro.check --replay benchmarks/out/check-failures/trace-seed123.json
    python -m repro.check --cases 100 --metrics-out check-metrics.txt

Exit status: 0 when every case passes (or the replayed case no longer
fails), 1 when any invariant was violated (shrunk reproducers are
written to the output directory), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
import traceback

from repro.check.runner import DEFAULT_OUT_DIR, replay, run_check
from repro.check.stages import stage_names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description=(
            "Differential/invariant fuzzing of the Lazy Diagnosis "
            "pipeline: randomized programs, traces, and evidence checked "
            "against stage invariants and cross-implementation equivalence."
        ),
    )
    parser.add_argument(
        "--cases", type=int, default=200, help="cases to run (default 200)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master seed (default 0)"
    )
    parser.add_argument(
        "--stages",
        help=f"comma-separated stage filter; available: "
             f"{','.join(stage_names())}",
    )
    parser.add_argument(
        "--primitives",
        help="comma-separated primitive filter (condvar,rwlock,sema,"
             "barrier,mutex): restricts the sim stage's fuzzed tables "
             "and the bug-generating stages' template classes",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT_DIR,
        help=f"reproducer directory (default {DEFAULT_OUT_DIR})",
    )
    parser.add_argument(
        "--max-failures", type=int, default=5,
        help="stop after this many failures (default 5)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="write original failing cases without minimizing them",
    )
    parser.add_argument(
        "--metrics-out",
        help="write the run's check_* counters as Prometheus text",
    )
    parser.add_argument(
        "--replay", metavar="FILE",
        help="re-run one reproducer JSON instead of a fuzzing run",
    )
    parser.add_argument(
        "--list-stages", action="store_true", help="list stages and exit"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print each case as it runs",
    )
    args = parser.parse_args(argv)

    if args.list_stages:
        from repro.check.stages import STAGES

        for spec in STAGES.values():
            knobs = " ".join(
                f"{k}={v}" for k, v in sorted(spec.defaults.items())
            )
            print(f"{spec.name:10s} weight={spec.weight:<3d} {knobs}")
        return 0

    if args.replay:
        error = replay(args.replay)
        if error is None:
            print(f"PASS: {args.replay} no longer fails")
            return 0
        print(f"FAIL: {args.replay}")
        traceback.print_exception(type(error), error, error.__traceback__)
        return 1

    if args.cases < 1:
        parser.error("--cases must be >= 1")
    stages = None
    if args.stages:
        stages = [s.strip() for s in args.stages.split(",") if s.strip()]
        unknown = [s for s in stages if s not in stage_names()]
        if unknown:
            parser.error(
                f"unknown stage(s) {unknown}; available: {stage_names()}"
            )
    overrides = None
    if args.primitives:
        from repro.check.generator import primitives_mask

        names = [s.strip() for s in args.primitives.split(",") if s.strip()]
        try:
            overrides = {"primitives": primitives_mask(names)}
        except ValueError as exc:
            parser.error(str(exc))

    from repro.obs import Observability

    obs = Observability()
    progress = None
    if args.verbose:
        def progress(i: int, case) -> None:  # noqa: ANN001
            print(f"[{i + 1}/{args.cases}] {case.describe()}", flush=True)

    stats = run_check(
        cases=args.cases,
        seed=args.seed,
        stages=stages,
        out_dir=args.out,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
        obs=obs,
        progress=progress,
        overrides=overrides,
    )
    print(stats.render())
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(obs.registry.render())
        print(f"metrics written to {args.metrics_out}")
    return 0 if stats.ok else 1


if __name__ == "__main__":
    sys.exit(main())
