"""The checkable stage families: one per pipeline layer.

Each stage is a pure function of a :class:`~repro.check.cases.CheckCase`
— it regenerates its inputs from the case seed, runs the production
code, and raises :class:`~repro.check.invariants.InvariantViolation`
(or any exception) on a broken invariant.  ``STAGES`` is the registry
the runner, the shrinker, and the CLI share; ``defaults`` are the
generation knobs (all integers, so the shrinker can minimize them) and
``minimums`` the per-knob shrink floors.

Stage families:

======== ==================================================================
trace    ``process_snapshot`` / ``attach_anchor`` on synthetic decoded
         traces: thread registration, ``by_uid`` ordering, executed-set
         coverage, partial-order sanity
stats    ``score_patterns`` on randomized evidence: F1 recomputation,
         true-minimum ranks, failing-first example selection, the 10x cap
pointsto Andersen optimized ≡ naive ≡ (⊆ Steensgaard) on random
         constraint systems and on generated program modules
sim      the machine's sync-primitive tables (mutex, condvar, rwlock,
         semaphore, barrier) driven with random op sequences against
         independent reference models: FIFO wait queues, non-negative
         semaphore counts, monotone barrier generations, writer
         exclusion, FIFO grant with reader batching, wait-for cycle
         detection
jobs     ``DiagnosisJobQueue``: dedup, backpressure, result caching, and
         bounded bookkeeping after completion
collect  step-8 transport differential: serial ≡ thread-parallel ≡
         batched-through-the-wire-codec evidence, adaptive stopping
         invariant across transports, digest equality of the diagnoses
e2e      a full client/server diagnosis of a generated bug under the
         checkpoint observer, plus cache-on ≡ cache-off ≡ cache-warm and
         fleet-wire ≡ in-process digest equality, against ground truth
validate the reproduction loop: the ground-truth order of a generated
         bug must validate (forced order fails, inverse passes), and a
         diagnosis of the true pattern must never be refuted by its own
         directed replay
monitor  the always-on differential: a diagnosis the anomaly detector
         triggered from monitor-loop telemetry must digest identically
         to the on-demand diagnosis of the same failure, with a
         queryable, round-trip-stable evidence graph
======== ==================================================================

The ``sim`` stage and every bug-generating stage (``pointsto``,
``collect``, ``e2e``, ``validate``) take a ``primitives`` bitmask knob
(CLI ``--primitives condvar,rwlock,...``; see
:func:`repro.check.generator.primitives_mask`) that restricts which
primitive families are fuzzed and which template classes
:func:`~repro.check.generator.gen_bug` may draw.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.check import generator, invariants
from repro.check.cases import CheckCase
from repro.check.invariants import InvariantViolation
from repro.check.observer import InvariantObserver


class CaseSkipped(Exception):
    """The case is vacuous for this seed (e.g. no failing run found) —
    counted separately, never a failure."""


def _rng(case: CheckCase) -> random.Random:
    return random.Random(case.seed)


# -- trace: steps 2-3 --------------------------------------------------------


def run_trace(case: CheckCase) -> None:
    from repro.core.trace_processing import attach_anchor, process_snapshot

    rng = _rng(case)
    p = case.params
    traces = generator.gen_thread_traces(rng, p)
    with_anchor = rng.randrange(100) < 80
    anchor_uid = anchor_tid = anchor_time = None
    if with_anchor:
        anchor_uid, anchor_tid, anchor_time = generator.gen_anchor(
            rng, traces, p
        )
    pt = process_snapshot(
        "check", traces, failing=True,
        anchor_uid=anchor_uid, anchor_tid=anchor_tid, anchor_time=anchor_time,
    )
    invariants.check_processed_trace(pt, traces, rng=rng)
    if with_anchor and pt.anchor is not None:
        if pt.anchor.tid not in pt.threads:
            raise InvariantViolation(
                "anchor-thread-registered",
                f"anchor tid={pt.anchor.tid} missing from threads",
            )
    # attach a few more anchors the way operand recovery does (the
    # recovered chain loads), alternating decoded and synthesized
    for _ in range(p.get("attaches", 2)):
        uid, tid, t = generator.gen_anchor(rng, traces, p)
        if tid is None:
            tid = min(pt.threads) if pt.threads else 0
        prefer = rng.randrange(100) < 60
        decoded_before = [d for d in pt.instances(uid) if d.tid == tid]
        anchor = attach_anchor(pt, uid, tid, t, prefer_decoded=prefer)
        if prefer and decoded_before:
            # the documented pick: the LAST decoded instance in
            # (t_lo, seq) order — not merely any member of the bucket
            want = max(decoded_before, key=lambda d: (d.t_lo, d.seq))
            if anchor is not want:
                raise InvariantViolation(
                    "anchor-is-last-instance",
                    f"attach_anchor(uid={uid}, tid={tid}) returned "
                    f"(t_lo={anchor.t_lo}, seq={anchor.seq}), latest "
                    f"decoded is (t_lo={want.t_lo}, seq={want.seq})",
                )
        invariants.check_processed_trace(pt, traces, rng=rng)


# -- stats: step 7 -----------------------------------------------------------


def run_stats(case: CheckCase) -> None:
    from repro.core.statistics import (
        SUCCESS_TRACE_CAP_FACTOR,
        cap_successful,
        score_patterns,
    )

    rng = _rng(case)
    observations = generator.gen_observations(rng, case.params)
    capped = cap_successful(observations)
    failing = [o for o in capped if o.failing]
    ok = [o for o in capped if not o.failing]
    if len(ok) > SUCCESS_TRACE_CAP_FACTOR * max(1, len(failing)):
        raise InvariantViolation(
            "success-cap",
            f"{len(ok)} successful observations survive the "
            f"{SUCCESS_TRACE_CAP_FACTOR}x cap with {len(failing)} failing",
        )
    scored = score_patterns(capped)
    invariants.check_scores(capped, scored)


# -- pointsto: step 4 --------------------------------------------------------


def run_pointsto(case: CheckCase) -> None:
    from repro.core.andersen import solve
    from repro.core.constraints import generate_constraints

    rng = _rng(case)
    p = case.params
    module = executed = None
    if rng.randrange(100) < p.get("module_pct", 30):
        kinds = generator.kinds_for_primitives(p.get("primitives", 0))
        module, _truth, _workload, _kind = generator.gen_bug(
            rng, p, kinds=kinds
        )
        uids = [i.uid for fn in module.functions.values()
                for i in fn.instructions()]
        if rng.randrange(100) < 50:
            executed = set(rng.sample(uids, max(1, len(uids) // 2)))
        else:
            executed = None  # whole-program
        system = generate_constraints(module, executed)
    else:
        system = generator.gen_constraint_system(rng, p)
    result = solve(system)
    invariants.check_andersen_equivalence(system, result)
    invariants.check_steensgaard_superset(system, result)
    if module is not None and executed and p.get("seeded_diff", 1):
        # incremental-seeding differential: solving a sub-scope first
        # and replaying its fixpoint into the full solve must land on
        # the identical fixpoint as the cold solve above
        sub = set(rng.sample(sorted(executed), max(1, len(executed) // 2)))
        sub_result = solve(generate_constraints(module, sub))
        seeded = solve(system, seed=sub_result)
        cold_pts, seeded_pts = result.as_sets(), seeded.as_sets()
        for node in set(cold_pts) | set(seeded_pts):
            if cold_pts.get(node, frozenset()) != seeded_pts.get(
                node, frozenset()
            ):
                raise InvariantViolation(
                    "seeded-solve-equal",
                    f"seeding from a {len(sub)}-uid sub-scope changed the "
                    f"fixpoint at node {node!r}: cold="
                    f"{sorted(o.name for o in cold_pts.get(node, ()))} "
                    f"seeded="
                    f"{sorted(o.name for o in seeded_pts.get(node, ()))}",
                )


# -- sim: the sync-primitive tables ------------------------------------------


def run_sim(case: CheckCase) -> None:
    """Differential fuzz of :mod:`repro.sim.sync` against independent
    reference models, restating the invariants the extension corpus
    leans on:

    * every wait queue is FIFO — a condvar notify wakes the longest
      waiter, a mutex release hands off in arrival order,
    * a semaphore count is never negative and is zero whenever a
      thread blocks on it,
    * a barrier's generation is monotone, advancing exactly once per
      full batch of arrivals (and never releasing a partial batch),
    * a reader-writer lock never holds a writer alongside readers and
      grants strictly FIFO with reader batching,
    * the wait-for graph reports a cycle exactly when the model's
      owner/waiter relation contains one.
    """
    rng = _rng(case)
    p = case.params
    ops = max(1, p.get("ops", 60))
    threads = max(2, p.get("threads", 4))
    addrs = [0x1000 + 8 * i for i in range(max(1, p.get("addrs", 3)))]
    fuzzers = {
        "condvar": _fuzz_cond,
        "rwlock": _fuzz_rwlock,
        "sema": _fuzz_sema,
        "barrier": _fuzz_barrier,
        "mutex": _fuzz_mutex,
    }
    for name in generator.primitive_names(p.get("primitives", 0)):
        fuzzers[name](rng, ops, threads, addrs, p)


def _fuzz_cond(rng, ops, threads, addrs, params) -> None:
    from repro.sim.sync import CondTable

    table = CondTable()
    model = {a: [] for a in addrs}
    blocked: set[int] = set()
    tids = list(range(1, threads + 1))
    for _ in range(ops):
        addr = rng.choice(addrs)
        runnable = [t for t in tids if t not in blocked]
        if runnable and rng.randrange(100) < 55:
            tid = rng.choice(runnable)
            table.wait(addr, tid)
            model[addr].append(tid)
            blocked.add(tid)
        else:
            woken = table.notify(addr)
            want = model[addr].pop(0) if model[addr] else None
            if woken != want:
                raise InvariantViolation(
                    "condvar-fifo",
                    f"notify({addr:#x}) woke {woken}, FIFO head was {want}",
                )
            if woken is not None:
                blocked.discard(woken)
        for a in addrs:
            if table.waiters(a) != model[a]:
                raise InvariantViolation(
                    "condvar-queue",
                    f"waiters({a:#x})={table.waiters(a)}, model={model[a]}",
                )


def _fuzz_sema(rng, ops, threads, addrs, params) -> None:
    from repro.sim.sync import SemTable

    table = SemTable()
    counts = {a: rng.randrange(3) for a in addrs}
    queues = {a: [] for a in addrs}
    for a in addrs:
        table.init(a, counts[a])
    blocked: set[int] = set()
    tids = list(range(1, threads + 1))
    for _ in range(ops):
        addr = rng.choice(addrs)
        runnable = [t for t in tids if t not in blocked]
        if runnable and rng.randrange(100) < 55:
            tid = rng.choice(runnable)
            got = table.try_wait(addr)
            if got != (counts[addr] > 0):
                raise InvariantViolation(
                    "sema-wait",
                    f"try_wait({addr:#x}) -> {got} at count {counts[addr]}",
                )
            if got:
                counts[addr] -= 1
            else:
                table.add_waiter(addr, tid)
                queues[addr].append(tid)
                blocked.add(tid)
        else:
            woken = table.post(addr)
            want = queues[addr].pop(0) if queues[addr] else None
            if woken != want:
                raise InvariantViolation(
                    "sema-fifo",
                    f"post({addr:#x}) woke {woken}, FIFO head was {want}",
                )
            if woken is None:
                counts[addr] += 1
            else:
                blocked.discard(woken)
        for a in addrs:
            st = table.state(a)
            if st.count < 0:
                raise InvariantViolation(
                    "sema-nonnegative", f"count {st.count} at {a:#x}"
                )
            if st.count > 0 and st.waiters:
                raise InvariantViolation(
                    "sema-zero-while-blocked",
                    f"count {st.count} with waiters {st.waiters} at {a:#x}",
                )
            if st.count != counts[a] or st.waiters != queues[a]:
                raise InvariantViolation(
                    "sema-model",
                    f"state({a:#x}) count={st.count} waiters={st.waiters}; "
                    f"model count={counts[a]} queue={queues[a]}",
                )


def _fuzz_barrier(rng, ops, threads, addrs, params) -> None:
    from repro.sim.sync import BarrierTable

    table = BarrierTable()
    parties = max(1, min(params.get("parties", 2), threads))
    arrived = {a: [] for a in addrs}
    generation = {a: 0 for a in addrs}
    for a in addrs:
        table.init(a, parties)
    blocked: set[int] = set()
    tids = list(range(1, threads + 1))
    for _ in range(ops):
        runnable = [t for t in tids if t not in blocked]
        if not runnable:
            break  # everyone parked across the barriers
        addr = rng.choice(addrs)
        tid = rng.choice(runnable)
        woken = table.arrive(addr, tid)
        if len(arrived[addr]) + 1 >= parties:
            if woken != arrived[addr]:
                raise InvariantViolation(
                    "barrier-batch",
                    f"trip at {addr:#x} woke {woken}, "
                    f"blocked batch was {arrived[addr]}",
                )
            for t in arrived[addr]:
                blocked.discard(t)
            arrived[addr] = []
            generation[addr] += 1
        else:
            if woken is not None:
                raise InvariantViolation(
                    "barrier-early-release",
                    f"{len(arrived[addr]) + 1}/{parties} arrivals at "
                    f"{addr:#x} released {woken}",
                )
            arrived[addr].append(tid)
            blocked.add(tid)
        for a in addrs:
            st = table.state(a)
            if st.generation != generation[a]:
                raise InvariantViolation(
                    "barrier-generation",
                    f"generation at {a:#x} is {st.generation}, model says "
                    f"{generation[a]} (must advance exactly once per batch)",
                )
            if table.waiting(a) != arrived[a] or len(st.arrived) >= parties:
                raise InvariantViolation(
                    "barrier-waiting",
                    f"waiting({a:#x})={table.waiting(a)}, model={arrived[a]}",
                )


def _fuzz_rwlock(rng, ops, threads, addrs, params) -> None:
    from repro.sim.sync import RwLockTable

    table = RwLockTable()
    writer = {a: None for a in addrs}
    readers = {a: [] for a in addrs}
    waiters = {a: [] for a in addrs}  # (tid, mode) in arrival order
    holding: dict[int, int] = {}  # tid -> the one address it holds
    blocked: set[int] = set()
    tids = list(range(1, threads + 1))
    for step in range(1, ops + 1):
        free = [t for t in tids if t not in blocked and t not in holding]
        if free and rng.randrange(100) < 60:
            tid = rng.choice(free)
            addr = rng.choice(addrs)
            mode = rng.choice(["rd", "wr"])
            if mode == "rd":
                got = table.try_rdlock(addr, tid)
                want = writer[addr] is None and not waiters[addr]
            else:
                got = table.try_wrlock(addr, tid)
                want = (
                    writer[addr] is None
                    and not readers[addr]
                    and not waiters[addr]
                )
            if got != want:
                raise InvariantViolation(
                    "rw-fifo-fairness",
                    f"try_{mode}lock({addr:#x}) by t{tid} -> {got}; model "
                    f"(writer={writer[addr]}, readers={readers[addr]}, "
                    f"waiters={waiters[addr]}) says {want}",
                )
            if got:
                holding[tid] = addr
                if mode == "wr":
                    writer[addr] = tid
                else:
                    readers[addr].append(tid)
            elif writer[addr] is None and not readers[addr]:
                raise InvariantViolation(
                    "rw-unheld-refusal",
                    f"{addr:#x} refused t{tid} while unheld — the "
                    f"grant-on-release policy left stale waiters "
                    f"{waiters[addr]}",
                )
            else:
                table.add_waiter(addr, tid, mode, step, step)
                waiters[addr].append((tid, mode))
                blocked.add(tid)
                edge = table.pending_edges().get(tid)
                owner = (
                    writer[addr]
                    if writer[addr] is not None
                    else readers[addr][0]
                )
                if edge is None or edge.owner != owner:
                    raise InvariantViolation(
                        "rw-wait-edge",
                        f"t{tid} waiting on {addr:#x} has edge {edge}, "
                        f"expected owner t{owner}",
                    )
        else:
            held = sorted(holding.items())
            if not held:
                continue
            tid, addr = held[rng.randrange(len(held))]
            granted = table.release(addr, tid)
            if writer[addr] == tid:
                writer[addr] = None
            else:
                readers[addr].remove(tid)
            del holding[tid]
            want: list[int] = []
            if writer[addr] is None and not readers[addr]:
                # the documented grant policy: front waiter wins; a
                # reader at the front pulls every consecutive reader
                # behind it; a writer is granted alone
                while waiters[addr]:
                    wtid, mode = waiters[addr][0]
                    if mode == "wr":
                        if want:
                            break
                        waiters[addr].pop(0)
                        writer[addr] = wtid
                        want.append(wtid)
                        break
                    waiters[addr].pop(0)
                    readers[addr].append(wtid)
                    want.append(wtid)
            if granted != want:
                raise InvariantViolation(
                    "rw-grant-fifo",
                    f"release({addr:#x}) granted {granted}, FIFO with "
                    f"reader batching says {want}",
                )
            for t in want:
                blocked.discard(t)
                holding[t] = addr
        for a in addrs:
            st = table.state(a)
            if st.writer is not None and st.readers:
                raise InvariantViolation(
                    "rw-exclusive",
                    f"writer t{st.writer} holds {a:#x} alongside readers "
                    f"{st.readers}",
                )
            model_holders = (
                [writer[a]] if writer[a] is not None else list(readers[a])
            )
            if table.holders(a) != model_holders:
                raise InvariantViolation(
                    "rw-holders",
                    f"holders({a:#x})={table.holders(a)}, "
                    f"model={model_holders}",
                )


def _fuzz_mutex(rng, ops, threads, addrs, params) -> None:
    from repro.sim.sync import LockTable

    table = LockTable()
    owner = {a: None for a in addrs}
    queues = {a: [] for a in addrs}
    held = {t: [] for t in range(1, threads + 1)}
    waiting: dict[int, int] = {}  # tid -> the address it blocks on
    for step in range(1, ops + 1):
        free = [t for t in held if t not in waiting]
        acquirable = [
            (t, a) for t in free for a in addrs if a not in held[t]
        ]
        if acquirable and rng.randrange(100) < 60:
            tid, addr = acquirable[rng.randrange(len(acquirable))]
            got = table.try_acquire(addr, tid)
            if got != (owner[addr] is None):
                raise InvariantViolation(
                    "mutex-acquire",
                    f"try_acquire({addr:#x}) by t{tid} -> {got} with "
                    f"owner {owner[addr]}",
                )
            if got:
                owner[addr] = tid
                held[tid].append(addr)
            else:
                table.add_waiter(addr, tid, step, step)
                queues[addr].append(tid)
                waiting[tid] = addr
                cycle = table.find_deadlock_cycle(tid)
                if (cycle is not None) != _wait_model_has_cycle(
                    owner, waiting, tid
                ):
                    raise InvariantViolation(
                        "mutex-deadlock-detect",
                        f"find_deadlock_cycle(t{tid}) -> {cycle}, but the "
                        f"owner/waiter model disagrees "
                        f"(owners={owner}, waiting={waiting})",
                    )
                if cycle is not None:
                    return  # deadlocked exactly when the model says: done
        else:
            candidates = [t for t, a in held.items() if a and t not in waiting]
            if not candidates:
                continue
            tid = rng.choice(candidates)
            addr = rng.choice(held[tid])
            inheritor = table.release(addr, tid)
            held[tid].remove(addr)
            want = queues[addr].pop(0) if queues[addr] else None
            if inheritor != want:
                raise InvariantViolation(
                    "mutex-fifo",
                    f"release({addr:#x}) handed to {inheritor}, FIFO head "
                    f"was {want}",
                )
            owner[addr] = want
            if want is not None:
                del waiting[want]
                held[want].append(addr)
        for a in addrs:
            if table.holder(a) != owner[a]:
                raise InvariantViolation(
                    "mutex-owner",
                    f"holder({a:#x})={table.holder(a)}, model={owner[a]}",
                )


def _wait_model_has_cycle(owner, waiting, start: int) -> bool:
    seen: set[int] = set()
    tid = start
    while tid in waiting:
        if tid in seen:
            return True
        seen.add(tid)
        next_tid = owner[waiting[tid]]
        if next_tid is None:
            return False
        tid = next_tid
    return False


# -- jobs: the fleet queue ---------------------------------------------------


def run_jobs(case: CheckCase) -> None:
    from repro.fleet.jobs import DiagnosisJobQueue, JobRejected

    rng = _rng(case)
    p = case.params
    n_jobs = max(1, p.get("jobs", 6))
    fail_pct = p.get("fail_pct", 30)
    specs = [
        (f"sig-{i}", rng.randrange(100) < fail_pct) for i in range(n_jobs)
    ]
    gate = threading.Event()

    def job(sig: str, fails: bool) -> Callable[[], object]:
        def fn() -> object:
            gate.wait(timeout=10)
            if fails:
                raise RuntimeError(f"injected failure for {sig}")
            return f"report-{sig}"
        return fn

    queue = DiagnosisJobQueue(
        workers=max(1, p.get("workers", 2)), max_pending=n_jobs
    )
    try:
        futures = {}
        for sig, fails in specs:
            future, dedup = queue.submit(sig, job(sig, fails))
            if dedup:
                raise InvariantViolation(
                    "dedup-only-on-repeat", f"fresh {sig} reported as dedup"
                )
            futures[sig] = future
        # every job is gated, so repeats MUST dedup onto the live future
        for sig, _fails in rng.sample(specs, min(2, n_jobs)):
            future, dedup = queue.submit(sig, job(sig, True))
            if not dedup or future is not futures[sig]:
                raise InvariantViolation(
                    "dedup-shares-future",
                    f"repeat of in-flight {sig} did not dedup",
                )
        # ...and the queue is exactly full: a novel signature bounces
        try:
            queue.submit("sig-overflow", job("sig-overflow", False))
        except JobRejected:
            pass
        else:
            raise InvariantViolation(
                "backpressure-bounds-queue",
                f"submit #{n_jobs + 1} accepted past max_pending={n_jobs}",
            )
        gate.set()
        for sig, fails in specs:
            err = futures[sig].exception(timeout=10)
            if fails != (err is not None):
                raise InvariantViolation(
                    "job-outcome-faithful",
                    f"{sig}: injected fails={fails}, future error={err!r}",
                )
        # completion bookkeeping: results cached iff successful, submit
        # timestamps dropped for every finished job
        deadline = time.monotonic() + 5.0
        while queue.tracked_submissions > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        if queue.tracked_submissions != 0:
            raise InvariantViolation(
                "bookkeeping-bounded",
                f"{queue.tracked_submissions} submit timestamps survive "
                f"completion of all {n_jobs} jobs",
            )
        if queue.depth != 0:
            raise InvariantViolation(
                "queue-drains", f"depth={queue.depth} after completion"
            )
        for sig, fails in specs:
            cached = queue.result_for(sig)
            if fails and cached is not None:
                raise InvariantViolation(
                    "failures-evicted", f"{sig} failed but stayed cached"
                )
            if not fails and cached is None:
                raise InvariantViolation(
                    "successes-cached", f"{sig} succeeded but was evicted"
                )
    finally:
        gate.set()
        queue.shutdown(wait=True)


# -- collect: step 8 transport/stopping differential -------------------------


def run_collect(case: CheckCase) -> None:
    """Evidence equivalence across every trace-collection transport.

    The pipelining contract: serial, thread-parallel, and batched
    (round-tripped through the wire codec, like a real fleet frame)
    collection must produce byte-identical evidence, and the adaptive
    stopping rule must be a pure function of the sample prefix — the
    serial and batched adaptive runs must agree with each other too.
    """
    from repro import api
    from repro.fleet.server import report_digest
    from repro.fleet.wire import decode_frame, encode_frame
    from repro.runtime.client import SnorlaxClient
    from repro.runtime.server import SnorlaxServer

    rng = _rng(case)
    p = case.params
    kinds = generator.kinds_for_primitives(p.get("primitives", 0))
    module, _truth, workload, _kind = generator.gen_bug(rng, p, kinds=kinds)
    client = SnorlaxClient(module, workload)
    base = rng.randrange(1_000_000)
    failing_run = None
    for offset in range(max(1, p.get("seed_scan", 25))):
        run = client.run_once(base + offset)
        if run.failed:
            failing_run = run
            break
    if failing_run is None:
        raise CaseSkipped(f"no failing run in {p.get('seed_scan', 25)} seeds")
    uid = failing_run.failure.failing_uid
    start_seed = base + 10_000
    wanted = max(1, p.get("successes", 6))

    def make_server(**kw) -> SnorlaxServer:
        return SnorlaxServer(
            module,
            success_traces_wanted=wanted,
            max_collection_attempts=300,
            **kw,
        )

    def batch_transport(server: SnorlaxServer):
        """A batch send that exercises the real wire codec end to end."""
        from repro.fleet.wire import TraceBatchRequest, TraceBatchResponse

        def send_batch(requests):
            frame = encode_frame(TraceBatchRequest(requests=tuple(requests)))
            batch, _rid = decode_frame(frame)
            responses = TraceBatchResponse(
                responses=tuple(
                    server.handle_trace_request(client, r)
                    for r in batch.requests
                )
            )
            reply, _rid = decode_frame(encode_frame(responses))
            return list(reply.responses)

        return send_batch

    def evidence(samples):
        return [
            (s.label, s.failing, s.buffers, s.positions) for s in samples
        ]

    serial = make_server()
    base_samples = serial.collect_successful_traces(client, uid, start_seed)
    families = [("serial", serial, base_samples)]
    par = make_server(collection_parallelism=3)
    families.append(
        ("parallel", par, par.collect_successful_traces(client, uid, start_seed))
    )
    batched = make_server()
    families.append(
        (
            "batched-wire",
            batched,
            batched.collect_traces_via(
                lambda req: batched.handle_trace_request(client, req),
                uid,
                start_seed,
                send_batch=batch_transport(batched),
            ),
        )
    )
    want = evidence(base_samples)
    for label, server, samples in families[1:]:
        if evidence(samples) != want:
            raise InvariantViolation(
                "collect-evidence-equal",
                f"{label} collection diverged from serial: "
                f"{[s.label for s in samples]} vs "
                f"{[s.label for s in base_samples]}",
            )
        if server.stats.success_traces != serial.stats.success_traces:
            raise InvariantViolation(
                "collect-stats-equal",
                f"{label} counted {server.stats.success_traces} successes, "
                f"serial counted {serial.stats.success_traces}",
            )
    failing_sample = serial.sample_from_run("failure", failing_run)
    if p.get("adaptive_check", 1):
        # adaptive stopping must depend only on the sample prefix, never
        # on the transport that delivered it
        adaptive = {}
        for label, send_batch_of in (
            ("adaptive-serial", lambda s: None),
            ("adaptive-batched", batch_transport),
        ):
            server = make_server(stopping="stable-top", adaptive_min_traces=3)
            adaptive[label] = server.collect_traces_via(
                lambda req, s=server: s.handle_trace_request(client, req),
                uid,
                start_seed,
                send_batch=send_batch_of(server),
                failing_sample=failing_sample,
            )
        if evidence(adaptive["adaptive-serial"]) != evidence(
            adaptive["adaptive-batched"]
        ):
            raise InvariantViolation(
                "adaptive-transport-invariant",
                "adaptive stopping collected different evidence over "
                "serial vs batched transport: "
                f"{[s.label for s in adaptive['adaptive-serial']]} vs "
                f"{[s.label for s in adaptive['adaptive-batched']]}",
            )
    if p.get("digest_check", 1):
        digest = report_digest(
            api.diagnose(module, traces=[failing_sample, *base_samples]).report
        )
        for label, _server, samples in families[1:]:
            again = api.diagnose(module, traces=[failing_sample, *samples])
            invariants.check_digest_match(
                digest, report_digest(again.report), label
            )


# -- e2e: the whole pipeline -------------------------------------------------


def run_e2e(case: CheckCase) -> None:
    from repro import api
    from repro.core.cache import DiagnosisCaches
    from repro.core.checkpoints import observed
    from repro.fleet.server import report_digest
    from repro.fleet.wire import decode_value, encode_value, sample_from_dict, sample_to_dict
    from repro.runtime.client import SnorlaxClient
    from repro.runtime.server import SnorlaxServer

    rng = _rng(case)
    p = case.params
    kinds = generator.kinds_for_primitives(p.get("primitives", 0))
    module, truth, workload, kind = generator.gen_bug(rng, p, kinds=kinds)
    client = SnorlaxClient(module, workload)
    base = rng.randrange(1_000_000)
    failing_run = None
    for offset in range(max(1, p.get("seed_scan", 25))):
        run = client.run_once(base + offset)
        if run.failed:
            failing_run = run
            break
    if failing_run is None:
        raise CaseSkipped(f"no failing run in {p.get('seed_scan', 25)} seeds")
    server = SnorlaxServer(
        module,
        success_traces_wanted=max(1, p.get("successes", 4)),
        max_collection_attempts=300,
    )
    failing_sample = server.sample_from_run("failure", failing_run)
    successes = server.collect_successful_traces(
        client, failing_run.failure.failing_uid, start_seed=base + 10_000
    )
    samples = [failing_sample, *successes]
    observer = InvariantObserver(
        rng, solver_differential=bool(p.get("solver_diff", 1))
    )
    with observed(observer):
        result = api.diagnose(module, traces=samples)
    if observer.checks_by_point.get("pipeline.report", 0) == 0:
        raise InvariantViolation(
            "checkpoints-wired",
            "the diagnosis fired no pipeline.report checkpoint — the "
            "hook points have been disconnected",
        )
    report = result.report
    digest = report_digest(report)
    # ground truth: with the paper's evidence bound (10 successful
    # traces, §5) and a report the pipeline itself calls unambiguous,
    # the injected bug must sit in the top-F1 tier of the ranking — a
    # strictly better-scoring satellite would mean the scorer is
    # broken.  Losing only the *tie-break* (to an embedded sub-pair,
    # or to a satellite that happens to correlate perfectly for this
    # shape's timing) is legitimate statistics, so that is allowed.
    # When the report flags ambiguity ("manual inspection needed") or
    # evidence is scarce, nothing is asserted: random timing shapes,
    # unlike the tuned corpus, can leave the true pattern unwitnessed.
    full_evidence = len(successes) >= 10
    if kind in ("deadlock", "lock-chain"):
        if report.bug_kind != "deadlock":
            raise InvariantViolation(
                "ground-truth-kind",
                f"injected a {kind}, diagnosed {report.bug_kind!r}",
            )
    elif full_evidence and report.unambiguous:
        truth_uids = truth.resolve(module)
        if not report.diagnosed:
            raise InvariantViolation(
                "ground-truth-diagnosed",
                f"injected {kind} bug produced no diagnosis "
                f"({len(samples)} samples)",
            )
        if report.ordered_target_uids() != truth_uids:
            top_f1 = report.ranked_patterns[0].f1
            tier = [
                [uid for uid, _role in s.signature.events]
                for s in report.ranked_patterns
                if s.f1 == top_f1
            ]
            if truth_uids not in tier:
                raise InvariantViolation(
                    "ground-truth-ranked",
                    f"injected uids {truth_uids} missing from the "
                    f"top-F1 tier (F1={top_f1:.3f}, "
                    f"{len(tier)} tied); diagnosed "
                    f"{report.ordered_target_uids()} "
                    f"(pattern {report.root_cause.signature})",
                )
    if p.get("cache_check", 1):
        caches = DiagnosisCaches()
        for label in ("cache-cold", "cache-warm"):
            again = api.diagnose(module, traces=samples, caches=caches)
            invariants.check_digest_match(
                digest, report_digest(again.report), label
            )
    if p.get("wire_check", 1):
        wired = []
        for s in samples:
            buf = bytearray()
            encode_value(sample_to_dict(s), buf)
            decoded, _pos = decode_value(bytes(buf))
            wired.append(sample_from_dict(decoded))
        via_wire = api.diagnose(module, traces=wired)
        invariants.check_digest_match(
            digest, report_digest(via_wire.report), "fleet-wire"
        )
    if p.get("store_check", 1):
        # store-backed differential: persisting fixpoints/traces and
        # rebinding them from disk (fresh in-memory LRUs each run, so
        # the second run can only hit via the store) must not change a
        # single digest byte vs the store-free baseline
        from repro.store import DiagnosisStore, persistent_caches

        with DiagnosisStore() as db:
            first = api.diagnose(
                module, traces=samples, caches=persistent_caches(db)
            )
            invariants.check_digest_match(
                digest, report_digest(first.report), "store-cold"
            )
            second = api.diagnose(
                module, traces=samples, caches=persistent_caches(db)
            )
            invariants.check_digest_match(
                digest, report_digest(second.report), "store-warm"
            )
            wrote = db.analysis_stats.writes + db.trace_stats.writes
            hydrated = db.analysis_stats.hits + db.trace_stats.hits
            if wrote > 0 and hydrated == 0:
                raise InvariantViolation(
                    "store-hydrates",
                    f"the first run persisted {wrote} payloads but the "
                    "second (fresh-LRU) run hydrated none of them from "
                    "the store",
                )


# -- validate: the reproduction loop -----------------------------------------


def run_validate(case: CheckCase) -> None:
    """Close-the-loop oracle on a generated bug.

    Two invariants: (1) the injected ground-truth order must validate —
    the failure fires under the forced order and not under the inverse;
    (2) when the pipeline's own top-F1 diagnosis names the true
    pattern, its directed replay must never refute it.  (A refuted
    *mis*diagnosis is the validator working as designed, not a
    violation.)
    """
    from repro import api
    from repro.runtime.client import SnorlaxClient
    from repro.runtime.server import SnorlaxServer
    from repro.validate.engine import validate_order, validate_report
    from repro.validate.synthesizer import TargetOrder

    rng = _rng(case)
    p = case.params
    kinds = generator.kinds_for_primitives(p.get("primitives", 0))
    module, truth, workload, kind = generator.gen_bug(rng, p, kinds=kinds)
    client = SnorlaxClient(module, workload)
    base = rng.randrange(1_000_000)
    failing_run = failing_seed = None
    for offset in range(max(1, p.get("seed_scan", 25))):
        run = client.run_once(base + offset)
        if run.failed:
            failing_run, failing_seed = run, base + offset
            break
    if failing_run is None:
        raise CaseSkipped(f"no failing run in {p.get('seed_scan', 25)} seeds")
    uid = failing_run.failure.failing_uid

    order = TargetOrder.from_truth(module, truth)
    outcome = validate_order(
        module, workload, order, failing_seed=failing_seed, expected_uid=uid
    )
    if outcome.status != "validated":
        detail = "; ".join(outcome.render().splitlines())
        raise InvariantViolation(
            "ground-truth-validates",
            f"injected {kind} bug (uids {order.uids}) did not validate: "
            f"{detail}",
        )

    if not p.get("report_check", 1):
        return
    # Diagnose through the production pipeline, then turn the validator
    # on the pipeline's own report.  A top-F1 report that names the
    # true pattern yet gets refuted by its directed replay means the
    # loop is broken on one side or the other.
    server = SnorlaxServer(
        module,
        success_traces_wanted=max(1, p.get("successes", 6)),
        max_collection_attempts=300,
    )
    failing_sample = server.sample_from_run("failure", failing_run)
    successes = server.collect_successful_traces(
        client, uid, start_seed=base + 10_000
    )
    report = api.diagnose(
        module, traces=[failing_sample, *successes]
    ).report
    verdict = validate_report(
        module, workload, report, failing_seed=failing_seed
    )
    if verdict is None:
        return  # nothing diagnosed (e.g. deadlock report) — vacuous
    if (
        verdict.status == "refuted"
        and report.ordered_target_uids() == truth.resolve(module)
    ):
        detail = "; ".join(verdict.render().splitlines())
        raise InvariantViolation(
            "no-refuted-top-f1",
            f"the top-F1 report names the injected {kind} pattern "
            f"{report.ordered_target_uids()} but its directed replay "
            f"refuted it: {detail}",
        )


# -- monitor: always-on anomaly-triggered diagnosis --------------------------


def run_monitor(case: CheckCase) -> None:
    """The always-on differential: a diagnosis the anomaly detector
    started unprompted (from a monitor loop's sampled telemetry) must
    digest byte-identically to the on-demand diagnosis of the same
    failure, and must carry a queryable evidence graph that survives a
    serialization round-trip with its digest intact.

    The monitor loop walks seeds from the same base the on-demand
    reporter would scan, and the detector is configured to trip on the
    first failing sample — so both paths diagnose the same failing run
    and the digests are comparable exactly.
    """
    from repro.fleet.agent import FleetAgent, MonitorLoop
    from repro.fleet.anomaly import EwmaAnomalyDetector
    from repro.fleet.server import FleetServer, report_digest
    from repro.fleet.shard import signature_for_failure
    from repro.provenance import EvidenceGraph, report_key
    from repro.runtime.client import SnorlaxClient
    from repro.runtime.server import SnorlaxServer

    rng = _rng(case)
    p = case.params
    kinds = generator.kinds_for_primitives(p.get("primitives", 0))
    module, _truth, workload, _kind = generator.gen_bug(rng, p, kinds=kinds)
    client = SnorlaxClient(module, workload)
    base = rng.randrange(1_000_000)
    scan = max(1, p.get("seed_scan", 25))
    failing_run = None
    for offset in range(scan):
        run = client.run_once(base + offset)
        if run.failed:
            failing_run = run
            break
    if failing_run is None:
        raise CaseSkipped(f"no failing run in {scan} seeds")
    signature = signature_for_failure("check-monitor", failing_run)

    class _Clock:
        t = 0.0

        def __call__(self) -> float:
            return self.t

    clock = _Clock()
    successes = max(1, p.get("successes", 4))
    server = FleetServer(
        module_resolver=lambda bug_id: module,
        workers=1,
        success_traces_wanted=successes,
        anomaly_detector=EwmaAnomalyDetector(
            alpha=0.5, failure_threshold=0.5, min_observations=1,
            window_s=1e9,
        ),
        clock=clock,
    )
    host, port = server.start()
    agent = FleetAgent("check-monitor-0", "check-monitor", module, workload,
                       host, port)
    try:
        agent.connect()
        monitor = MonitorLoop(
            agent, heartbeat_interval_s=1.0, sample_interval_s=0.5,
            start_seed=base, clock=clock,
        )
        deadline = time.monotonic() + 120.0
        anomaly_digest = None
        while time.monotonic() < deadline:
            monitor.tick(clock.t)
            clock.t += 0.5
            anomaly_digest = server.anomaly_digests().get(signature)
            if anomaly_digest is not None:
                break
            time.sleep(0.002)
        if anomaly_digest is None:
            raise InvariantViolation(
                "anomaly-triggers",
                f"monitor streamed {monitor.samples_sent} samples "
                f"({monitor.failures_seen} failures) but the detector "
                f"produced no diagnosis for {signature}",
            )
        in_process = SnorlaxServer(
            module, success_traces_wanted=successes
        ).diagnose(failing_run, client).report
        invariants.check_digest_match(
            report_digest(in_process), anomaly_digest, "monitor-anomaly"
        )
        key = report_key(anomaly_digest)
        graph = server.evidence_graph(key)
        if graph is None:
            raise InvariantViolation(
                "evidence-queryable",
                f"anomaly-triggered report {key[:12]} has no evidence graph",
            )
        replayed = EvidenceGraph.from_dict(graph.to_dict())
        if replayed.digest() != graph.digest():
            raise InvariantViolation(
                "evidence-round-trip",
                "evidence graph digest changed across a to_dict/from_dict "
                f"round-trip ({graph.digest()[:12]} -> "
                f"{replayed.digest()[:12]})",
            )
    finally:
        agent.close()
        server.stop()


# -- registry ----------------------------------------------------------------


@dataclass(frozen=True)
class StageSpec:
    name: str
    run: Callable[[CheckCase], None]
    defaults: dict[str, int]
    minimums: dict[str, int] = field(default_factory=dict)
    weight: int = 1  # share of cases in a mixed run


STAGES: dict[str, StageSpec] = {
    spec.name: spec
    for spec in (
        StageSpec(
            name="trace",
            run=run_trace,
            defaults={
                "threads": 4, "events": 12, "uids": 6, "desync_pct": 30,
                "zero_width_pct": 10, "anchor_fresh_pct": 30, "attaches": 2,
            },
            minimums={"threads": 1, "events": 1, "uids": 1},
            weight=30,
        ),
        StageSpec(
            name="stats",
            run=run_stats,
            defaults={
                "observations": 8, "failing": 3, "sigs": 5, "max_rank": 5,
                "dynamics_pct": 50,
            },
            minimums={"observations": 1, "sigs": 1, "max_rank": 1},
            weight=25,
        ),
        StageSpec(
            name="pointsto",
            run=run_pointsto,
            defaults={
                "vars": 12, "objs": 6, "copies": 10, "loads": 6, "stores": 6,
                "module_pct": 30, "kloc": 2, "quantum": 500, "iters": 6,
                "cold": 0, "primitives": 0,
            },
            minimums={"vars": 2, "objs": 1, "kloc": 1, "quantum": 350,
                      "iters": 4},
            weight=20,
        ),
        StageSpec(
            name="sim",
            run=run_sim,
            defaults={
                "ops": 60, "threads": 4, "addrs": 3, "parties": 2,
                "primitives": 0,
            },
            minimums={"ops": 1, "threads": 2, "addrs": 1, "parties": 1},
            weight=15,
        ),
        StageSpec(
            name="jobs",
            run=run_jobs,
            defaults={"jobs": 6, "fail_pct": 30, "workers": 2},
            minimums={"jobs": 1, "workers": 1},
            weight=10,
        ),
        StageSpec(
            name="collect",
            run=run_collect,
            defaults={
                "successes": 6, "seed_scan": 25, "quantum": 500, "iters": 6,
                "kloc": 2, "cold": 0, "adaptive_check": 1, "digest_check": 1,
                "primitives": 0,
            },
            minimums={"successes": 1, "seed_scan": 1, "quantum": 350,
                      "iters": 4, "kloc": 1},
            weight=10,
        ),
        StageSpec(
            name="e2e",
            run=run_e2e,
            defaults={
                "successes": 10, "seed_scan": 25, "quantum": 500, "iters": 6,
                "kloc": 2, "cold": 0, "solver_diff": 1, "cache_check": 1,
                "wire_check": 1, "store_check": 1, "primitives": 0,
            },
            minimums={"successes": 10, "seed_scan": 1, "quantum": 350,
                      "iters": 4, "kloc": 1},
            weight=15,
        ),
        StageSpec(
            name="monitor",
            run=run_monitor,
            defaults={
                "successes": 4, "seed_scan": 25, "quantum": 500, "iters": 6,
                "kloc": 2, "cold": 0, "primitives": 0,
            },
            minimums={"successes": 1, "seed_scan": 1, "quantum": 350,
                      "iters": 4, "kloc": 1},
            weight=5,
        ),
        StageSpec(
            name="validate",
            run=run_validate,
            defaults={
                "successes": 6, "seed_scan": 25, "quantum": 500, "iters": 6,
                "kloc": 2, "cold": 0, "report_check": 1, "primitives": 0,
            },
            minimums={"successes": 1, "seed_scan": 1, "quantum": 350,
                      "iters": 4, "kloc": 1},
            weight=10,
        ),
    )
}


def stage_names() -> list[str]:
    return list(STAGES)


def resolve_stages(names: list[str] | None) -> list[StageSpec]:
    if not names:
        return list(STAGES.values())
    unknown = [n for n in names if n not in STAGES]
    if unknown:
        raise ValueError(
            f"unknown stage(s) {unknown}; available: {stage_names()}"
        )
    return [STAGES[n] for n in names]
