"""The checkable stage families: one per pipeline layer.

Each stage is a pure function of a :class:`~repro.check.cases.CheckCase`
— it regenerates its inputs from the case seed, runs the production
code, and raises :class:`~repro.check.invariants.InvariantViolation`
(or any exception) on a broken invariant.  ``STAGES`` is the registry
the runner, the shrinker, and the CLI share; ``defaults`` are the
generation knobs (all integers, so the shrinker can minimize them) and
``minimums`` the per-knob shrink floors.

Stage families:

======== ==================================================================
trace    ``process_snapshot`` / ``attach_anchor`` on synthetic decoded
         traces: thread registration, ``by_uid`` ordering, executed-set
         coverage, partial-order sanity
stats    ``score_patterns`` on randomized evidence: F1 recomputation,
         true-minimum ranks, failing-first example selection, the 10x cap
pointsto Andersen optimized ≡ naive ≡ (⊆ Steensgaard) on random
         constraint systems and on generated program modules
jobs     ``DiagnosisJobQueue``: dedup, backpressure, result caching, and
         bounded bookkeeping after completion
collect  step-8 transport differential: serial ≡ thread-parallel ≡
         batched-through-the-wire-codec evidence, adaptive stopping
         invariant across transports, digest equality of the diagnoses
e2e      a full client/server diagnosis of a generated bug under the
         checkpoint observer, plus cache-on ≡ cache-off ≡ cache-warm and
         fleet-wire ≡ in-process digest equality, against ground truth
validate the reproduction loop: the ground-truth order of a generated
         bug must validate (forced order fails, inverse passes), and a
         diagnosis of the true pattern must never be refuted by its own
         directed replay
======== ==================================================================
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.check import generator, invariants
from repro.check.cases import CheckCase
from repro.check.invariants import InvariantViolation
from repro.check.observer import InvariantObserver


class CaseSkipped(Exception):
    """The case is vacuous for this seed (e.g. no failing run found) —
    counted separately, never a failure."""


def _rng(case: CheckCase) -> random.Random:
    return random.Random(case.seed)


# -- trace: steps 2-3 --------------------------------------------------------


def run_trace(case: CheckCase) -> None:
    from repro.core.trace_processing import attach_anchor, process_snapshot

    rng = _rng(case)
    p = case.params
    traces = generator.gen_thread_traces(rng, p)
    with_anchor = rng.randrange(100) < 80
    anchor_uid = anchor_tid = anchor_time = None
    if with_anchor:
        anchor_uid, anchor_tid, anchor_time = generator.gen_anchor(
            rng, traces, p
        )
    pt = process_snapshot(
        "check", traces, failing=True,
        anchor_uid=anchor_uid, anchor_tid=anchor_tid, anchor_time=anchor_time,
    )
    invariants.check_processed_trace(pt, traces, rng=rng)
    if with_anchor and pt.anchor is not None:
        if pt.anchor.tid not in pt.threads:
            raise InvariantViolation(
                "anchor-thread-registered",
                f"anchor tid={pt.anchor.tid} missing from threads",
            )
    # attach a few more anchors the way operand recovery does (the
    # recovered chain loads), alternating decoded and synthesized
    for _ in range(p.get("attaches", 2)):
        uid, tid, t = generator.gen_anchor(rng, traces, p)
        if tid is None:
            tid = min(pt.threads) if pt.threads else 0
        prefer = rng.randrange(100) < 60
        decoded_before = [d for d in pt.instances(uid) if d.tid == tid]
        anchor = attach_anchor(pt, uid, tid, t, prefer_decoded=prefer)
        if prefer and decoded_before:
            # the documented pick: the LAST decoded instance in
            # (t_lo, seq) order — not merely any member of the bucket
            want = max(decoded_before, key=lambda d: (d.t_lo, d.seq))
            if anchor is not want:
                raise InvariantViolation(
                    "anchor-is-last-instance",
                    f"attach_anchor(uid={uid}, tid={tid}) returned "
                    f"(t_lo={anchor.t_lo}, seq={anchor.seq}), latest "
                    f"decoded is (t_lo={want.t_lo}, seq={want.seq})",
                )
        invariants.check_processed_trace(pt, traces, rng=rng)


# -- stats: step 7 -----------------------------------------------------------


def run_stats(case: CheckCase) -> None:
    from repro.core.statistics import (
        SUCCESS_TRACE_CAP_FACTOR,
        cap_successful,
        score_patterns,
    )

    rng = _rng(case)
    observations = generator.gen_observations(rng, case.params)
    capped = cap_successful(observations)
    failing = [o for o in capped if o.failing]
    ok = [o for o in capped if not o.failing]
    if len(ok) > SUCCESS_TRACE_CAP_FACTOR * max(1, len(failing)):
        raise InvariantViolation(
            "success-cap",
            f"{len(ok)} successful observations survive the "
            f"{SUCCESS_TRACE_CAP_FACTOR}x cap with {len(failing)} failing",
        )
    scored = score_patterns(capped)
    invariants.check_scores(capped, scored)


# -- pointsto: step 4 --------------------------------------------------------


def run_pointsto(case: CheckCase) -> None:
    from repro.core.andersen import solve
    from repro.core.constraints import generate_constraints

    rng = _rng(case)
    p = case.params
    module = executed = None
    if rng.randrange(100) < p.get("module_pct", 30):
        module, _truth, _workload, _kind = generator.gen_bug(rng, p)
        uids = [i.uid for fn in module.functions.values()
                for i in fn.instructions()]
        if rng.randrange(100) < 50:
            executed = set(rng.sample(uids, max(1, len(uids) // 2)))
        else:
            executed = None  # whole-program
        system = generate_constraints(module, executed)
    else:
        system = generator.gen_constraint_system(rng, p)
    result = solve(system)
    invariants.check_andersen_equivalence(system, result)
    invariants.check_steensgaard_superset(system, result)
    if module is not None and executed and p.get("seeded_diff", 1):
        # incremental-seeding differential: solving a sub-scope first
        # and replaying its fixpoint into the full solve must land on
        # the identical fixpoint as the cold solve above
        sub = set(rng.sample(sorted(executed), max(1, len(executed) // 2)))
        sub_result = solve(generate_constraints(module, sub))
        seeded = solve(system, seed=sub_result)
        cold_pts, seeded_pts = result.as_sets(), seeded.as_sets()
        for node in set(cold_pts) | set(seeded_pts):
            if cold_pts.get(node, frozenset()) != seeded_pts.get(
                node, frozenset()
            ):
                raise InvariantViolation(
                    "seeded-solve-equal",
                    f"seeding from a {len(sub)}-uid sub-scope changed the "
                    f"fixpoint at node {node!r}: cold="
                    f"{sorted(o.name for o in cold_pts.get(node, ()))} "
                    f"seeded="
                    f"{sorted(o.name for o in seeded_pts.get(node, ()))}",
                )


# -- jobs: the fleet queue ---------------------------------------------------


def run_jobs(case: CheckCase) -> None:
    from repro.fleet.jobs import DiagnosisJobQueue, JobRejected

    rng = _rng(case)
    p = case.params
    n_jobs = max(1, p.get("jobs", 6))
    fail_pct = p.get("fail_pct", 30)
    specs = [
        (f"sig-{i}", rng.randrange(100) < fail_pct) for i in range(n_jobs)
    ]
    gate = threading.Event()

    def job(sig: str, fails: bool) -> Callable[[], object]:
        def fn() -> object:
            gate.wait(timeout=10)
            if fails:
                raise RuntimeError(f"injected failure for {sig}")
            return f"report-{sig}"
        return fn

    queue = DiagnosisJobQueue(
        workers=max(1, p.get("workers", 2)), max_pending=n_jobs
    )
    try:
        futures = {}
        for sig, fails in specs:
            future, dedup = queue.submit(sig, job(sig, fails))
            if dedup:
                raise InvariantViolation(
                    "dedup-only-on-repeat", f"fresh {sig} reported as dedup"
                )
            futures[sig] = future
        # every job is gated, so repeats MUST dedup onto the live future
        for sig, _fails in rng.sample(specs, min(2, n_jobs)):
            future, dedup = queue.submit(sig, job(sig, True))
            if not dedup or future is not futures[sig]:
                raise InvariantViolation(
                    "dedup-shares-future",
                    f"repeat of in-flight {sig} did not dedup",
                )
        # ...and the queue is exactly full: a novel signature bounces
        try:
            queue.submit("sig-overflow", job("sig-overflow", False))
        except JobRejected:
            pass
        else:
            raise InvariantViolation(
                "backpressure-bounds-queue",
                f"submit #{n_jobs + 1} accepted past max_pending={n_jobs}",
            )
        gate.set()
        for sig, fails in specs:
            err = futures[sig].exception(timeout=10)
            if fails != (err is not None):
                raise InvariantViolation(
                    "job-outcome-faithful",
                    f"{sig}: injected fails={fails}, future error={err!r}",
                )
        # completion bookkeeping: results cached iff successful, submit
        # timestamps dropped for every finished job
        deadline = time.monotonic() + 5.0
        while queue.tracked_submissions > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        if queue.tracked_submissions != 0:
            raise InvariantViolation(
                "bookkeeping-bounded",
                f"{queue.tracked_submissions} submit timestamps survive "
                f"completion of all {n_jobs} jobs",
            )
        if queue.depth != 0:
            raise InvariantViolation(
                "queue-drains", f"depth={queue.depth} after completion"
            )
        for sig, fails in specs:
            cached = queue.result_for(sig)
            if fails and cached is not None:
                raise InvariantViolation(
                    "failures-evicted", f"{sig} failed but stayed cached"
                )
            if not fails and cached is None:
                raise InvariantViolation(
                    "successes-cached", f"{sig} succeeded but was evicted"
                )
    finally:
        gate.set()
        queue.shutdown(wait=True)


# -- collect: step 8 transport/stopping differential -------------------------


def run_collect(case: CheckCase) -> None:
    """Evidence equivalence across every trace-collection transport.

    The pipelining contract: serial, thread-parallel, and batched
    (round-tripped through the wire codec, like a real fleet frame)
    collection must produce byte-identical evidence, and the adaptive
    stopping rule must be a pure function of the sample prefix — the
    serial and batched adaptive runs must agree with each other too.
    """
    from repro import api
    from repro.fleet.server import report_digest
    from repro.fleet.wire import decode_frame, encode_frame
    from repro.runtime.client import SnorlaxClient
    from repro.runtime.server import SnorlaxServer

    rng = _rng(case)
    p = case.params
    module, _truth, workload, _kind = generator.gen_bug(rng, p)
    client = SnorlaxClient(module, workload)
    base = rng.randrange(1_000_000)
    failing_run = None
    for offset in range(max(1, p.get("seed_scan", 25))):
        run = client.run_once(base + offset)
        if run.failed:
            failing_run = run
            break
    if failing_run is None:
        raise CaseSkipped(f"no failing run in {p.get('seed_scan', 25)} seeds")
    uid = failing_run.failure.failing_uid
    start_seed = base + 10_000
    wanted = max(1, p.get("successes", 6))

    def make_server(**kw) -> SnorlaxServer:
        return SnorlaxServer(
            module,
            success_traces_wanted=wanted,
            max_collection_attempts=300,
            **kw,
        )

    def batch_transport(server: SnorlaxServer):
        """A batch send that exercises the real wire codec end to end."""
        from repro.fleet.wire import TraceBatchRequest, TraceBatchResponse

        def send_batch(requests):
            frame = encode_frame(TraceBatchRequest(requests=tuple(requests)))
            batch, _rid = decode_frame(frame)
            responses = TraceBatchResponse(
                responses=tuple(
                    server.handle_trace_request(client, r)
                    for r in batch.requests
                )
            )
            reply, _rid = decode_frame(encode_frame(responses))
            return list(reply.responses)

        return send_batch

    def evidence(samples):
        return [
            (s.label, s.failing, s.buffers, s.positions) for s in samples
        ]

    serial = make_server()
    base_samples = serial.collect_successful_traces(client, uid, start_seed)
    families = [("serial", serial, base_samples)]
    par = make_server(collection_parallelism=3)
    families.append(
        ("parallel", par, par.collect_successful_traces(client, uid, start_seed))
    )
    batched = make_server()
    families.append(
        (
            "batched-wire",
            batched,
            batched.collect_traces_via(
                lambda req: batched.handle_trace_request(client, req),
                uid,
                start_seed,
                send_batch=batch_transport(batched),
            ),
        )
    )
    want = evidence(base_samples)
    for label, server, samples in families[1:]:
        if evidence(samples) != want:
            raise InvariantViolation(
                "collect-evidence-equal",
                f"{label} collection diverged from serial: "
                f"{[s.label for s in samples]} vs "
                f"{[s.label for s in base_samples]}",
            )
        if server.stats.success_traces != serial.stats.success_traces:
            raise InvariantViolation(
                "collect-stats-equal",
                f"{label} counted {server.stats.success_traces} successes, "
                f"serial counted {serial.stats.success_traces}",
            )
    failing_sample = serial.sample_from_run("failure", failing_run)
    if p.get("adaptive_check", 1):
        # adaptive stopping must depend only on the sample prefix, never
        # on the transport that delivered it
        adaptive = {}
        for label, send_batch_of in (
            ("adaptive-serial", lambda s: None),
            ("adaptive-batched", batch_transport),
        ):
            server = make_server(stopping="stable-top", adaptive_min_traces=3)
            adaptive[label] = server.collect_traces_via(
                lambda req, s=server: s.handle_trace_request(client, req),
                uid,
                start_seed,
                send_batch=send_batch_of(server),
                failing_sample=failing_sample,
            )
        if evidence(adaptive["adaptive-serial"]) != evidence(
            adaptive["adaptive-batched"]
        ):
            raise InvariantViolation(
                "adaptive-transport-invariant",
                "adaptive stopping collected different evidence over "
                "serial vs batched transport: "
                f"{[s.label for s in adaptive['adaptive-serial']]} vs "
                f"{[s.label for s in adaptive['adaptive-batched']]}",
            )
    if p.get("digest_check", 1):
        digest = report_digest(
            api.diagnose(module, traces=[failing_sample, *base_samples]).report
        )
        for label, _server, samples in families[1:]:
            again = api.diagnose(module, traces=[failing_sample, *samples])
            invariants.check_digest_match(
                digest, report_digest(again.report), label
            )


# -- e2e: the whole pipeline -------------------------------------------------


def run_e2e(case: CheckCase) -> None:
    from repro import api
    from repro.core.cache import DiagnosisCaches
    from repro.core.checkpoints import observed
    from repro.fleet.server import report_digest
    from repro.fleet.wire import decode_value, encode_value, sample_from_dict, sample_to_dict
    from repro.runtime.client import SnorlaxClient
    from repro.runtime.server import SnorlaxServer

    rng = _rng(case)
    p = case.params
    module, truth, workload, kind = generator.gen_bug(rng, p)
    client = SnorlaxClient(module, workload)
    base = rng.randrange(1_000_000)
    failing_run = None
    for offset in range(max(1, p.get("seed_scan", 25))):
        run = client.run_once(base + offset)
        if run.failed:
            failing_run = run
            break
    if failing_run is None:
        raise CaseSkipped(f"no failing run in {p.get('seed_scan', 25)} seeds")
    server = SnorlaxServer(
        module,
        success_traces_wanted=max(1, p.get("successes", 4)),
        max_collection_attempts=300,
    )
    failing_sample = server.sample_from_run("failure", failing_run)
    successes = server.collect_successful_traces(
        client, failing_run.failure.failing_uid, start_seed=base + 10_000
    )
    samples = [failing_sample, *successes]
    observer = InvariantObserver(
        rng, solver_differential=bool(p.get("solver_diff", 1))
    )
    with observed(observer):
        result = api.diagnose(module, traces=samples)
    if observer.checks_by_point.get("pipeline.report", 0) == 0:
        raise InvariantViolation(
            "checkpoints-wired",
            "the diagnosis fired no pipeline.report checkpoint — the "
            "hook points have been disconnected",
        )
    report = result.report
    digest = report_digest(report)
    # ground truth: with the paper's evidence bound (10 successful
    # traces, §5) and a report the pipeline itself calls unambiguous,
    # the injected bug must sit in the top-F1 tier of the ranking — a
    # strictly better-scoring satellite would mean the scorer is
    # broken.  Losing only the *tie-break* (to an embedded sub-pair,
    # or to a satellite that happens to correlate perfectly for this
    # shape's timing) is legitimate statistics, so that is allowed.
    # When the report flags ambiguity ("manual inspection needed") or
    # evidence is scarce, nothing is asserted: random timing shapes,
    # unlike the tuned corpus, can leave the true pattern unwitnessed.
    full_evidence = len(successes) >= 10
    if kind == "deadlock":
        if report.bug_kind != "deadlock":
            raise InvariantViolation(
                "ground-truth-kind",
                f"injected a deadlock, diagnosed {report.bug_kind!r}",
            )
    elif full_evidence and report.unambiguous:
        truth_uids = truth.resolve(module)
        if not report.diagnosed:
            raise InvariantViolation(
                "ground-truth-diagnosed",
                f"injected {kind} bug produced no diagnosis "
                f"({len(samples)} samples)",
            )
        if report.ordered_target_uids() != truth_uids:
            top_f1 = report.ranked_patterns[0].f1
            tier = [
                [uid for uid, _role in s.signature.events]
                for s in report.ranked_patterns
                if s.f1 == top_f1
            ]
            if truth_uids not in tier:
                raise InvariantViolation(
                    "ground-truth-ranked",
                    f"injected uids {truth_uids} missing from the "
                    f"top-F1 tier (F1={top_f1:.3f}, "
                    f"{len(tier)} tied); diagnosed "
                    f"{report.ordered_target_uids()} "
                    f"(pattern {report.root_cause.signature})",
                )
    if p.get("cache_check", 1):
        caches = DiagnosisCaches()
        for label in ("cache-cold", "cache-warm"):
            again = api.diagnose(module, traces=samples, caches=caches)
            invariants.check_digest_match(
                digest, report_digest(again.report), label
            )
    if p.get("wire_check", 1):
        wired = []
        for s in samples:
            buf = bytearray()
            encode_value(sample_to_dict(s), buf)
            decoded, _pos = decode_value(bytes(buf))
            wired.append(sample_from_dict(decoded))
        via_wire = api.diagnose(module, traces=wired)
        invariants.check_digest_match(
            digest, report_digest(via_wire.report), "fleet-wire"
        )
    if p.get("store_check", 1):
        # store-backed differential: persisting fixpoints/traces and
        # rebinding them from disk (fresh in-memory LRUs each run, so
        # the second run can only hit via the store) must not change a
        # single digest byte vs the store-free baseline
        from repro.store import DiagnosisStore, persistent_caches

        with DiagnosisStore() as db:
            first = api.diagnose(
                module, traces=samples, caches=persistent_caches(db)
            )
            invariants.check_digest_match(
                digest, report_digest(first.report), "store-cold"
            )
            second = api.diagnose(
                module, traces=samples, caches=persistent_caches(db)
            )
            invariants.check_digest_match(
                digest, report_digest(second.report), "store-warm"
            )
            wrote = db.analysis_stats.writes + db.trace_stats.writes
            hydrated = db.analysis_stats.hits + db.trace_stats.hits
            if wrote > 0 and hydrated == 0:
                raise InvariantViolation(
                    "store-hydrates",
                    f"the first run persisted {wrote} payloads but the "
                    "second (fresh-LRU) run hydrated none of them from "
                    "the store",
                )


# -- validate: the reproduction loop -----------------------------------------


def run_validate(case: CheckCase) -> None:
    """Close-the-loop oracle on a generated bug.

    Two invariants: (1) the injected ground-truth order must validate —
    the failure fires under the forced order and not under the inverse;
    (2) when the pipeline's own top-F1 diagnosis names the true
    pattern, its directed replay must never refute it.  (A refuted
    *mis*diagnosis is the validator working as designed, not a
    violation.)
    """
    from repro import api
    from repro.runtime.client import SnorlaxClient
    from repro.runtime.server import SnorlaxServer
    from repro.validate.engine import validate_order, validate_report
    from repro.validate.synthesizer import TargetOrder

    rng = _rng(case)
    p = case.params
    module, truth, workload, kind = generator.gen_bug(rng, p)
    client = SnorlaxClient(module, workload)
    base = rng.randrange(1_000_000)
    failing_run = failing_seed = None
    for offset in range(max(1, p.get("seed_scan", 25))):
        run = client.run_once(base + offset)
        if run.failed:
            failing_run, failing_seed = run, base + offset
            break
    if failing_run is None:
        raise CaseSkipped(f"no failing run in {p.get('seed_scan', 25)} seeds")
    uid = failing_run.failure.failing_uid

    order = TargetOrder.from_truth(module, truth)
    outcome = validate_order(
        module, workload, order, failing_seed=failing_seed, expected_uid=uid
    )
    if outcome.status != "validated":
        detail = "; ".join(outcome.render().splitlines())
        raise InvariantViolation(
            "ground-truth-validates",
            f"injected {kind} bug (uids {order.uids}) did not validate: "
            f"{detail}",
        )

    if not p.get("report_check", 1):
        return
    # Diagnose through the production pipeline, then turn the validator
    # on the pipeline's own report.  A top-F1 report that names the
    # true pattern yet gets refuted by its directed replay means the
    # loop is broken on one side or the other.
    server = SnorlaxServer(
        module,
        success_traces_wanted=max(1, p.get("successes", 6)),
        max_collection_attempts=300,
    )
    failing_sample = server.sample_from_run("failure", failing_run)
    successes = server.collect_successful_traces(
        client, uid, start_seed=base + 10_000
    )
    report = api.diagnose(
        module, traces=[failing_sample, *successes]
    ).report
    verdict = validate_report(
        module, workload, report, failing_seed=failing_seed
    )
    if verdict is None:
        return  # nothing diagnosed (e.g. deadlock report) — vacuous
    if (
        verdict.status == "refuted"
        and report.ordered_target_uids() == truth.resolve(module)
    ):
        detail = "; ".join(verdict.render().splitlines())
        raise InvariantViolation(
            "no-refuted-top-f1",
            f"the top-F1 report names the injected {kind} pattern "
            f"{report.ordered_target_uids()} but its directed replay "
            f"refuted it: {detail}",
        )


# -- registry ----------------------------------------------------------------


@dataclass(frozen=True)
class StageSpec:
    name: str
    run: Callable[[CheckCase], None]
    defaults: dict[str, int]
    minimums: dict[str, int] = field(default_factory=dict)
    weight: int = 1  # share of cases in a mixed run


STAGES: dict[str, StageSpec] = {
    spec.name: spec
    for spec in (
        StageSpec(
            name="trace",
            run=run_trace,
            defaults={
                "threads": 4, "events": 12, "uids": 6, "desync_pct": 30,
                "zero_width_pct": 10, "anchor_fresh_pct": 30, "attaches": 2,
            },
            minimums={"threads": 1, "events": 1, "uids": 1},
            weight=30,
        ),
        StageSpec(
            name="stats",
            run=run_stats,
            defaults={
                "observations": 8, "failing": 3, "sigs": 5, "max_rank": 5,
                "dynamics_pct": 50,
            },
            minimums={"observations": 1, "sigs": 1, "max_rank": 1},
            weight=25,
        ),
        StageSpec(
            name="pointsto",
            run=run_pointsto,
            defaults={
                "vars": 12, "objs": 6, "copies": 10, "loads": 6, "stores": 6,
                "module_pct": 30, "kloc": 2, "quantum": 500, "iters": 6,
                "cold": 0,
            },
            minimums={"vars": 2, "objs": 1, "kloc": 1, "quantum": 350,
                      "iters": 4},
            weight=20,
        ),
        StageSpec(
            name="jobs",
            run=run_jobs,
            defaults={"jobs": 6, "fail_pct": 30, "workers": 2},
            minimums={"jobs": 1, "workers": 1},
            weight=10,
        ),
        StageSpec(
            name="collect",
            run=run_collect,
            defaults={
                "successes": 6, "seed_scan": 25, "quantum": 500, "iters": 6,
                "kloc": 2, "cold": 0, "adaptive_check": 1, "digest_check": 1,
            },
            minimums={"successes": 1, "seed_scan": 1, "quantum": 350,
                      "iters": 4, "kloc": 1},
            weight=10,
        ),
        StageSpec(
            name="e2e",
            run=run_e2e,
            defaults={
                "successes": 10, "seed_scan": 25, "quantum": 500, "iters": 6,
                "kloc": 2, "cold": 0, "solver_diff": 1, "cache_check": 1,
                "wire_check": 1, "store_check": 1,
            },
            minimums={"successes": 10, "seed_scan": 1, "quantum": 350,
                      "iters": 4, "kloc": 1},
            weight=15,
        ),
        StageSpec(
            name="validate",
            run=run_validate,
            defaults={
                "successes": 6, "seed_scan": 25, "quantum": 500, "iters": 6,
                "kloc": 2, "cold": 0, "report_check": 1,
            },
            minimums={"successes": 1, "seed_scan": 1, "quantum": 350,
                      "iters": 4, "kloc": 1},
            weight=10,
        ),
    )
}


def stage_names() -> list[str]:
    return list(STAGES)


def resolve_stages(names: list[str] | None) -> list[StageSpec]:
    if not names:
        return list(STAGES.values())
    unknown = [n for n in names if n not in STAGES]
    if unknown:
        raise ValueError(
            f"unknown stage(s) {unknown}; available: {stage_names()}"
        )
    return [STAGES[n] for n in names]
