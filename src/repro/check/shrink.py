"""The shrinking reducer: minimize a failing case, write a reproducer.

Because every case regenerates its artifacts from ``(seed, params)``,
shrinking is parameter descent: for each knob, try the floor, then
binary-search upward until the smallest still-failing value is found.
The seed never changes, so the shrunk case fails for the *same* reason
at a fraction of the size — a 2-thread, 3-event trace instead of a
4-thread, 12-event one reads like a unit test.

Reproducers land in ``benchmarks/out/check-failures/`` as three-field
JSON replayable with ``python -m repro.check --replay FILE``.
"""

from __future__ import annotations

import json
import traceback
from pathlib import Path

from repro.check.cases import CheckCase


def _failure_of(run, case: CheckCase) -> BaseException | None:
    """Run the case; return the exception it fails with, None if it
    passes.  CaseSkipped counts as passing — a shrink step must not
    turn a real failure into a vacuous case."""
    from repro.check.stages import CaseSkipped

    try:
        run(case)
    except CaseSkipped:
        return None
    except BaseException as exc:  # noqa: BLE001 — any failure shrinks
        return exc
    return None


def shrink_case(
    case: CheckCase,
    run,
    minimums: dict[str, int] | None = None,
    max_attempts: int = 150,
) -> tuple[CheckCase, BaseException]:
    """Minimize ``case`` while it keeps failing under ``run``.

    Returns the smallest failing case found and its exception.  The
    original must fail (ValueError otherwise).
    """
    minimums = minimums or {}
    failure = _failure_of(run, case)
    if failure is None:
        raise ValueError(f"cannot shrink a passing case: {case.describe()}")
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for name in sorted(case.params):
            floor = minimums.get(name, 0)
            value = case.params[name]
            if value <= floor:
                continue
            # try the floor first (the biggest single jump), then halve
            # the remaining distance while the case still fails
            candidates = [floor]
            span = value - floor
            while span > 1:
                span //= 2
                candidates.append(value - span)
            for candidate in candidates:
                if candidate >= value:
                    continue
                attempts += 1
                trial = case.with_param(name, candidate)
                exc = _failure_of(run, trial)
                if exc is not None:
                    case, failure = trial, exc
                    improved = True
                    break
                if attempts >= max_attempts:
                    break
            if attempts >= max_attempts:
                break
    return case, failure


def write_reproducer(
    out_dir: str | Path, case: CheckCase, error: BaseException
) -> Path:
    """Persist one shrunk failing case as a replayable JSON file."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{case.stage}-seed{case.seed}.json"
    payload = {
        **case.as_dict(),
        "error": f"{type(error).__name__}: {error}",
        "traceback": traceback.format_exception(
            type(error), error, error.__traceback__
        )[-4:],
        "replay": f"PYTHONPATH=src python -m repro.check --replay {path}",
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
