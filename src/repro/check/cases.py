"""The unit of self-checking: one seeded, parameterized case.

A case is fully described by ``(stage, seed, params)`` — the stage
regenerates every artifact from the seed, so shrinking is just "rerun
with smaller knobs" and a reproducer file is a three-field JSON object.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CheckCase:
    stage: str
    seed: int
    params: dict[str, int] = field(default_factory=dict)

    def with_param(self, name: str, value: int) -> "CheckCase":
        params = dict(self.params)
        params[name] = value
        return replace(self, params=params)

    def size(self) -> int:
        """The shrink objective: total knob volume."""
        return sum(self.params.values())

    def describe(self) -> str:
        knobs = " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.stage}[seed={self.seed}] {knobs}"

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "seed": self.seed,
            "params": dict(sorted(self.params.items())),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CheckCase":
        return cls(
            stage=d["stage"],
            seed=int(d["seed"]),
            params={k: int(v) for k, v in d.get("params", {}).items()},
        )

    @classmethod
    def from_json(cls, text: str) -> "CheckCase":
        return cls.from_dict(json.loads(text))
