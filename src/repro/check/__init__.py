"""repro.check — differential/invariant fuzzing for the diagnosis pipeline.

The paper's product is a *correct* root cause from one failure, so the
pipeline's correctness is the thing to test — not just on the fixed
54-bug corpus, but on randomized programs, schedules, traces, and
evidence.  This package is that harness:

* :mod:`repro.check.generator` — seeded generators of random IR
  programs with injected bug patterns (known ground truth), synthetic
  decoded thread traces, pattern-evidence observations, and job-queue
  workloads.
* :mod:`repro.check.invariants` — the oracle layer: partial-order
  sanity, processed-trace structural invariants, Andersen-optimized ≡
  Andersen-naive ≡ (⊆ Steensgaard) equivalence, F1 scores recomputable
  from raw observations, digest equality across cache and fleet paths.
* :mod:`repro.check.stages` — one checkable stage family per pipeline
  layer (``trace``, ``stats``, ``pointsto``, ``jobs``, ``e2e``), each a
  pure function of a :class:`~repro.check.cases.CheckCase`.
* :mod:`repro.check.shrink` — a reducer that minimizes a failing case's
  knobs and writes a replayable reproducer to
  ``benchmarks/out/check-failures/``.
* :mod:`repro.check.runner` / ``python -m repro.check`` — the driver.

Everything is deterministic in ``(stage, seed, params)``: a reproducer
file replays bit-for-bit with ``python -m repro.check --replay FILE``.
"""

from repro.check.cases import CheckCase
from repro.check.invariants import InvariantViolation
from repro.check.runner import CheckStats, run_check
from repro.check.shrink import shrink_case, write_reproducer
from repro.check.stages import STAGES, stage_names

__all__ = [
    "CheckCase",
    "CheckStats",
    "InvariantViolation",
    "STAGES",
    "run_check",
    "shrink_case",
    "stage_names",
    "write_reproducer",
]
