"""Seeded generators of randomized check inputs.

Every generator is a pure function of ``(random.Random, params)``: the
same seed and knobs regenerate the same artifact, which is what makes
shrinking and replay possible.  Four families:

* :func:`gen_bug` — a randomized IR program with an injected bug
  pattern (order violation / atomicity violation / deadlock) and its
  known ground truth, built from the corpus bug templates with a
  randomized app vocabulary, timing quantum, and size.
* :func:`gen_thread_traces` / :func:`gen_anchor` — synthetic decoded
  per-thread traces (desynced threads, zero-width instants, shared
  uids) plus an anchor position, for trace-processing cases.
* :func:`gen_observations` — randomized step-7 evidence: pattern
  signatures with varying ranks, dynamics, and failing/success spread.
* :func:`gen_constraint_system` — a random Andersen/Steensgaard input,
  either purely synthetic or derived from a generated program.
"""

from __future__ import annotations

import random

from repro.core.constraints import AbstractObject, ConstraintSystem
from repro.core.patterns import PatternInstance, PatternSignature
from repro.core.statistics import ExecutionObservation
from repro.corpus.appkit import AppProfile
from repro.corpus.templates import TEMPLATES, BugShape
from repro.corpus.templates_sync import PRIMITIVE_TEMPLATES
from repro.pt.decoder import DynamicInstruction, ThreadTrace

_STRUCTS = ["Conn", "Txn", "Pool", "Buf", "Node", "Job", "Chan", "Slot"]
# "len" is reserved: the RWW template adds its own ("len", I64) field
# to the target struct, so a vocabulary collision would build an
# invalid module (duplicate field)
_FIELDS = ["data", "state", "next", "count", "refs", "owner", "head", "gen"]
_GLOBALS = ["g_conn", "g_pool", "g_ring", "g_tab", "g_cfg", "g_log"]
_FUNCS = ["worker", "flusher", "reaper", "reader", "committer", "scanner"]
_APPS = ["relay", "vault", "mesh", "forge", "lathe", "prism", "drift", "ember"]
_KINDS = tuple(TEMPLATES)  # WR RW WW RWR WWR RWW WRW deadlock
_ALL_TEMPLATES = {**TEMPLATES, **PRIMITIVE_TEMPLATES}

# A primitive-family filter rides in ``CheckCase.params`` as a bitmask
# (every knob is an int so the shrinker can descend on it); 0 means
# "no filter".
PRIMITIVE_BITS = {
    "condvar": 1, "rwlock": 2, "sema": 4, "barrier": 8, "mutex": 16,
}
_KINDS_BY_PRIMITIVE = {
    "condvar": ("lost-wakeup",),
    "rwlock": ("rw-race",),
    "sema": ("sema-underflow",),
    "barrier": ("barrier-phase",),
    # the classic two-lock deadlock and the three-lock chain both
    # exercise plain mutexes
    "mutex": ("deadlock", "lock-chain"),
}


def primitives_mask(names) -> int:
    """Encode primitive names (``condvar``, ``rwlock``, ``sema``,
    ``barrier``, ``mutex``) as the params bitmask."""
    mask = 0
    for name in names:
        try:
            mask |= PRIMITIVE_BITS[name]
        except KeyError:
            raise ValueError(
                f"unknown primitive {name!r}; available: "
                f"{', '.join(PRIMITIVE_BITS)}"
            ) from None
    return mask


def primitive_names(mask: int) -> tuple[str, ...]:
    """Decode the bitmask; 0 selects every primitive family."""
    if not mask:
        return tuple(PRIMITIVE_BITS)
    return tuple(n for n, bit in PRIMITIVE_BITS.items() if mask & bit)


def kinds_for_primitives(mask: int) -> tuple[str, ...]:
    """Template kinds for the bug-generating stages: the classic corpus
    patterns when no filter is set, else the table-4 classes of the
    selected primitive families."""
    if not mask:
        return _KINDS
    kinds: list[str] = []
    for name, bit in PRIMITIVE_BITS.items():
        if mask & bit:
            kinds.extend(
                k for k in _KINDS_BY_PRIMITIVE[name] if k not in kinds
            )
    return tuple(kinds)


def gen_shape(rng: random.Random, params: dict[str, int]) -> BugShape:
    """A randomized app vocabulary + timing for one templated bug."""
    n = rng.randrange(10_000)
    app = rng.choice(_APPS)
    profile = AppProfile(
        name=f"{app}{n}",
        language=rng.choice(["C/C++", "Java"]),
        main_file=f"src/{app}.c",
        kloc=max(1, params.get("kloc", 2)),
        seed=rng.randrange(1 << 30),
    )
    fields = rng.sample(_FIELDS, 2)
    funcs = rng.sample(_FUNCS, 3)
    return BugShape(
        profile=profile,
        bug_id=f"check-{n}",
        file=f"src/{app}_{rng.choice(['core', 'io', 'sched'])}.c",
        struct_name=rng.choice(_STRUCTS),
        target_field=fields[0],
        aux_field=fields[1],
        global_name=rng.choice(_GLOBALS),
        worker_name=funcs[0],
        rival_name=funcs[1],
        helper_name=funcs[2],
        base_line=rng.randrange(20, 400),
        # the corpus regime: dT scales of a few hundred us, randomized
        # in [q, 2q) so every case exercises a different timing ratio
        quantum_us=(lambda q: q + rng.randrange(q))(
            max(1, params.get("quantum", 300))
        ),
        iters=max(3, params.get("iters", 6)),
        cold_code=bool(params.get("cold", 0)),
    )


def gen_bug(
    rng: random.Random, params: dict[str, int], kinds: tuple[str, ...] = _KINDS
):
    """Build one randomized bug: ``(module, ground_truth, workload, kind)``."""
    kind = kinds[rng.randrange(len(kinds))]
    shape = gen_shape(rng, params)
    module, truth, workload = _ALL_TEMPLATES[kind](shape)
    return module, truth, workload, kind


# -- synthetic decoded traces ------------------------------------------------


def gen_thread_traces(
    rng: random.Random, params: dict[str, int]
) -> dict[int, ThreadTrace]:
    """Synthetic per-thread decoded traces sharing a uid pool.

    Mimics the decoder's output shape: per-thread seq order, monotone
    ``t_lo``, intervals of varying width (including the zero-width
    instants timing-packet-adjacent instructions get), and some threads
    fully desynced (no PSB found: nothing decoded).
    """
    threads = max(1, params.get("threads", 4))
    events = max(1, params.get("events", 12))
    uid_pool = [100 + i for i in range(max(1, params.get("uids", 6)))]
    desync_pct = params.get("desync_pct", 30)
    zero_pct = params.get("zero_width_pct", 10)
    traces: dict[int, ThreadTrace] = {}
    for tid in range(1, threads + 1):
        tt = ThreadTrace(tid)
        tt.desync = rng.randrange(100) < desync_pct
        t = rng.randrange(0, 2_000)
        for seq in range(events):
            t += rng.randrange(1, 4_000)
            width = 0 if rng.randrange(100) < zero_pct else rng.randrange(
                1, 6_000
            )
            uid = rng.choice(uid_pool)
            inst = DynamicInstruction(uid, tid, seq, t, t + width)
            tt.instructions.append(inst)
            tt.executed_uids.add(uid)
            tt.end_time = max(tt.end_time, t + width)
        tt.timing_times = sorted(
            rng.randrange(0, tt.end_time + 1) for _ in range(3)
        )
        traces[tid] = tt
    return traces


def gen_anchor(
    rng: random.Random,
    traces: dict[int, ThreadTrace],
    params: dict[str, int],
) -> tuple[int, int | None, int | None]:
    """An anchor position: sometimes a decoded uid (whose bucket the
    anchor must merge into in order), sometimes a fresh PC; the thread
    may be decoded, desynced, fresh, or left for ``_position_thread``;
    the timestamp lands anywhere in the window — often *before* decoded
    instances of the same uid."""
    decoded_uids = sorted(
        {d.uid for tt in traces.values() if not tt.desync
         for d in tt.instructions}
    )
    fresh_pct = params.get("anchor_fresh_pct", 30)
    if decoded_uids and rng.randrange(100) >= fresh_pct:
        uid = rng.choice(decoded_uids)
    else:
        uid = 9_000 + rng.randrange(100)
    roll = rng.randrange(100)
    tid: int | None
    if roll < 60:
        tid = rng.choice(sorted(traces))  # any thread, desynced included
    elif roll < 80:
        tid = 90 + rng.randrange(8)  # a thread the decoder never saw
    else:
        tid = None
    end = max((tt.end_time for tt in traces.values()), default=1)
    time = rng.randrange(0, end + 1) if rng.randrange(100) < 85 else None
    return uid, tid, time


# -- step-7 evidence ---------------------------------------------------------

_PAIR_KINDS = ("WR", "RW", "WW")
_TRIPLE_KINDS = ("RWR", "WWR", "RWW", "WRW")


def gen_signatures(
    rng: random.Random, count: int
) -> list[PatternSignature]:
    sigs: list[PatternSignature] = []
    for i in range(count):
        base = 200 + 10 * i
        if rng.randrange(100) < 60:
            kind = rng.choice(_PAIR_KINDS)
            events = ((base, kind[0]), (base + 1, kind[1]))
            shape = "ab"
        else:
            kind = rng.choice(_TRIPLE_KINDS)
            events = (
                (base, kind[0]), (base + 1, kind[1]), (base + 2, kind[2])
            )
            shape = "aba"
        sigs.append(PatternSignature(kind, events, shape))
    return sigs


def _gen_instance(
    rng: random.Random, sig: PatternSignature, max_rank: int, dynamics_pct: int
) -> PatternInstance:
    dynamics = []
    t = rng.randrange(0, 5_000)
    for i, (uid, _role) in enumerate(sig.events):
        if rng.randrange(100) < dynamics_pct:
            t += rng.randrange(1, 3_000)
            dynamics.append(
                DynamicInstruction(uid, 1 + i % 2, i, t, t + rng.randrange(500))
            )
        else:
            dynamics.append(None)
    return PatternInstance(sig, tuple(dynamics), 1 + rng.randrange(max_rank))


def gen_observations(
    rng: random.Random, params: dict[str, int]
) -> list[ExecutionObservation]:
    """Randomized step-7 evidence: each observation exhibits a random
    subset of a shared signature pool, with per-observation instance
    ranks (1..max_rank) and partially-populated dynamics."""
    total = max(1, params.get("observations", 8))
    failing = min(total, max(0, params.get("failing", 3)))
    sigs = gen_signatures(rng, max(1, params.get("sigs", 5)))
    max_rank = max(1, params.get("max_rank", 5))
    dynamics_pct = params.get("dynamics_pct", 50)
    out: list[ExecutionObservation] = []
    for i in range(total):
        is_failing = i < failing
        obs = ExecutionObservation(
            label=("failure" if is_failing else "success") + f"-{i}",
            failing=is_failing,
        )
        for sig in sigs:
            if rng.randrange(100) < 70:
                obs.signatures.add(sig)
                obs.instances[sig] = _gen_instance(
                    rng, sig, max_rank, dynamics_pct
                )
        out.append(obs)
    return out


# -- constraint systems ------------------------------------------------------


def gen_constraint_system(
    rng: random.Random, params: dict[str, int]
) -> ConstraintSystem:
    """A random inclusion-constraint system over opaque tokens.

    Exercises the solvers' graph machinery (cycles included — copies
    are sampled with replacement, so ``a = b; b = a`` chains appear)
    without needing an executable program.
    """
    n_vars = max(2, params.get("vars", 12))
    n_objs = max(1, params.get("objs", 6))
    variables = [f"v{i}" for i in range(n_vars)]
    objects = [
        AbstractObject(rng.choice(["heap", "stack", "global"]), 500 + i, f"o{i}")
        for i in range(n_objs)
    ]
    system = ConstraintSystem()
    for obj in objects:
        system.objects[obj.uid] = obj
        system.add_addr_of(rng.choice(variables), obj)
    for _ in range(params.get("copies", 10)):
        system.copies.append(
            (rng.choice(variables), rng.choice(variables))
        )
    for _ in range(params.get("loads", 6)):
        system.loads.append((rng.choice(variables), rng.choice(variables)))
    for _ in range(params.get("stores", 6)):
        system.stores.append((rng.choice(variables), rng.choice(variables)))
    return system
