"""The check-run driver: allocate cases to stages, run, shrink, report.

A run is deterministic in ``(seed, cases, stages)``: stage allocation
and every per-case seed derive from one master RNG.  Failures are
shrunk and written to the output directory; the run's counters and
per-case spans flow through an :class:`repro.obs.Observability` bundle
so a check run is observable exactly like a fleet run
(``check_*`` counter vocabulary, ``check_case`` spans).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.check.cases import CheckCase
from repro.check.shrink import shrink_case, write_reproducer
from repro.check.stages import CaseSkipped, StageSpec, resolve_stages
from repro.obs import Observability, resolve_obs

DEFAULT_OUT_DIR = "benchmarks/out/check-failures"


@dataclass
class CaseFailure:
    original: CheckCase
    shrunk: CheckCase
    error: str
    reproducer: Path | None


@dataclass
class CheckStats:
    cases: int = 0
    passed: int = 0
    failed: int = 0
    skipped: int = 0
    seconds: float = 0.0
    by_stage: dict[str, int] = field(default_factory=dict)
    failures: list[CaseFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def as_counters(self, prefix: str = "check_") -> dict[str, int]:
        """The unified ``check_*`` counter vocabulary (see
        :meth:`repro.obs.MetricsRegistry.absorb_check_stats`)."""
        counters = {
            f"{prefix}cases": self.cases,
            f"{prefix}passed": self.passed,
            f"{prefix}failed": self.failed,
            f"{prefix}skipped": self.skipped,
        }
        for stage, n in sorted(self.by_stage.items()):
            counters[f"{prefix}stage_{stage}_cases"] = n
        return counters

    def render(self) -> str:
        per_stage = " ".join(
            f"{stage}:{n}" for stage, n in sorted(self.by_stage.items())
        )
        lines = [
            f"checked {self.cases} cases in {self.seconds:.1f}s "
            f"({per_stage})",
            f"passed {self.passed}, failed {self.failed}, "
            f"skipped {self.skipped}",
        ]
        for f in self.failures:
            lines.append(f"FAIL {f.shrunk.describe()}")
            lines.append(f"     {f.error}")
            if f.reproducer is not None:
                lines.append(f"     reproducer: {f.reproducer}")
        return "\n".join(lines)


def run_case(spec: StageSpec, case: CheckCase) -> BaseException | None:
    """One case; returns its failure (None = passed), CaseSkipped
    propagates."""
    try:
        spec.run(case)
    except CaseSkipped:
        raise
    except BaseException as exc:  # noqa: BLE001 — every failure counts
        return exc
    return None


def run_check(
    cases: int = 200,
    seed: int = 0,
    stages: list[str] | None = None,
    out_dir: str | Path = DEFAULT_OUT_DIR,
    shrink: bool = True,
    max_failures: int = 5,
    obs: Observability | None = None,
    progress=None,
    overrides: dict[str, int] | None = None,
) -> CheckStats:
    """Run ``cases`` randomized cases across the selected stages.

    Stops collecting new failures after ``max_failures`` (each one is
    shrunk, which re-runs the stage many times).  ``progress`` is an
    optional ``callable(i, case)`` for CLI feedback.  ``overrides``
    pins generation knobs (e.g. the ``primitives`` bitmask from
    ``--primitives``); a stage only picks up the knobs it declares in
    its defaults.
    """
    specs = resolve_stages(stages)
    master = random.Random(seed)
    resolved = resolve_obs(obs)
    stats = CheckStats()
    started = time.perf_counter()
    weights = [s.weight for s in specs]
    for i in range(cases):
        spec = master.choices(specs, weights=weights)[0]
        params = dict(spec.defaults)
        if overrides:
            params.update(
                {k: v for k, v in overrides.items() if k in spec.defaults}
            )
        case = CheckCase(
            stage=spec.name,
            seed=master.randrange(1 << 30),
            params=params,
        )
        if progress is not None:
            progress(i, case)
        stats.cases += 1
        stats.by_stage[spec.name] = stats.by_stage.get(spec.name, 0) + 1
        with resolved.tracer.span(
            "check_case", stage=spec.name, case_seed=case.seed
        ) as span:
            try:
                error = run_case(spec, case)
            except CaseSkipped:
                stats.skipped += 1
                span.set(outcome="skipped")
                continue
            if error is None:
                stats.passed += 1
                span.set(outcome="passed")
                continue
            stats.failed += 1
            span.set(outcome="failed", error=type(error).__name__)
        shrunk, final_error = case, error
        if shrink:
            try:
                shrunk, final_error = shrink_case(
                    case, spec.run, spec.minimums
                )
            except ValueError:
                # flaky under re-run (e.g. a timing-sensitive queue
                # case); keep the original as the reproducer
                pass
        reproducer = write_reproducer(out_dir, shrunk, final_error)
        stats.failures.append(
            CaseFailure(
                original=case,
                shrunk=shrunk,
                error=f"{type(final_error).__name__}: {final_error}",
                reproducer=reproducer,
            )
        )
        if stats.failed >= max_failures:
            break
    stats.seconds = time.perf_counter() - started
    resolved.registry.absorb_check_stats(stats)
    return stats


def replay(path: str | Path) -> BaseException | None:
    """Re-run a reproducer file; returns its failure, None if fixed."""
    from repro.check.stages import STAGES

    case = CheckCase.from_json(Path(path).read_text())
    spec = STAGES[case.stage]
    try:
        return run_case(spec, case)
    except CaseSkipped as skip:
        return skip
