"""The checkpoint observer: in-situ invariant checks during a diagnosis.

Installed via :func:`repro.core.checkpoints.observed` for the span of
one end-to-end case, it receives every stage's real artifacts and runs
the matching oracles from :mod:`repro.check.invariants`.  The Andersen
differential re-solves the constraint system naively, so it is gated on
system size to keep a 300-case run CI-sized.
"""

from __future__ import annotations

import random

from repro.check import invariants


class InvariantObserver:
    """Dispatches checkpoint announcements to stage oracles."""

    def __init__(
        self,
        rng: random.Random | None = None,
        solver_differential: bool = True,
        max_differential_constraints: int = 6_000,
    ):
        self.rng = rng or random.Random(0)
        self.solver_differential = solver_differential
        self.max_differential_constraints = max_differential_constraints
        self.checks = 0
        self.checks_by_point: dict[str, int] = {}

    def __call__(self, point: str, payload: dict) -> None:
        handler = getattr(self, "_" + point.replace(".", "_"), None)
        if handler is None:
            return
        handler(payload)
        self.checks += 1
        self.checks_by_point[point] = self.checks_by_point.get(point, 0) + 1

    # -- per-point handlers ----------------------------------------------

    def _trace_processing_process_snapshot(self, payload: dict) -> None:
        invariants.check_processed_trace(payload["trace"], rng=self.rng)

    def _pipeline_trace(self, payload: dict) -> None:
        # after anchors and blocked attempts were attached: the trace
        # must still satisfy every structural invariant
        invariants.check_processed_trace(payload["trace"], rng=self.rng)

    def _andersen_solve(self, payload: dict) -> None:
        if not self.solver_differential:
            return
        system = payload["system"]
        size = (
            len(system.copies) + len(system.loads) + len(system.stores)
            + len(system.addr_of)
        )
        if size > self.max_differential_constraints:
            return
        invariants.check_andersen_equivalence(system, payload["result"])
        invariants.check_steensgaard_superset(system, payload["result"])

    def _statistics_score_patterns(self, payload: dict) -> None:
        invariants.check_scores(payload["observations"], payload["scored"])

    def _pipeline_report(self, payload: dict) -> None:
        invariants.check_report_sanity(payload["report"])
