"""The oracle layer: what must be true of every stage's artifacts.

Each ``check_*`` function takes real pipeline artifacts and raises
:class:`InvariantViolation` naming the broken invariant.  The oracles
are deliberately *independent re-derivations* — ``ref_before`` re-states
the partial order from the paper's definition instead of calling
``DynamicInstruction.before``, score recomputation re-counts supports
from the raw observations instead of trusting ``ScoredPattern`` — so a
bug in the production code cannot hide in a shared helper.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.andersen import AndersenResult, solve_naive
from repro.core.constraints import ConstraintSystem
from repro.core.statistics import (
    ExecutionObservation,
    ScoredPattern,
)
from repro.core.steensgaard import solve as steensgaard_solve
from repro.core.trace_processing import ProcessedTrace
from repro.pt.decoder import DynamicInstruction, ThreadTrace


class InvariantViolation(AssertionError):
    """A named pipeline invariant does not hold on a real artifact."""

    def __init__(self, invariant: str, message: str):
        self.invariant = invariant
        super().__init__(f"[{invariant}] {message}")


def _violate(invariant: str, message: str) -> None:
    raise InvariantViolation(invariant, message)


# -- partial order (paper §4.1) ----------------------------------------------


def ref_before(a: DynamicInstruction, b: DynamicInstruction) -> bool:
    """Independent restatement of the §4.1 partial order: same-thread
    instructions follow program (decode) order; cross-thread ones are
    ordered iff their time intervals are disjoint."""
    if a.tid == b.tid:
        return a.seq < b.seq
    return a.t_hi <= b.t_lo


def _degenerate_pair(a: DynamicInstruction, b: DynamicInstruction) -> bool:
    """Two zero-width instants at the same timestamp: the ``[t, t)``
    degenerate intervals that synthesized anchors / blocked lock
    attempts produce.  ``before`` holds both ways for them — the one
    carve-out from antisymmetry."""
    return a.t_lo == a.t_hi == b.t_lo == b.t_hi


def check_partial_order(
    dynamic: Sequence[DynamicInstruction],
    rng: random.Random | None = None,
    sample_pairs: int = 500,
) -> None:
    """Interval sanity, ``before`` ≡ the reference order, antisymmetry
    (modulo degenerate equal instants), and symmetric concurrency."""
    for d in dynamic:
        if d.t_lo > d.t_hi:
            _violate(
                "interval-sane",
                f"uid={d.uid} tid={d.tid}: t_lo={d.t_lo} > t_hi={d.t_hi}",
            )
    seen: set[tuple[int, int]] = set()
    for d in dynamic:
        key = (d.tid, d.seq)
        if key in seen:
            _violate(
                "seq-unique", f"duplicate (tid={d.tid}, seq={d.seq}) instance"
            )
        seen.add(key)
    n = len(dynamic)
    if n < 2:
        return
    pairs: Iterable[tuple[int, int]]
    if rng is None or n * (n - 1) // 2 <= sample_pairs:
        pairs = ((i, j) for i in range(n) for j in range(i + 1, n))
    else:
        pairs = (
            (rng.randrange(n), rng.randrange(n)) for _ in range(sample_pairs)
        )
    for i, j in pairs:
        a, b = dynamic[i], dynamic[j]
        if a is b:
            continue
        ab, ba = a.before(b), b.before(a)
        if ab != ref_before(a, b) or ba != ref_before(b, a):
            _violate(
                "order-matches-reference",
                f"before() disagrees with the §4.1 definition for "
                f"({a.uid}@{a.tid}, {b.uid}@{b.tid})",
            )
        if ab and ba and not _degenerate_pair(a, b):
            _violate(
                "order-antisymmetric",
                f"both orders hold for uid={a.uid}@tid={a.tid} "
                f"[{a.t_lo},{a.t_hi}) and uid={b.uid}@tid={b.tid} "
                f"[{b.t_lo},{b.t_hi})",
            )


# -- processed traces (steps 2-3) --------------------------------------------


def check_processed_trace(
    trace: ProcessedTrace,
    thread_traces: dict[int, ThreadTrace] | None = None,
    rng: random.Random | None = None,
) -> None:
    """Structural invariants of a :class:`ProcessedTrace`.

    * every dynamic instruction's thread is registered in ``threads``
      (the anchor's too — even when its thread's trace was desynced);
    * ``executed_uids`` ⊇ the uids of the dynamic trace (and of every
      non-desynced input thread trace, when given);
    * ``by_uid`` partitions ``dynamic`` exactly, each bucket sorted by
      ``(t_lo, seq)`` — the order ``instances()`` consumers rely on;
    * the anchor(s), when set, are members of the dynamic trace;
    * the partial order is sane (see :func:`check_partial_order`).
    """
    dynamic_tids = {d.tid for d in trace.dynamic}
    missing_tids = dynamic_tids - trace.threads
    if missing_tids:
        _violate(
            "threads-cover-dynamic",
            f"tids {sorted(missing_tids)} appear in the dynamic trace but "
            f"not in threads={sorted(trace.threads)}",
        )
    dynamic_uids = {d.uid for d in trace.dynamic}
    missing_uids = dynamic_uids - trace.executed_uids
    if missing_uids:
        _violate(
            "executed-covers-dynamic",
            f"uids {sorted(missing_uids)} appear in the dynamic trace but "
            f"not in executed_uids",
        )
    if thread_traces is not None:
        for tid, tt in thread_traces.items():
            if tt.desync:
                continue
            missing = tt.executed_uids - trace.executed_uids
            if missing:
                _violate(
                    "executed-covers-inputs",
                    f"thread {tid}: decoded uids {sorted(missing)[:8]} "
                    f"missing from executed_uids",
                )
    by_uid_members: list[DynamicInstruction] = []
    for uid, bucket in trace.by_uid.items():
        for d in bucket:
            if d.uid != uid:
                _violate(
                    "by-uid-keyed",
                    f"instance uid={d.uid} filed under by_uid[{uid}]",
                )
        by_uid_members.extend(bucket)
        keys = [(d.t_lo, d.seq) for d in bucket]
        if keys != sorted(keys):
            _violate(
                "by-uid-sorted",
                f"by_uid[{uid}] not sorted by (t_lo, seq): {keys}",
            )
    if len(by_uid_members) != len(trace.dynamic) or {
        id(d) for d in by_uid_members
    } != {id(d) for d in trace.dynamic}:
        _violate(
            "by-uid-partitions-dynamic",
            f"by_uid holds {len(by_uid_members)} instances, dynamic holds "
            f"{len(trace.dynamic)}",
        )
    dynamic_ids = {id(d) for d in trace.dynamic}
    for anchor in [trace.anchor, *trace.anchors]:
        if anchor is not None and id(anchor) not in dynamic_ids:
            _violate(
                "anchor-in-dynamic",
                f"anchor uid={anchor.uid} tid={anchor.tid} is not part of "
                f"the dynamic trace",
            )
    check_partial_order(trace.dynamic, rng=rng)


# -- points-to (step 4) ------------------------------------------------------


def _query_nodes(system: ConstraintSystem) -> set:
    nodes = set(system.addr_of)
    for dst, src in system.copies:
        nodes.add(dst)
        nodes.add(src)
    for dst, src in system.loads:
        nodes.add(dst)
        nodes.add(src)
    for dst, src in system.stores:
        nodes.add(dst)
        nodes.add(src)
    return nodes


def check_andersen_equivalence(
    system: ConstraintSystem, optimized: AndersenResult
) -> None:
    """The SCC-collapsing/delta solver computes the same points-to sets
    as the textbook worklist solver, value-for-value and object
    contents-for-contents."""
    naive = solve_naive(system)
    for node in _query_nodes(system):
        a, b = optimized.points_to(node), naive.points_to(node)
        if a != b:
            _violate(
                "andersen-optimized-equals-naive",
                f"pts({node}) differs: optimized={sorted(map(str, a))} "
                f"naive={sorted(map(str, b))}",
            )
    for obj in system.objects.values():
        a, b = optimized.contents_of(obj), naive.contents_of(obj)
        if a != b:
            _violate(
                "andersen-contents-equal",
                f"contents({obj}) differs: optimized={sorted(map(str, a))} "
                f"naive={sorted(map(str, b))}",
            )


def check_steensgaard_superset(
    system: ConstraintSystem, andersen: AndersenResult
) -> None:
    """Unification is coarser than inclusion: every Andersen points-to
    set must be contained in the Steensgaard set for the same value."""
    steens = steensgaard_solve(system)
    for node in _query_nodes(system):
        a = andersen.points_to(node)
        if not a:
            continue
        s = steens.points_to(node)
        if not a <= s:
            _violate(
                "andersen-within-steensgaard",
                f"pts({node}): andersen={sorted(map(str, a))} not within "
                f"steensgaard={sorted(map(str, s))}",
            )


# -- statistical diagnosis (step 7) ------------------------------------------


def check_scores(
    observations: list[ExecutionObservation], scored: list[ScoredPattern]
) -> None:
    """Every F1 score is recomputable from the raw observations, ranks
    are true minima, and the example honors failing-run preference then
    rank.  Mirrors the documented semantics of ``score_patterns``."""
    failing_total = sum(1 for o in observations if o.failing)
    if failing_total == 0:
        if scored:
            _violate(
                "scores-need-failures",
                f"{len(scored)} patterns scored with zero failing runs",
            )
        return
    all_sigs = {sig for o in observations for sig in o.signatures}
    scored_sigs = {s.signature for s in scored}
    if scored_sigs != all_sigs:
        _violate(
            "scores-cover-signatures",
            f"scored {len(scored_sigs)} signatures, observations exhibit "
            f"{len(all_sigs)}",
        )
    for s in scored:
        sig = s.signature
        fail_support = sum(
            1 for o in observations if o.failing and sig in o.signatures
        )
        ok_support = sum(
            1 for o in observations if not o.failing and sig in o.signatures
        )
        present = fail_support + ok_support
        precision = fail_support / present if present else 0.0
        recall = fail_support / failing_total
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        for name, got, want in (
            ("failing_support", s.failing_support, fail_support),
            ("success_support", s.success_support, ok_support),
        ):
            if got != want:
                _violate(
                    "support-recount",
                    f"{sig}: {name}={got}, raw observations say {want}",
                )
        for name, got, want in (
            ("precision", s.precision, precision),
            ("recall", s.recall, recall),
            ("f1", s.f1, f1),
        ):
            if abs(got - want) > 1e-9:
                _violate(
                    "f1-recomputable",
                    f"{sig}: {name}={got!r}, recomputed {want!r}",
                )
        witnesses = [
            (o, o.instances[sig]) for o in observations if sig in o.instances
        ]
        if witnesses:
            true_rank = min(inst.rank for _, inst in witnesses)
            if s.rank != true_rank:
                _violate(
                    "rank-is-minimum",
                    f"{sig}: rank={s.rank}, true minimum over "
                    f"{len(witnesses)} instances is {true_rank}",
                )
            if s.example is None:
                _violate("example-present", f"{sig}: no example selected")
            failing_w = [
                inst for o, inst in witnesses if o.failing
            ]
            if failing_w:
                if not any(s.example is inst for inst in failing_w):
                    _violate(
                        "example-prefers-failing",
                        f"{sig}: example comes from a successful run while "
                        f"{len(failing_w)} failing instances exist",
                    )
                best = min(inst.rank for inst in failing_w)
                if s.example.rank != best:
                    _violate(
                        "example-honors-rank",
                        f"{sig}: example rank={s.example.rank}, best "
                        f"failing-run rank is {best}",
                    )
            else:
                if s.example.rank != true_rank:
                    _violate(
                        "example-honors-rank",
                        f"{sig}: example rank={s.example.rank}, best "
                        f"rank is {true_rank}",
                    )
    keys = [
        (-s.f1, len(s.signature.events), s.rank, -s.failing_support,
         str(s.signature))
        for s in scored
    ]
    if keys != sorted(keys):
        _violate(
            "scores-sorted",
            "scored patterns are not in (F1, simplicity, rank, support) "
            "order",
        )


# -- reports and digests -----------------------------------------------------


def check_report_sanity(report) -> None:
    """Cheap report-level invariants at the end of every diagnosis."""
    root = report.root_cause
    if report.diagnosed != (root is not None):
        _violate(
            "diagnosed-iff-root",
            f"diagnosed={report.diagnosed} but root_cause={root}",
        )
    if root is not None:
        for name, v in (
            ("f1", root.f1), ("precision", root.precision),
            ("recall", root.recall),
        ):
            if not 0.0 <= v <= 1.0:
                _violate("score-bounded", f"root {name}={v} outside [0, 1]")
        if root.f1 <= 0.0:
            _violate(
                "root-correlates",
                "a root cause was reported with F1 == 0",
            )
        if len(report.target_events) != len(root.signature.events):
            _violate(
                "targets-match-signature",
                f"{len(report.target_events)} target events for a "
                f"{len(root.signature.events)}-event signature",
            )


def check_digest_match(a: dict, b: dict, context: str) -> None:
    """Two report digests (cache-on/off, fleet/in-process) must agree."""
    if a == b:
        return
    keys = sorted(set(a) | set(b))
    diffs = [k for k in keys if a.get(k) != b.get(k)]
    detail = "; ".join(
        f"{k}: {a.get(k)!r} != {b.get(k)!r}" for k in diffs[:3]
    )
    _violate("digest-deterministic", f"{context}: digests differ on {detail}")
