"""Fixed-capacity byte ring buffer, one per traced thread.

Mirrors the Snorlax driver's ring-buffer mode (§5): the trace stays in
memory, old bytes are overwritten once the buffer fills, and nothing is
written to persistent storage until a snapshot is requested (at failure
time or on demand).  ``snapshot()`` linearizes the surviving bytes in
write order; decoding then re-synchronizes at the first intact PSB.
"""

from __future__ import annotations


class RingBuffer:
    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buf = bytearray(capacity)
        self._write_pos = 0
        self.total_written = 0

    def write(self, data: bytes) -> None:
        n = len(data)
        if n == 0:
            return
        if n >= self.capacity:
            # Only the newest `capacity` bytes survive.
            self._buf[:] = data[-self.capacity :]
            self._write_pos = 0
            self.total_written += n
            return
        end = self._write_pos + n
        if end <= self.capacity:
            self._buf[self._write_pos : end] = data
            self._write_pos = end % self.capacity
        else:
            first = self.capacity - self._write_pos
            self._buf[self._write_pos :] = data[:first]
            rest = n - first
            self._buf[:rest] = data[first:]
            self._write_pos = rest
        self.total_written += n

    @property
    def wrapped(self) -> bool:
        return self.total_written > self.capacity

    def snapshot(self) -> bytes:
        """The surviving bytes, oldest first."""
        if not self.wrapped:
            return bytes(self._buf[: self.total_written])
        return bytes(self._buf[self._write_pos :]) + bytes(self._buf[: self._write_pos])

    def clear(self) -> None:
        self._write_pos = 0
        self.total_written = 0
