"""Per-thread trace packetizer.

One ``ThreadEncoder`` per traced thread turns the machine's control-flow
callbacks into packet bytes in that thread's ring buffer.  It reproduces
the information loss of real PT:

* only *dynamic* control decisions are recorded — conditional branches
  as TNT bits, indirect calls and uncompressed returns as TIPs; straight
  -line code, direct calls and compressed returns cost zero bytes;
* timing arrives only at MTC-period boundaries (plus full TSCs when the
  stream was silent long enough for the 8-bit MTC counter to be
  ambiguous);
* the ring buffer drops the oldest bytes; PSB + TSC + TIP sync points
  every ``psb_interval_bytes`` let the decoder re-anchor, and return
  compression state resets at each PSB (as in real PT) so decoding
  after a wrap stays consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pt.packets import (
    TNT_MAX_BITS,
    encode_fup,
    encode_mtc,
    encode_psb,
    encode_tip,
    encode_tnt,
    encode_tsc,
)
from repro.pt.ringbuffer import RingBuffer
from repro.pt.timing import TraceConfig


@dataclass
class EncoderStats:
    control_packets: int = 0
    timing_packets: int = 0
    sync_packets: int = 0
    control_bytes: int = 0
    timing_bytes: int = 0
    sync_bytes: int = 0
    tnt_bits: int = 0
    tips: int = 0
    compressed_rets: int = 0
    max_timing_gap_ns: int = 0
    """Longest span between timing packets while the thread was running
    (blocked/context-switched-out spans excluded) — the paper's 65 us
    statistic, which must stay below the 91 us minimum inter-event gap."""

    @property
    def total_bytes(self) -> int:
        return self.control_bytes + self.timing_bytes + self.sync_bytes

    def timing_fraction(self) -> float:
        total = self.total_bytes
        return self.timing_bytes / total if total else 0.0


@dataclass
class ThreadEncoder:
    tid: int
    config: TraceConfig
    ring: RingBuffer = field(init=False)
    stats: EncoderStats = field(init=False)

    def __post_init__(self) -> None:
        self.ring = RingBuffer(self.config.buffer_size)
        self.stats = EncoderStats()
        self._pending_tnt: list[bool] = []
        self._last_period: int | None = None
        self._bytes_since_psb = 0
        self._ret_depth = 0  # return-compression depth since last PSB
        self._next_uid = 0  # position anchor for PSBs and final flush
        self._ended = False
        self._last_timing_time: int | None = None

    def _note_timing(self, time: int, blind: bool = False) -> None:
        """Track the longest running-span gap between timing packets.

        ``blind=True`` resets the reference without measuring — used when
        the thread was context-switched out (block -> wake), a span the
        trace legitimately has no packets for.
        """
        if not blind and self._last_timing_time is not None:
            gap = time - self._last_timing_time
            if gap > self.stats.max_timing_gap_ns:
                self.stats.max_timing_gap_ns = gap
        self._last_timing_time = time

    # -- event API (called by the driver) ---------------------------------

    def start(self, start_uid: int, time: int) -> int:
        self._next_uid = start_uid
        return self._emit_sync(time)

    def cond_branch(self, taken: bool, target_uid: int, time: int) -> int:
        cost = self._catch_up_timing(time)
        self._pending_tnt.append(taken)
        self.stats.tnt_bits += 1
        self._next_uid = target_uid
        if len(self._pending_tnt) >= TNT_MAX_BITS:
            cost += self._flush_tnt()
        cost += self._maybe_psb(time)
        return cost

    def indirect_call(self, target_uid: int, time: int) -> int:
        cost = self._catch_up_timing(time)
        cost += self._flush_tnt()
        cost += self._emit_control(encode_tip(target_uid))
        self.stats.tips += 1
        self._ret_depth += 1
        self._next_uid = target_uid
        return cost + self._maybe_psb(time)

    def call(self, callee_uid: int, time: int) -> int:
        # Direct call: statically decodable, no control packet; it only
        # deepens the return-compression stack.
        self._ret_depth += 1
        self._next_uid = callee_uid
        return self._catch_up_timing(time)

    def ret(self, resume_uid: int | None, time: int) -> int:
        cost = self._catch_up_timing(time)
        if self._ret_depth > 0:
            # Compressed return: a taken TNT bit (exactly real PT).
            self._ret_depth -= 1
            self._pending_tnt.append(True)
            self.stats.tnt_bits += 1
            self.stats.compressed_rets += 1
            if len(self._pending_tnt) >= TNT_MAX_BITS:
                cost += self._flush_tnt()
        elif resume_uid is not None:
            cost += self._flush_tnt()
            cost += self._emit_control(encode_tip(resume_uid))
            self.stats.tips += 1
            self._next_uid = resume_uid
        return cost + self._maybe_psb(time)

    def br(self, target_uid: int, time: int) -> int:
        # Unconditional branch: statically decodable, timing catch-up only.
        self._next_uid = target_uid
        return self._catch_up_timing(time)

    def work(
        self,
        instr_uid: int,
        resume_uid: int,
        start: int,
        duration: int,
        live_threads: int,
    ) -> int:
        """Advance over a delay span.

        The span models *traced code executing elsewhere* (I/O waits,
        library work).  The stream gets the region sandwich a real trace
        would have: FUP(position) + TSC at entry, MTC ticks through the
        span, TIP(resume) + TSC at exit — which is what keeps the
        instructions on both sides of the span tightly time-bounded.
        The sandwich packets themselves are charged at zero cost (the
        real code's own packets are already covered by the per-byte
        rate); the MTC run plus per-thread buffer management is the
        modeled overhead (Figure 9 grows with ``live_threads``).
        """
        cost = self._catch_up_timing(start)
        cost += self._flush_tnt()
        self._emit_control(encode_fup(instr_uid))
        self._emit_timing(encode_tsc(start))
        self._note_timing(start)
        end = start + duration
        period = self.config.mtc_period_ns
        first = start // period + 1
        last = end // period
        n_boundaries = max(0, last - first + 1)
        if n_boundaries > 100_000:
            # Backstop against absurd spans (hours of virtual sleep):
            # a single TSC stands in for the MTC run.
            cost += self._emit_timing(encode_tsc(last * period))
        elif n_boundaries > 0:
            chunk = bytearray()
            for k in range(n_boundaries):
                chunk += encode_mtc(first + k)
            self.ring.write(bytes(chunk))
            self._bytes_since_psb += len(chunk)
            self.stats.timing_packets += n_boundaries
            self.stats.timing_bytes += len(chunk)
            cost += len(chunk) * self.config.per_byte_cost_ns
        if n_boundaries > 0:
            cost += int(
                n_boundaries * self.config.per_packet_mgmt_ns * max(0, live_threads - 1)
            )
        if n_boundaries > 0:
            # interior MTCs tick every period; the largest running gap
            # inside the span is one period
            self._note_timing(min(start + period, end))
            self._note_timing(end, blind=True)
        self._emit_control(encode_tip(resume_uid))
        self.stats.tips += 1
        self._emit_timing(encode_tsc(end))
        self._note_timing(end)
        self._last_period = end // period
        self._next_uid = resume_uid
        return cost

    def block(self, instr_uid: int, time: int) -> int:
        """Context switch out (blocked on a lock/join): FUP + timestamp.

        Not charged per-byte: these stand in for the mode/PIP packets a
        context switch produces anyway, dwarfed by the switch itself.
        """
        self._catch_up_timing(time)
        self._flush_tnt()
        self._emit_control(encode_fup(instr_uid))
        self._emit_timing(encode_tsc(time))
        self._note_timing(time)
        self._last_period = time // self.config.mtc_period_ns
        return 0

    def wake(self, resume_uid: int, time: int) -> int:
        """Context switch back in: resume position + timestamp (uncharged)."""
        # The span just passed was spent switched out: reset the gap
        # reference first so catch-up does not count it as a running gap.
        self._note_timing(time, blind=True)
        self._catch_up_timing(time)
        self._flush_tnt()
        self._emit_control(encode_tip(resume_uid))
        self.stats.tips += 1
        self._emit_timing(encode_tsc(time))
        self._note_timing(time, blind=True)
        self._last_period = time // self.config.mtc_period_ns
        self._next_uid = resume_uid
        return 0

    def end(self, time: int) -> None:
        """Thread exit: seal the ring with the final TSC + FUP(0) suffix."""
        if self._ended:
            return
        self._flush_tnt()
        self._emit_timing(encode_tsc(time))
        self._note_timing(time)
        self._emit_control(encode_fup(0))
        self._ended = True

    def snapshot_bytes(self, time: int, stop_uid: int) -> bytes:
        """A decodable snapshot of the ring as of ``time``.

        Does not disturb the live encoder: pending TNT bits and the
        TSC + FUP(stop position) suffix are appended to a copy, the way
        the Snorlax driver drains the hardware buffer on demand.
        """
        data = self.ring.snapshot()
        if self._ended:
            return data
        suffix = bytearray()
        if self._pending_tnt:
            suffix += encode_tnt(self._pending_tnt)
        suffix += encode_tsc(time)
        suffix += encode_fup(stop_uid)
        return data + bytes(suffix)

    # -- internals ---------------------------------------------------------------

    def _emit(self, data: bytes) -> int:
        self.ring.write(data)
        self._bytes_since_psb += len(data)
        return len(data) * self.config.per_byte_cost_ns

    def _emit_control(self, data: bytes) -> int:
        self.stats.control_packets += 1
        self.stats.control_bytes += len(data)
        return self._emit(data)

    def _emit_timing(self, data: bytes) -> int:
        self.stats.timing_packets += 1
        self.stats.timing_bytes += len(data)
        return self._emit(data)

    def _flush_tnt(self) -> int:
        if not self._pending_tnt:
            return 0
        bits = self._pending_tnt
        self._pending_tnt = []
        return self._emit_control(encode_tnt(bits))

    def _catch_up_timing(self, time: int) -> int:
        """Emit the timing packets owed for virtual time reaching ``time``."""
        period = self.config.mtc_period_ns
        cur = time // period
        if self._last_period is None:
            self._last_period = cur
            self._note_timing(time, blind=True)
            return self._emit_timing(encode_tsc(time))
        if cur == self._last_period:
            return 0
        gap = cur - self._last_period
        self._note_timing(time)
        cost = self._flush_tnt()
        if gap > self.config.tsc_resync_periods:
            cost += self._emit_timing(encode_tsc(time))
        else:
            chunk = bytearray()
            for p in range(self._last_period + 1, cur + 1):
                chunk += encode_mtc(p)
            self.ring.write(bytes(chunk))
            self._bytes_since_psb += len(chunk)
            self.stats.timing_packets += gap
            self.stats.timing_bytes += len(chunk)
            cost += len(chunk) * self.config.per_byte_cost_ns
        self._last_period = cur
        return cost

    def _maybe_psb(self, time: int) -> int:
        if self._bytes_since_psb < self.config.psb_interval_bytes:
            return 0
        return self._emit_sync(time)

    def _emit_sync(self, time: int) -> int:
        """PSB + TSC + TIP(current position): a decoder re-anchor point."""
        cost = self._flush_tnt()
        psb = encode_psb()
        self.ring.write(psb)
        self.stats.sync_packets += 1
        self.stats.sync_bytes += len(psb)
        cost += len(psb) * self.config.per_byte_cost_ns
        self._bytes_since_psb = 0
        tsc = encode_tsc(time)
        self.ring.write(tsc)
        self.stats.sync_bytes += len(tsc)
        cost += len(tsc) * self.config.per_byte_cost_ns
        self._last_period = time // self.config.mtc_period_ns
        self._note_timing(time, blind=True)
        fup = encode_fup(self._next_uid)
        self.ring.write(fup)
        self.stats.sync_bytes += len(fup)
        cost += len(fup) * self.config.per_byte_cost_ns
        self._ret_depth = 0  # return compression resets at PSB (real PT)
        return cost
