"""Trace configuration: buffer sizing and timing-packet cadence.

Defaults mirror the paper's Snorlax setup (§5): a 64 KB per-thread ring
buffer (configurable up to 128 MB) and timing packets at the highest
frequency the hardware supports.  Our MTC equivalent ticks every
``mtc_period_ns`` of virtual time; the paper reports the longest gap it
observed between timing packets was 65 µs, comfortably below the 91 µs
minimum inter-event gap of the coarse interleaving hypothesis — the
ablation bench sweeps this period across that boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class TraceConfig:
    buffer_size: int = 64 * KB
    """Per-thread ring buffer capacity in bytes (paper default 64 KB)."""

    mtc_period_ns: int = 4096
    """Virtual ns between MTC timing packets ("highest frequency")."""

    psb_interval_bytes: int = 2048
    """Emit a PSB sync point after this many trace bytes."""

    tsc_resync_periods: int = 200
    """If more than this many MTC periods pass silently, emit a full TSC
    instead of a (wrap-ambiguous) 8-bit MTC counter."""

    per_byte_cost_ns: int = 20
    """Modeled cost, charged to the traced thread, of writing one packet
    byte (memory-bandwidth share of the PT packetizer).  At the default
    MTC cadence this yields the paper's ~1% tracing overhead."""

    per_packet_mgmt_ns: float = 0.8
    """Extra per-timing-packet cost *per additional live thread*: the
    driver manages one ring buffer per thread (paper §6.3 attributes the
    0.87% -> 1.98% overhead growth from 2 to 32 threads to this)."""

    def __post_init__(self) -> None:
        if self.buffer_size < 4 * KB or self.buffer_size > 128 * MB:
            raise ValueError("buffer_size must be between 4 KB and 128 MB")
        if self.mtc_period_ns <= 0:
            raise ValueError("mtc_period_ns must be positive")
        if self.psb_interval_bytes < 64:
            raise ValueError("psb_interval_bytes must be at least 64")
