"""PT-like control-flow tracing with coarse timing (the hardware substrate)."""

from repro.pt.decoder import (
    DynamicInstruction,
    ThreadTrace,
    decode_thread_trace,
    executed_set,
)
from repro.pt.driver import PTDriver, TraceSnapshot, overhead_fraction
from repro.pt.encoder import EncoderStats, ThreadEncoder
from repro.pt.ringbuffer import RingBuffer
from repro.pt.timing import KB, MB, TraceConfig

__all__ = [
    "DynamicInstruction",
    "ThreadTrace",
    "decode_thread_trace",
    "executed_set",
    "PTDriver",
    "TraceSnapshot",
    "overhead_fraction",
    "EncoderStats",
    "ThreadEncoder",
    "RingBuffer",
    "KB",
    "MB",
    "TraceConfig",
]
