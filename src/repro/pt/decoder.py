"""Trace decoder: byte stream -> executed instructions with time bounds.

This is our equivalent of Intel's stock PT decoder plus the binary-to-IR
mapping Snorlax does on the server.  Decoding re-walks the module's CFG:
straight-line code, direct calls and unconditional branches are
reconstructed statically; conditional branches consume TNT bits;
indirect calls and uncompressed returns consume TIPs; MTC/TSC packets
advance the time bound.

The output is a :class:`ThreadTrace` whose dynamic instructions carry
``[t_lo, t_hi)`` intervals — the *partial order* of §4.1: two dynamic
instructions are ordered iff their intervals do not overlap.  Interval
width equals the gap between adjacent timing packets, which is what
makes the coarse interleaving hypothesis operational: gaps between
target events (>= 91 us in the study) dwarf the interval width
(~ the MTC period).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import TraceDecodeError
from repro.ir.instructions import (
    BarrierWait,
    Br,
    Call,
    CondBr,
    CondWait,
    Delay,
    Instruction,
    Join,
    Lock,
    Ret,
    RwRdLock,
    RwWrLock,
    SemWait,
    Spawn,
)

# Instructions that may context-switch the thread out: the encoder marks
# the blocked span as a FUP(uid) ... TIP(resume) region, exactly like a
# contended mutex.
_BLOCKING_OPS = (Lock, Join, CondWait, RwRdLock, RwWrLock, SemWait, BarrierWait)
from repro.ir.module import Module
from repro.ir.values import FunctionRef
from repro.pt.packets import (
    FupPacket,
    MtcPacket,
    Packet,
    PsbPacket,
    TipPacket,
    TntPacket,
    TscPacket,
    find_psb,
    parse_packets,
)

_MAX_DECODED = 10_000_000


@dataclass(frozen=True)
class DynamicInstruction:
    """One decoded execution of an instruction."""

    uid: int
    tid: int
    seq: int  # per-thread decode order
    t_lo: int  # earliest possible execution time (ns)
    t_hi: int  # latest possible execution time (ns)

    def interval(self) -> tuple[int, int]:
        return (self.t_lo, self.t_hi)

    def before(self, other: "DynamicInstruction") -> bool:
        """Strictly ordered: this interval ends before the other begins.

        Same-thread instructions are additionally ordered by sequence
        (program order is exact within a thread)."""
        if self.tid == other.tid:
            return self.seq < other.seq
        return self.t_hi <= other.t_lo


@dataclass
class ThreadTrace:
    tid: int
    instructions: list[DynamicInstruction] = field(default_factory=list)
    executed_uids: set[int] = field(default_factory=set)
    start_time: int = 0
    end_time: int = 0
    stop_uid: int = 0
    timing_times: list[int] = field(default_factory=list)
    control_events: int = 0
    timing_packets: int = 0
    truncated: bool = False  # decode began after ring wraparound
    desync: bool = False  # no PSB found; nothing decoded

    def max_timing_gap(self) -> int:
        """Longest gap between adjacent timing packets (paper: 65 us)."""
        times = self.timing_times
        if len(times) < 2:
            return 0
        return max(b - a for a, b in zip(times, times[1:]))


def decode_thread_trace(
    module: Module, data: bytes, tid: int, mtc_period_ns: int = 4096
) -> ThreadTrace:
    """Decode one thread's snapshot bytes against its module.

    ``mtc_period_ns`` is sideband information, like the CTC frequency a
    real PT decoder reads from CPUID: the stream itself only carries
    8-bit MTC counters.
    """
    trace = ThreadTrace(tid)
    sync = find_psb(data)
    if sync < 0:
        trace.desync = True
        return trace
    trace.truncated = sync > 0
    packets = list(parse_packets(data, sync))
    if not packets:
        trace.desync = True
        return trace
    # The snapshot suffix is TSC + FUP(stop): strip it as the stop marker.
    if isinstance(packets[-1], FupPacket) and len(packets) >= 2 and isinstance(
        packets[-2], TscPacket
    ):
        trace.stop_uid = packets[-1].uid
        trace.end_time = packets[-2].time
        packets = packets[:-2]
    walker = _Walker(module, packets, trace, mtc_period_ns)
    walker.run()
    if trace.end_time:
        trace.timing_times.append(trace.end_time)
    return trace


class _Resync(Exception):
    """Internal: a PSB was encountered; restart walking at its anchor."""


class _Truncated(Exception):
    """Internal: the packet stream ended while dynamic info was needed."""


class _Walker:
    def __init__(
        self,
        module: Module,
        packets: list[Packet],
        trace: ThreadTrace,
        mtc_period_ns: int,
    ):
        self.module = module
        self.packets = packets
        self.trace = trace
        self.idx = 0
        self.pos: int | None = None  # uid of next instruction to walk
        self.stack: list[int] = []  # return positions (uids)
        self.bits: deque[bool] = deque()
        self.seq = 0
        self.t_lo = 0
        self.last_period: int | None = None
        self.period_guess = mtc_period_ns
        # Two-stage upper bounds: a control packet *seals* the records
        # decoded before it (they executed before that control event);
        # the next timing packet *closes* sealed records (the control
        # event, and hence they, happened before that tick).
        self._first_open = 0  # first record not yet closed
        self._first_unsealed = 0  # first record not yet sealed
        self._records: list[list[int]] = []  # [uid, t_lo, t_hi]

    # -- packet stream ----------------------------------------------------

    def _pull(self) -> Packet | None:
        """Consume the next packet, handling timing and PSB resync.

        Instructions decoded so far executed before the control packet
        returned here, hence before any timing packet that preceded it in
        the stream: closing the epoch at the latest such timing value is
        the tightest *sound* upper bound the trace supports.  Timing
        packets between two control packets never bound the straight-line
        instructions between them (no control event separates them).
        """
        while self.idx < len(self.packets):
            pkt = self.packets[self.idx]
            self.idx += 1
            if isinstance(pkt, MtcPacket):
                self._on_mtc(pkt)
                continue
            if isinstance(pkt, TscPacket):
                self._on_time(pkt.time, exact=True)
                continue
            if isinstance(pkt, PsbPacket):
                # A cadence PSB while the walk is in sync: decode straight
                # through it.  Its TSC updates timing, its FUP anchor is
                # redundant (we know the position), but the encoder reset
                # its return-compression state here, so returns of frames
                # pushed before this point will arrive as TIPs: remember
                # the compression floor.
                self._skip_psb_header()
                continue
            self._seal()
            return pkt
        return None

    def _skip_psb_header(self) -> None:
        """Consume the TSC + FUP that follow a mid-stream PSB."""
        while self.idx < len(self.packets):
            pkt = self.packets[self.idx]
            if isinstance(pkt, MtcPacket):
                self._on_mtc(pkt)
            elif isinstance(pkt, TscPacket):
                self._on_time(pkt.time, exact=True)
            elif isinstance(pkt, FupPacket):
                self.idx += 1
                return
            else:
                return
            self.idx += 1

    def _seal(self) -> None:
        self._first_unsealed = len(self._records)

    def _close_sealed(self, time: int) -> None:
        for rec in self._records[self._first_open : self._first_unsealed]:
            rec[2] = max(time, rec[1])
        self._first_open = self._first_unsealed

    def _on_mtc(self, pkt: MtcPacket) -> None:
        # Counter is the low 8 bits of (time // period).  The period is
        # not in the stream; we infer absolute time by tracking the
        # period index implied by the last TSC/MTC.
        if self.last_period is None:
            # MTC before any TSC: unusable for absolute time; skip.
            self.trace.timing_packets += 1
            return
        delta = (pkt.counter - (self.last_period & 0xFF)) & 0xFF
        if delta == 0:
            delta = 256
        self.last_period += delta
        if self.period_guess:
            self._on_time(self.last_period * self.period_guess, exact=False)
        self.trace.timing_packets += 1

    def _on_time(self, time: int, exact: bool) -> None:
        if exact:
            self.trace.timing_packets += 1
            if self.period_guess:
                self.last_period = time // self.period_guess
        if time < self.t_lo:
            return
        self._close_sealed(time)
        self.t_lo = time
        self.trace.timing_times.append(time)

    def _resync(self) -> None:
        """PSB: read the TSC + FUP anchor that follows and reset state."""
        self.stack = []
        self.bits.clear()
        time: int | None = None
        anchor: int | None = None
        while self.idx < len(self.packets) and (time is None or anchor is None):
            pkt = self.packets[self.idx]
            self.idx += 1
            if isinstance(pkt, TscPacket) and time is None:
                time = pkt.time
                self._on_time(time, exact=True)
            elif isinstance(pkt, FupPacket) and anchor is None:
                anchor = pkt.uid
            elif isinstance(pkt, MtcPacket):
                self._on_mtc(pkt)
            else:
                raise TraceDecodeError(
                    f"malformed PSB header: unexpected {pkt.kind} packet"
                )
        if anchor is None:
            raise _Truncated
        self.pos = anchor or None

    def _next_bit(self) -> bool:
        while not self.bits:
            pkt = self._pull()
            if pkt is None:
                raise _Truncated
            if isinstance(pkt, TntPacket):
                self.bits.extend(pkt.bits)
                self.trace.control_events += len(pkt.bits)
            elif isinstance(pkt, (TipPacket, FupPacket)):
                raise TraceDecodeError(
                    f"desync: wanted TNT, got {pkt.kind} at offset {pkt.offset}"
                )
        return self.bits.popleft()

    def _next_tip(self) -> int:
        if self.bits:
            raise TraceDecodeError("desync: pending TNT bits at a TIP boundary")
        pkt = self._pull()
        if pkt is None:
            raise _Truncated
        if not isinstance(pkt, TipPacket):
            raise TraceDecodeError(
                f"desync: wanted TIP, got {pkt.kind} at offset {pkt.offset}"
            )
        self.trace.control_events += 1
        return pkt.uid

    # -- walking ------------------------------------------------------------

    def run(self) -> None:
        try:
            self._resync_at_start()
        except (_Truncated, TraceDecodeError):
            self.trace.desync = True
            return
        budget = _MAX_DECODED
        while self.pos is not None:
            budget -= 1
            if budget <= 0:
                raise TraceDecodeError("decode budget exceeded (runaway walk)")
            try:
                if not self._walk_one():
                    break
            except _Resync:
                continue
            except _Truncated:
                break
        self._finish()

    def _resync_at_start(self) -> None:
        # The stream begins with PSB (guaranteed by find_psb); consume it.
        pkt = self.packets[self.idx]
        if not isinstance(pkt, PsbPacket):
            raise TraceDecodeError("decode must start at a PSB")
        self.idx += 1
        self._resync()
        if self.trace.timing_times:
            self.trace.start_time = self.trace.timing_times[0]

    def _walk_one(self) -> bool:
        """Walk a single instruction; False means decoding is complete."""
        assert self.pos is not None
        instr = self.module.instruction(self.pos)
        if self._at_stop(instr):
            return False
        if isinstance(instr, CondBr):
            self._emit(instr)
            taken = self._next_bit()
            target = instr.then_block if taken else instr.else_block
            self.pos = target.instructions[0].uid
            return True
        if isinstance(instr, Br):
            self._emit(instr)
            self.pos = instr.target.instructions[0].uid
            return True
        if isinstance(instr, Ret):
            self._emit(instr)
            if self.stack and self._ret_compressed():
                bit = self._next_bit()  # compressed return: a taken bit
                if not bit:
                    raise TraceDecodeError("desync: compressed return bit is 0")
                self.pos = self.stack.pop()
                return True
            if self.stack:
                # the call predates the encoder's last compression reset
                # (a PSB): its return arrives as an uncompressed TIP that
                # must agree with our tracked resume position
                tip = self._next_tip()
                expected = self.stack.pop()
                if tip != expected:
                    raise TraceDecodeError(
                        f"desync: return TIP {tip} != stacked resume {expected}"
                    )
                self.pos = tip
                return True
            self.pos = self._next_tip() or None
            return self.pos is not None
        if isinstance(instr, Call):
            self._emit(instr)
            resume = self._next_in_block(instr)
            if instr.is_direct:
                assert isinstance(instr.callee, FunctionRef)
                self.stack.append(resume)
                self.pos = instr.callee.function.entry.instructions[0].uid
                return True
            target = self._next_tip()
            self.stack.append(resume)
            self.pos = target
            return True
        if isinstance(instr, Delay):
            # A work region: FUP(entry) ... MTC ticks ... TIP(resume).
            self._emit(instr)
            self._consume_region(instr.uid)
            return True
        if isinstance(instr, _BLOCKING_OPS):
            self._emit(instr)
            if self._peek_region(instr.uid):
                # The operation blocked: a context-switch region follows.
                self._consume_region(instr.uid)
                return True
            self.pos = self._next_in_block(instr)
            return True
        # Everything else (including Spawn: the child has its own trace)
        self._emit(instr)
        self.pos = self._next_in_block(instr)
        return True

    def _at_stop(self, instr: Instruction) -> bool:
        """True when the walk has reached the snapshot stop marker."""
        if self.trace.stop_uid == 0:
            return False
        if instr.uid != self.trace.stop_uid:
            return False
        # A run of pure timing packets may trail the last control event
        # (MTCs emitted while the thread slept); drain them so the stop
        # test below sees whether any *control* information remains.
        while self.idx < len(self.packets):
            pkt = self.packets[self.idx]
            if isinstance(pkt, MtcPacket):
                self._on_mtc(pkt)
            elif isinstance(pkt, TscPacket):
                self._on_time(pkt.time, exact=True)
            else:
                break
            self.idx += 1
        # Only stop when no dynamic information remains: a loop can
        # revisit the stop position with packets still queued.
        return self.idx >= len(self.packets) and not self.bits

    def _ret_compressed(self) -> bool:
        """Was this return TNT-compressed by the encoder?

        Self-synchronizing test (the encoder's compression state resets
        at PSBs, which the walker may process at a slight lag): a
        compressed return's bit is already queued or sits in the next
        TNT packet; an uncompressed return is announced by a TIP.
        """
        if self.bits:
            return True
        i = self.idx
        skip_fup = False
        while i < len(self.packets):
            pkt = self.packets[i]
            if isinstance(pkt, (MtcPacket, TscPacket)):
                i += 1
                continue
            if isinstance(pkt, PsbPacket):
                skip_fup = True
                i += 1
                continue
            if skip_fup and isinstance(pkt, FupPacket):
                skip_fup = False
                i += 1
                continue
            return isinstance(pkt, TntPacket)
        return False

    def _peek_region(self, uid: int) -> bool:
        """Is the next control packet a FUP marking this instruction?

        Peeks without processing timing packets, so an uncontended
        lock/join (which emits nothing) leaves the stream untouched.
        """
        i = self.idx
        skip_fup = False
        while i < len(self.packets):
            pkt = self.packets[i]
            if isinstance(pkt, (MtcPacket, TscPacket)):
                i += 1
                continue
            if isinstance(pkt, PsbPacket):
                # cadence sync point: its anchor FUP is not a region marker
                skip_fup = True
                i += 1
                continue
            if skip_fup and isinstance(pkt, FupPacket):
                skip_fup = False
                i += 1
                continue
            return isinstance(pkt, FupPacket) and pkt.uid == uid
        return False

    def _consume_region(self, uid: int) -> None:
        """Consume FUP(uid) ... TIP(resume), repositioning at the resume."""
        pkt = self._pull()
        if pkt is None:
            raise _Truncated
        if not isinstance(pkt, FupPacket) or pkt.uid != uid:
            raise TraceDecodeError(
                f"desync: wanted region FUP({uid}), got {pkt.kind} at {pkt.offset}"
            )
        tip = self._pull()
        if tip is None:
            raise _Truncated  # blocked forever (e.g. a deadlocked lock)
        if not isinstance(tip, TipPacket):
            raise TraceDecodeError(
                f"desync: wanted region TIP, got {tip.kind} at {tip.offset}"
            )
        self.trace.control_events += 1
        self.pos = tip.uid

    def _next_in_block(self, instr: Instruction) -> int:
        block = instr.parent
        assert block is not None
        return block.instructions[instr.block_index + 1].uid

    def _emit(self, instr: Instruction) -> None:
        self._records.append([instr.uid, self.t_lo, -1])
        self.trace.executed_uids.add(instr.uid)

    def _finish(self) -> None:
        end = self.trace.end_time or (self.t_lo if self.t_lo else 0)
        tid = self.trace.tid
        out = self.trace.instructions
        for seq, rec in enumerate(self._records):
            t_hi = rec[2] if rec[2] != -1 else end
            if t_hi < rec[1]:
                t_hi = rec[1]
            out.append(DynamicInstruction(rec[0], tid, seq, rec[1], t_hi))
        if not self.trace.end_time and out:
            self.trace.end_time = max(d.t_hi for d in out)


def executed_set(traces: list[ThreadTrace]) -> set[int]:
    """Union of executed instruction uids across per-thread traces."""
    uids: set[int] = set()
    for t in traces:
        uids |= t.executed_uids
    return uids
