"""Binary packet format of the PT-like trace.

The format is a simplified Intel PT: genuinely byte-encoded so that
ring-buffer wraparound truncates history the way real hardware does,
and decoding has to re-synchronize at a PSB boundary.

Packet encodings (first byte is the tag):

======  =========  ==============================================
packet  size       layout
======  =========  ==============================================
PAD     1          0x00
TNT     2          0x40+count (1..6), then a payload byte whose
                   low ``count`` bits are taken/not-taken flags,
                   oldest branch in bit 0
TIP     9          0x60, u64 LE instruction uid where execution
                   (re)starts — indirect-call targets, uncompressed
                   returns, post-PSB anchors, final flush position
MTC     2          0x50, low 8 bits of (time // mtc_period)
TSC     9          0x70, u64 LE full virtual time in ns
PSB     16         0x82 0x02 x 8 — decoder sync point
======  =========  ==============================================

Returns are TNT-compressed exactly like real PT: a return whose call
was seen since the last PSB is encoded as a taken TNT bit; otherwise it
gets a TIP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import TraceDecodeError

TAG_PAD = 0x00
TAG_TNT_BASE = 0x40  # TAG_TNT_BASE + count, count in 1..6
TAG_MTC = 0x50
TAG_TIP = 0x60
TAG_TSC = 0x70
TAG_FUP = 0x78
PSB_BYTES = bytes([0x82, 0x02] * 8)

TNT_MAX_BITS = 6

# Precomputed TNT bit tuples: _TNT_BITS[count][payload] is the decoded
# (oldest-first) flag tuple for a payload byte carrying ``count`` bits.
# 6 x 256 shared tuples replace a per-packet Python bit loop — TNT is
# the dominant packet kind, so decode spends most of its time here.
_TNT_BITS: tuple[tuple[tuple[bool, ...], ...], ...] = tuple(
    tuple(
        tuple(bool(payload >> b & 1) for b in range(count))
        for payload in range(256)
    )
    for count in range(TNT_MAX_BITS + 1)
)


@dataclass(frozen=True)
class Packet:
    kind: str  # "tnt" | "tip" | "mtc" | "tsc" | "psb" | "pad"
    offset: int  # byte offset in the decoded stream

    @property
    def size(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class TntPacket(Packet):
    bits: tuple[bool, ...] = ()


@dataclass(frozen=True)
class TipPacket(Packet):
    uid: int = 0


@dataclass(frozen=True)
class MtcPacket(Packet):
    counter: int = 0


@dataclass(frozen=True)
class TscPacket(Packet):
    time: int = 0


@dataclass(frozen=True)
class FupPacket(Packet):
    """An async position marker: post-PSB anchor or snapshot stop point."""

    uid: int = 0


@dataclass(frozen=True)
class PsbPacket(Packet):
    pass


def encode_tnt(bits: list[bool]) -> bytes:
    if not 1 <= len(bits) <= TNT_MAX_BITS:
        raise ValueError(f"TNT packet carries 1..{TNT_MAX_BITS} bits, got {len(bits)}")
    payload = 0
    for i, bit in enumerate(bits):
        if bit:
            payload |= 1 << i
    return bytes([TAG_TNT_BASE + len(bits), payload])


def encode_tip(uid: int) -> bytes:
    return bytes([TAG_TIP]) + struct.pack("<Q", uid)


def encode_mtc(counter: int) -> bytes:
    return bytes([TAG_MTC, counter & 0xFF])


def encode_tsc(time: int) -> bytes:
    return bytes([TAG_TSC]) + struct.pack("<Q", time)


def encode_fup(uid: int) -> bytes:
    return bytes([TAG_FUP]) + struct.pack("<Q", uid)


def encode_psb() -> bytes:
    return PSB_BYTES


def find_psb(data: bytes, start: int = 0) -> int:
    """Offset of the first full PSB at or after ``start``, or -1."""
    return data.find(PSB_BYTES, start)


def parse_packets(data: bytes, start: int = 0):
    """Yield packets from ``data`` beginning at ``start``.

    ``start`` must point at a packet boundary (normally a PSB found via
    :func:`find_psb`).  Raises :class:`TraceDecodeError` on unknown tags;
    a truncated trailing packet ends iteration silently (the ring was
    snapshotted mid-write, which is legal).
    """
    i = start
    n = len(data)
    while i < n:
        tag = data[i]
        if tag == TAG_PAD:
            i += 1
            continue
        if tag == PSB_BYTES[0]:
            if data[i : i + len(PSB_BYTES)] == PSB_BYTES:
                yield PsbPacket("psb", i)
                i += len(PSB_BYTES)
                continue
            if i + len(PSB_BYTES) > n:
                return  # truncated trailing PSB
            raise TraceDecodeError(f"corrupt PSB at offset {i}")
        if TAG_TNT_BASE < tag <= TAG_TNT_BASE + TNT_MAX_BITS:
            count = tag - TAG_TNT_BASE
            if i + 1 >= n:
                return
            yield TntPacket("tnt", i, _TNT_BITS[count][data[i + 1]])
            i += 2
            continue
        if tag == TAG_MTC:
            if i + 1 >= n:
                return
            yield MtcPacket("mtc", i, data[i + 1])
            i += 2
            continue
        if tag == TAG_TIP:
            if i + 9 > n:
                return
            (uid,) = struct.unpack_from("<Q", data, i + 1)
            yield TipPacket("tip", i, uid)
            i += 9
            continue
        if tag == TAG_TSC:
            if i + 9 > n:
                return
            (time,) = struct.unpack_from("<Q", data, i + 1)
            yield TscPacket("tsc", i, time)
            i += 9
            continue
        if tag == TAG_FUP:
            if i + 9 > n:
                return
            (uid,) = struct.unpack_from("<Q", data, i + 1)
            yield FupPacket("fup", i, uid)
            i += 9
            continue
        raise TraceDecodeError(f"unknown packet tag 0x{tag:02x} at offset {i}")
