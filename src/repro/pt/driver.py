"""The tracing driver: our stand-in for Snorlax's Intel PT kernel module.

The real driver is a 3773-LOC loadable Linux module exposing an ioctl
interface that (a) keeps a per-thread ring buffer of PT packets, (b)
saves the trace when a fail-stop event occurs, and (c) can arm a
hardware breakpoint so the trace is saved when execution reaches a given
program counter — used to collect traces from *successful* runs at a
previous failure location (Figure 2, step 8).

``PTDriver`` implements the machine's :class:`TraceDriver` protocol.
``arm_breakpoint`` wires a machine breakpoint to a snapshot, including
the paper's trigger-once semantics.  All hooks return the modeled
overhead ns charged to the traced thread; ``overhead_fraction`` of a
run is what Figure 8 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.pt.decoder import ThreadTrace, decode_thread_trace
from repro.pt.encoder import EncoderStats, ThreadEncoder
from repro.pt.timing import TraceConfig


@dataclass
class TraceSnapshot:
    """One saved trace: all threads' ring contents at a single instant."""

    reason: str  # "failure" | "breakpoint" | "on-demand"
    time: int
    buffers: dict[int, bytes] = field(default_factory=dict)  # tid -> bytes
    positions: dict[int, int] = field(default_factory=dict)  # tid -> stop uid

    def decode(self, module, mtc_period_ns: int = 4096) -> dict[int, ThreadTrace]:
        return {
            tid: decode_thread_trace(module, data, tid, mtc_period_ns)
            for tid, data in self.buffers.items()
        }


class PTDriver:
    def __init__(self, config: TraceConfig | None = None, enabled: bool = True):
        self.config = config or TraceConfig()
        self.enabled = enabled
        self.encoders: dict[int, ThreadEncoder] = {}
        self.live_threads = 0
        self.snapshot: TraceSnapshot | None = None
        self.total_overhead_ns = 0

    # -- TraceDriver protocol ----------------------------------------------

    def on_thread_start(self, tid: int, start_uid: int, time: int) -> int:
        if not self.enabled:
            return 0
        enc = ThreadEncoder(tid, self.config)
        self.encoders[tid] = enc
        self.live_threads += 1
        return self._charge(enc.start(start_uid, time))

    def on_cond_branch(self, tid: int, taken: bool, target_uid: int, time: int) -> int:
        if not self.enabled:
            return 0
        return self._charge(self.encoders[tid].cond_branch(taken, target_uid, time))

    def on_indirect_call(self, tid: int, target_uid: int, time: int) -> int:
        if not self.enabled:
            return 0
        return self._charge(self.encoders[tid].indirect_call(target_uid, time))

    def on_call(self, tid: int, callee_uid: int, time: int) -> int:
        if not self.enabled:
            return 0
        return self._charge(self.encoders[tid].call(callee_uid, time))

    def on_ret(self, tid: int, resume_uid: int | None, time: int) -> int:
        if not self.enabled:
            return 0
        return self._charge(self.encoders[tid].ret(resume_uid, time))

    def on_br(self, tid: int, target_uid: int, time: int) -> int:
        if not self.enabled:
            return 0
        return self._charge(self.encoders[tid].br(target_uid, time))

    def on_work(
        self, tid: int, instr_uid: int, resume_uid: int, start: int, duration: int
    ) -> int:
        if not self.enabled:
            return 0
        return self._charge(
            self.encoders[tid].work(
                instr_uid, resume_uid, start, duration, self.live_threads
            )
        )

    def on_block(self, tid: int, instr_uid: int, time: int) -> int:
        if not self.enabled:
            return 0
        return self._charge(self.encoders[tid].block(instr_uid, time))

    def on_wake(self, tid: int, resume_uid: int, time: int) -> int:
        if not self.enabled:
            return 0
        return self._charge(self.encoders[tid].wake(resume_uid, time))

    def on_thread_end(self, tid: int, time: int) -> None:
        if not self.enabled:
            return
        enc = self.encoders.get(tid)
        if enc is not None:
            enc.end(time)
        self.live_threads = max(0, self.live_threads - 1)

    # -- snapshots ------------------------------------------------------------

    def take_snapshot(
        self, reason: str, positions: dict[int, int], time: int
    ) -> TraceSnapshot | None:
        """Save every thread's ring buffer (first snapshot wins).

        ``positions`` maps tid -> current instruction uid, used as the
        FUP stop markers so the decoder ends each thread's walk exactly
        where that thread was at snapshot time.
        """
        if not self.enabled:
            return None
        if self.snapshot is not None:
            return self.snapshot
        snap = TraceSnapshot(reason, time)
        for tid, enc in self.encoders.items():
            stop = positions.get(tid, 0)
            snap.buffers[tid] = enc.snapshot_bytes(time, stop)
            snap.positions[tid] = stop
        self.snapshot = snap
        return snap

    def arm_breakpoint(
        self, machine, uid: int, reason: str = "breakpoint", skip: int = 0
    ) -> None:
        """Snapshot all buffers when ``uid`` executes.

        This is the driver's hardware-watchpoint path: the server asks a
        client to produce a trace from a successful execution at the PC
        where a failure previously occurred.  ``skip`` ignores that many
        hits first — in production the failure PC executes constantly,
        so the traces the server receives come from executions of
        arbitrary maturity, not always the very first visit.
        """
        remaining = {"skip": skip}

        def _hit(m, thread, instr):
            if remaining["skip"] > 0:
                remaining["skip"] -= 1
                return
            self.take_snapshot(reason, m.thread_positions(), m.clock.now)
            m.breakpoints.pop(uid, None)  # trigger once

        machine.breakpoints[uid] = _hit

    # -- accounting ----------------------------------------------------------

    @property
    def snapshots(self) -> dict[int, bytes]:
        """tid -> bytes of the saved snapshot (empty if none taken)."""
        return dict(self.snapshot.buffers) if self.snapshot else {}

    @property
    def metadata(self) -> dict[str, Any]:
        if not self.snapshot:
            return {}
        return {
            "reason": self.snapshot.reason,
            "time": self.snapshot.time,
            "positions": dict(self.snapshot.positions),
        }

    def stats(self) -> dict[int, EncoderStats]:
        return {tid: enc.stats for tid, enc in self.encoders.items()}

    def total_trace_bytes(self) -> int:
        return sum(enc.stats.total_bytes for enc in self.encoders.values())

    def _charge(self, ns: int) -> int:
        self.total_overhead_ns += ns
        return ns


def overhead_fraction(duration_with: int, duration_without: int) -> float:
    """Relative slowdown: the quantity Figures 8 and 9 report (percent/100)."""
    if duration_without <= 0:
        return 0.0
    return (duration_with - duration_without) / duration_without
