"""ASCII rendering of the paper's tables and figures."""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, points: Sequence[tuple[object, object]]) -> str:
    lines = [title, "=" * len(title)]
    for x, y in points:
        lines.append(f"  {x}: {_fmt(y)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)
