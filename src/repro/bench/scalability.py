"""Figure 9's scalability workload: a server app with N worker threads.

The paper doubles the application thread count from 2 to 32 and measures
the runtime overhead of (a) Snorlax's always-on tracing and (b) Gist's
instrumentation, averaged across applications.  We build one
parameterizable server model — request workers that do per-request work
and touch shared statistics under a lock — and measure both tools on it.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.baselines.gist import GistCostModel, GistInstrumentation
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import I64, LOCK, VOID, ptr
from repro.pt.driver import PTDriver
from repro.sim.clock import CostModel
from repro.sim.machine import Machine
from repro.sim.scheduler import RandomScheduler


def build_server_app(n_threads: int, requests: int = 12) -> Module:
    """A request-serving app: N workers, shared stats, per-request work."""
    m = Module(f"server-{n_threads}t")
    stats = m.add_struct(
        "ServerStats", [("requests", I64), ("bytes", I64), ("mu", LOCK)]
    )
    g = m.add_global("g_stats", ptr(stats))
    b = IRBuilder(m)

    b.begin_function("handle_request", I64, [("req", I64)])
    with b.at_location("server.c", 50):
        acc = b.alloca(I64, "acc")
        b.store(b.param("req"), acc)
        i = b.alloca(I64, "i")
        with b.for_range(i, 0, 2) as iv:
            cur = b.load(acc)
            odd = b.cmp("eq", b.mod(cur, 2), 1)
            with b.if_else(odd) as otherwise:
                b.store(b.add(b.mul(cur, 3), 1), acc)
                with otherwise:
                    b.store(b.add(cur, iv), acc)
            b.delay(8000)  # parsing/formatting work per phase
        b.ret(b.load(acc))

    b.begin_function("worker", VOID, [("n", I64), ("d_req", I64)])
    with b.at_location("server.c", 100):
        i = b.alloca(I64, "i")
        with b.for_range(i, 0, b.param("n")) as iv:
            b.delay(b.param("d_req"))  # wait for / read a request
            size = b.call("handle_request", [iv], "size")
            s = b.load(g, "s")
            mu = b.fieldaddr(s, "mu", "mu")
            b.lock(mu)
            rp = b.fieldaddr(s, "requests", "rp")
            b.store(b.add(b.load(rp), 1), rp)
            bp = b.fieldaddr(s, "bytes", "bp")
            b.store(b.add(b.load(bp), size), bp)
            b.unlock(mu)
        b.ret()

    b.begin_function("main", VOID, [("n", I64), ("d_req", I64)])
    s = b.malloc(stats, name="stats")
    b.store_field(0, s, "requests")
    b.store_field(0, s, "bytes")
    mu = b.fieldaddr(s, "mu", "mu")
    b.lock_init(mu)
    b.store(s, g)
    handles = []
    for k in range(n_threads):
        handles.append(b.spawn("worker", [b.param("n"), b.param("d_req")], f"t{k}"))
    for h in handles:
        b.join(h)
    b.ret()
    return m.finalize()


@dataclass
class ScalabilityPoint:
    threads: int
    snorlax_percent: float
    gist_percent: float


def _run(module: Module, seed: int, driver=None, instrumentation=None) -> int:
    machine = Machine(
        module,
        scheduler=RandomScheduler(seed),
        cost_model=CostModel(),
        trace_driver=driver,
        instrumentation=instrumentation,
    )
    result = machine.run("main", (10, 30_000))
    if result.outcome != "success":
        raise RuntimeError(f"scalability run failed: {result.outcome}")
    return result.duration


def measure_scalability_point(
    n_threads: int, seeds: tuple[int, ...] = (1, 2, 3)
) -> ScalabilityPoint:
    module = build_server_app(n_threads)
    # Gist monitors every shared access in its slice; on this app that is
    # the stats block in the worker (the accesses a race detector guards).
    monitored = {
        i.uid
        for i in module.function("worker").instructions()
        if i.is_memory_access or i.is_lock_op
    }
    snorlax, gist = [], []
    for seed in seeds:
        base = _run(module, seed)
        traced = _run(module, seed, driver=PTDriver())
        instrumented = _run(
            module,
            seed,
            instrumentation=GistInstrumentation(monitored, GistCostModel()),
        )
        snorlax.append(100.0 * (traced - base) / base)
        gist.append(100.0 * (instrumented - base) / base)
    return ScalabilityPoint(
        n_threads, statistics.fmean(snorlax), statistics.fmean(gist)
    )


def scalability_sweep(
    thread_counts: tuple[int, ...] = (2, 4, 8, 16, 32)
) -> list[ScalabilityPoint]:
    return [measure_scalability_point(n) for n in thread_counts]
