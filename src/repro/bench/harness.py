"""Shared experiment harness for the benchmark suite.

Implements the paper's measurement methodologies:

* §3.2 coarse-interleaving study: reproduce each bug with timestamp
  instrumentation at the target instructions only (no tracing, no
  artificial delays), average the inter-event gaps over N failing runs.
* §6.1 accuracy: single failure + server-collected successful traces,
  diagnosis compared against the developer-verified ground truth.
* §6.2 efficiency: traced vs. untraced run durations (Figure 8), and
  hybrid vs. whole-program analysis times (Table 4).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.corpus.registry import BugSpec
from repro.errors import CorpusError
from repro.runtime.client import ClientRun, SnorlaxClient
from repro.runtime.server import SnorlaxServer
from repro.sim.failures import DeadlockReport

US = 1_000.0  # ns per microsecond


def client_for(spec: BugSpec, tracing: bool = True, **kwargs) -> SnorlaxClient:
    return SnorlaxClient(
        spec.module(), spec.workload, entry=spec.entry, tracing=tracing, **kwargs
    )


# ---------------------------------------------------------------------------
# §3.2: coarse interleaving hypothesis measurements (Tables 1-3)
# ---------------------------------------------------------------------------

_SHAPE = {
    "WR": "ab", "RW": "ab", "WW": "ab",
    "RWR": "aba", "WWR": "aba", "RWW": "aba", "WRW": "aba",
}


@dataclass
class CihMeasurement:
    bug_id: str
    system: str
    gaps_ns: list[list[int]] = field(default_factory=list)  # per failing run
    runs_needed: int = 0  # executions to reproduce `len(gaps_ns)` failures

    @property
    def n_gaps(self) -> int:
        return len(self.gaps_ns[0]) if self.gaps_ns else 0

    def mean_us(self, gap_index: int = 0) -> float:
        values = [g[gap_index] for g in self.gaps_ns]
        return statistics.fmean(values) / US

    def std_us(self, gap_index: int = 0) -> float:
        values = [g[gap_index] / US for g in self.gaps_ns]
        return statistics.stdev(values) if len(values) > 1 else 0.0

    def min_us(self) -> float:
        return min(g / US for run in self.gaps_ns for g in run)

    def max_us(self) -> float:
        return max(g / US for run in self.gaps_ns for g in run)


def measure_cih(
    spec: BugSpec, runs: int = 10, max_attempts: int = 5000, start_seed: int = 0
) -> CihMeasurement:
    """Reproduce the bug ``runs`` times, measuring target-event gaps.

    Matches the paper's methodology: the program runs with timestamp
    instrumentation injected at the target instructions (our event log),
    with *no* tracing and no delay injection; failing executions are
    found by plain repetition.
    """
    module = spec.module()
    truth_uids = spec.ground_truth.resolve(module)
    client = client_for(spec, tracing=False)
    result = CihMeasurement(spec.bug_id, spec.system)
    seed = start_seed
    attempts = 0
    while len(result.gaps_ns) < runs and attempts < max_attempts:
        run = client.run_once(seed, watch_uids=set(truth_uids))
        seed += 1
        attempts += 1
        if not run.failed:
            continue
        gaps = extract_gaps(spec, run, truth_uids)
        if gaps is not None and all(g > 0 for g in gaps):
            result.gaps_ns.append(gaps)
    result.runs_needed = attempts
    if len(result.gaps_ns) < runs:
        raise CorpusError(
            f"{spec.bug_id}: only {len(result.gaps_ns)}/{runs} measurable "
            f"failures in {attempts} executions"
        )
    return result


def extract_gaps(
    spec: BugSpec, run: ClientRun, truth_uids: list[int]
) -> list[int] | None:
    """Gaps (ns) between consecutive target events of one failing run."""
    failure = run.failure.report if run.failure else None
    if failure is None:
        return None
    if spec.ground_truth.pattern == "deadlock":
        if not isinstance(failure, DeadlockReport) or len(failure.cycle) < 2:
            return None
        # dT of Figure 1a: time between the two blocked acquisition attempts
        times = sorted(e.since for e in failure.cycle)
        return [times[-1] - times[0]]
    times = _event_chain_times(spec, run, truth_uids)
    if times is None:
        return None
    return [b - a for a, b in zip(times, times[1:])]


def _event_chain_times(
    spec: BugSpec, run: ClientRun, truth_uids: list[int]
) -> list[int] | None:
    """Timestamps of the target events, matched backward from the failure.

    The last target event anchors at the failure (it *is* the failing
    instruction for crashes); earlier events are each the latest
    occurrence before their successor, with the thread-alternation
    constraints of the pattern shape (ab / aba).
    """
    failure = run.failure.report
    log = run.result.event_log
    shape = _SHAPE.get(spec.ground_truth.pattern, "ab")
    n = len(truth_uids)
    events_by_uid: dict[int, list] = {}
    for ev in log:
        events_by_uid.setdefault(ev.uid, []).append(ev)

    # resolve the final event
    last_uid = truth_uids[-1]
    if last_uid == failure.failing_uid:
        t_last, tid_last = failure.time, failure.failing_tid
    else:
        cands = [e for e in events_by_uid.get(last_uid, []) if e.time <= failure.time]
        if not cands:
            return None
        chosen = max(cands, key=lambda e: e.time)
        t_last, tid_last = chosen.time, chosen.tid
    times = [0] * n
    tids = [0] * n
    times[-1], tids[-1] = t_last, tid_last
    for k in range(n - 2, -1, -1):
        # shape "ab": the earlier event is in the other thread; shape
        # "aba": the middle event is in the other thread, the first in
        # the same thread as the last.
        want_same_as_last = shape[k] == shape[-1]
        cands = [
            e
            for e in events_by_uid.get(truth_uids[k], [])
            if e.time < times[k + 1] and (e.tid == tids[-1]) == want_same_as_last
        ]
        if not cands:
            return None
        chosen = max(cands, key=lambda e: e.time)
        times[k], tids[k] = chosen.time, chosen.tid
    return times


# ---------------------------------------------------------------------------
# §6.1: accuracy (single failure -> diagnosis vs. ground truth)
# ---------------------------------------------------------------------------


@dataclass
class AccuracyOutcome:
    bug_id: str
    diagnosed: bool
    exact: bool  # diagnosed events == ground truth, in order
    f1: float
    unambiguous: bool
    ordering_accuracy: float
    bug_kind: str
    report: object = None


def run_accuracy(spec: BugSpec, start_seed: int = 0, obs=None) -> AccuracyOutcome:
    from repro.core.accuracy import ordering_accuracy

    module = spec.module()
    client = client_for(spec, tracing=True)
    failing = client.find_runs(True, 1, start_seed=start_seed)
    if not failing:
        raise CorpusError(f"{spec.bug_id}: no failing run found")
    server = SnorlaxServer(module, obs=obs)
    report = server.diagnose(failing[0], client).report
    truth = spec.ground_truth.resolve(module)
    diag = report.ordered_target_uids()
    return AccuracyOutcome(
        bug_id=spec.bug_id,
        diagnosed=report.diagnosed,
        exact=diag == truth,
        f1=report.root_cause.f1 if report.root_cause else 0.0,
        unambiguous=report.unambiguous,
        ordering_accuracy=ordering_accuracy(diag, truth),
        bug_kind=report.bug_kind,
        report=report,
    )


def flat_schedule_digest(spec: BugSpec, seeds: int = 3) -> str:
    """A behavioral fingerprint of ``spec`` under the flat (default
    random) scheduler: per-seed outcome, virtual duration, instruction
    count, and failing uid, hashed together.

    Any change to the default scheduling path — quantum drawing, RNG
    consumption, blocking/wake order — shifts at least one seed's
    interleaving and flips the digest, so a golden file of these pins
    the production scheduler byte-for-byte across refactors.
    """
    import hashlib
    import json

    client = client_for(spec, tracing=False)
    h = hashlib.sha256()
    for seed in range(seeds):
        run = client.run_once(seed)
        r = run.result
        fail_uid = (
            run.failure.failing_uid if run.failed and run.failure else 0
        )
        h.update(
            json.dumps(
                [seed, r.outcome, r.duration, r.instructions_executed,
                 fail_uid]
            ).encode()
        )
    return h.hexdigest()


def diagnosis_span_tree(spec: BugSpec, start_seed: int = 0) -> str:
    """One bug's full diagnosis run with tracing on, rendered as the
    indented span tree — what the benches append to their reports so a
    regression in a stage's share of the time is visible in CI."""
    from repro.obs import Observability

    obs = Observability()
    run_accuracy(spec, start_seed=start_seed, obs=obs)
    return obs.tracer.render_tree()


# ---------------------------------------------------------------------------
# §6.2: tracing overhead (Figure 8)
# ---------------------------------------------------------------------------


@dataclass
class OverheadMeasurement:
    label: str
    fractions: list[float] = field(default_factory=list)

    @property
    def mean_percent(self) -> float:
        return 100.0 * statistics.fmean(self.fractions) if self.fractions else 0.0

    @property
    def peak_percent(self) -> float:
        return 100.0 * max(self.fractions) if self.fractions else 0.0


def measure_tracing_overhead(
    spec: BugSpec, seeds: int = 5, start_seed: int = 100_000
) -> OverheadMeasurement:
    """Traced vs. untraced duration on successful executions.

    Uses successful runs (the production steady state Figure 8 measures);
    identical seeds give identical schedules modulo the tracing costs.
    """
    traced = client_for(spec, tracing=True)
    result = OverheadMeasurement(spec.system)
    seed = start_seed
    collected = 0
    while collected < seeds and seed < start_seed + 500:
        run = traced.run_once(seed)
        if run.failed:
            seed += 1
            continue
        base = traced.run_untraced(seed)
        if base.outcome != "success" or base.duration <= 0:
            seed += 1
            continue
        result.fractions.append((run.result.duration - base.duration) / base.duration)
        collected += 1
        seed += 1
    return result
