"""Benchmark harness shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    AccuracyOutcome,
    CihMeasurement,
    OverheadMeasurement,
    client_for,
    diagnosis_span_tree,
    extract_gaps,
    flat_schedule_digest,
    measure_cih,
    measure_tracing_overhead,
    run_accuracy,
)
from repro.bench.scalability import (
    ScalabilityPoint,
    build_server_app,
    measure_scalability_point,
    scalability_sweep,
)
from repro.bench.tables import render_series, render_table

__all__ = [
    "AccuracyOutcome",
    "CihMeasurement",
    "OverheadMeasurement",
    "client_for",
    "diagnosis_span_tree",
    "extract_gaps",
    "flat_schedule_digest",
    "measure_cih",
    "measure_tracing_overhead",
    "run_accuracy",
    "ScalabilityPoint",
    "build_server_app",
    "measure_scalability_point",
    "scalability_sweep",
    "render_series",
    "render_table",
]
