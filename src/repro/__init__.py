"""repro: Lazy Diagnosis of In-Production Concurrency Bugs (SOSP 2017).

A from-scratch reproduction of the Snorlax system: an IR + multithreaded
execution simulator + PT-like hardware tracing substrate, the Lazy
Diagnosis analysis pipeline on top, a Gist-style baseline, and the
54-bug / 13-system corpus the paper's evaluation uses.

Quickstart::

    from repro import corpus, SnorlaxClient, SnorlaxServer

    spec = corpus.bug("pbzip2-n/a")
    client = SnorlaxClient(spec.module(), spec.workload)
    failing = client.find_runs(want_failing=True, count=1)[0]
    result = SnorlaxServer(spec.module()).diagnose(failing, client)
    print(result.render())

or, with evidence already in hand, through the unified front door::

    from repro.api import diagnose

    result = diagnose(module, traces=samples)  # samples carry the failure
    print(result.report.render())
"""

from repro import api, baselines, bench, core, corpus, fleet, ir, obs, pt, runtime, sim
from repro.api import DiagnosisRequest, DiagnosisResult, diagnose
from repro.core import (
    DiagnosisReport,
    LazyDiagnosis,
    PipelineConfig,
    PointsToAnalysis,
    TraceSample,
    ordering_accuracy,
)
from repro.ir import IRBuilder, Module, parse_module, print_module
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.pt import PTDriver, TraceConfig, decode_thread_trace
from repro.runtime import SnorlaxClient, SnorlaxServer
from repro.sim import Machine, RandomScheduler

__version__ = "1.0.0"

__all__ = [
    "api",
    "baselines",
    "bench",
    "core",
    "corpus",
    "fleet",
    "ir",
    "obs",
    "pt",
    "runtime",
    "sim",
    "diagnose",
    "DiagnosisRequest",
    "DiagnosisResult",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "DiagnosisReport",
    "LazyDiagnosis",
    "PipelineConfig",
    "PointsToAnalysis",
    "TraceSample",
    "ordering_accuracy",
    "IRBuilder",
    "Module",
    "parse_module",
    "print_module",
    "PTDriver",
    "TraceConfig",
    "decode_thread_trace",
    "SnorlaxClient",
    "SnorlaxServer",
    "Machine",
    "RandomScheduler",
    "__version__",
]
