"""Evidence graphs: every diagnosis conclusion links back to its raw
inputs.

Lumos (PAPERS.md) argues that provenance is what makes an *online*
diagnosis service trustworthy: an operator looking at "root cause:
unordered write/read pair at uid 41" six hours after the fact must be
able to walk back through the ranked patterns, the constraint funnel,
the decoded traces, and down to the content hashes of the raw PT ring
buffers that fed them.  This module builds that DAG for every
:class:`~repro.core.report.DiagnosisReport`::

    report ──> pattern*  ──> constraints ──> trace* ──> pt_buffer*

Nodes are **content-addressed**: a node's digest is the sha256 of its
kind plus canonical-JSON payload, so two diagnoses over identical
evidence produce byte-identical graphs.  Edges are stamped with the
producing pipeline stage and — when tracing was on — the stage's span
id, tying the provenance record to the run's flight recorder.

The graph digest deliberately **excludes span ids**: a cold diagnosis
and a store-served replay of the same evidence carry different span
trees but identical evidence, and the always-on acceptance criterion
("anomaly-triggered report digests match on-demand diagnosis") extends
to the graphs.  Span ids are annotation, not identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field


def _sha256_json(value) -> str:
    return hashlib.sha256(
        json.dumps(value, sort_keys=True, default=str).encode()
    ).hexdigest()


def report_key(digest: dict) -> str:
    """The content key a report's evidence graph is stored under: the
    sha256 of the report digest's canonical JSON.  Signature-independent
    — two signatures that converge on the same digest share a graph."""
    return _sha256_json(digest)


@dataclass(frozen=True)
class EvidenceNode:
    """One content-addressed fact in the graph."""

    digest: str  # sha256 over (kind, canonical payload)
    kind: str  # "report" | "pattern" | "constraints" | "trace" | "pt_buffer"
    payload: dict = field(hash=False)

    @classmethod
    def build(cls, kind: str, payload: dict) -> "EvidenceNode":
        return cls(
            digest=_sha256_json({"kind": kind, "payload": payload}),
            kind=kind,
            payload=payload,
        )


@dataclass(frozen=True)
class EvidenceEdge:
    """``src`` was derived from ``dst`` by pipeline stage ``stage``."""

    src: str  # node digest
    dst: str  # node digest
    stage: str  # producing pipeline stage name
    span_id: int | None = None  # that stage's span in the run's trace


@dataclass(frozen=True)
class EvidenceGraph:
    """A report's full provenance DAG, ready to persist or render."""

    report_key: str
    nodes: tuple[EvidenceNode, ...]
    edges: tuple[EvidenceEdge, ...]

    def digest(self) -> str:
        """Content digest of the graph *evidence* — node digests plus
        (src, dst, stage) triples, span ids excluded (annotation, not
        identity: a cached replay must digest identically to the cold
        run it replays)."""
        return _sha256_json(
            {
                "nodes": sorted(n.digest for n in self.nodes),
                "edges": sorted(
                    [e.src, e.dst, e.stage] for e in self.edges
                ),
            }
        )

    def node(self, digest: str) -> EvidenceNode | None:
        for node in self.nodes:
            if node.digest == digest:
                return node
        return None

    def nodes_of_kind(self, kind: str) -> list[EvidenceNode]:
        return [n for n in self.nodes if n.kind == kind]

    def edges_from(self, digest: str) -> list[EvidenceEdge]:
        return [e for e in self.edges if e.src == digest]

    def to_dict(self) -> dict:
        return {
            "report_key": self.report_key,
            "digest": self.digest(),
            "nodes": [
                {"digest": n.digest, "kind": n.kind, "payload": n.payload}
                for n in self.nodes
            ],
            "edges": [
                {
                    "src": e.src,
                    "dst": e.dst,
                    "stage": e.stage,
                    "span_id": e.span_id,
                }
                for e in self.edges
            ],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "EvidenceGraph":
        return cls(
            report_key=d["report_key"],
            nodes=tuple(
                EvidenceNode(
                    digest=n["digest"], kind=n["kind"], payload=n["payload"]
                )
                for n in d["nodes"]
            ),
            edges=tuple(
                EvidenceEdge(
                    src=e["src"],
                    dst=e["dst"],
                    stage=e["stage"],
                    span_id=e.get("span_id"),
                )
                for e in d["edges"]
            ),
        )

    def render(self) -> str:
        """Human-readable walk of the DAG, report first."""
        by_digest = {n.digest: n for n in self.nodes}
        lines = [f"evidence graph {self.digest()[:12]} (report {self.report_key[:12]})"]
        roots = self.nodes_of_kind("report")

        def walk(node: EvidenceNode, depth: int, seen: set[str]) -> None:
            label = {
                "report": lambda p: f"report: {p.get('root_cause') or 'undiagnosed'}",
                "pattern": lambda p: f"pattern #{p['rank']}: {p['pattern']}",
                "constraints": lambda p: (
                    f"constraints: {p.get('alias_candidates', '?')} alias "
                    f"candidates -> {p.get('rank1_candidates', '?')} rank-1"
                ),
                "trace": lambda p: (
                    f"trace {p['label']} "
                    f"({'failing' if p['failing'] else 'success'}, "
                    f"{len(p['buffer_hashes'])} threads)"
                ),
                "pt_buffer": lambda p: (
                    f"pt buffer tid={p['tid']} {p['bytes']}B "
                    f"sha256={p['sha256'][:12]}"
                ),
            }.get(node.kind, lambda p: node.kind)(node.payload)
            lines.append(f"{'  ' * depth}[{node.kind}] {label}")
            if node.digest in seen:
                return
            seen.add(node.digest)
            for edge in self.edges_from(node.digest):
                child = by_digest.get(edge.dst)
                if child is not None:
                    walk(child, depth + 1, seen)

        for root in roots:
            walk(root, 1, set())
        return "\n".join(lines)


def _buffer_hashes(sample) -> dict[int, dict]:
    """Content hashes of one sample's raw per-thread PT rings."""
    return {
        tid: {"sha256": hashlib.sha256(raw).hexdigest(), "bytes": len(raw)}
        for tid, raw in sorted(sample.buffers.items())
    }


def _stage_span_index(spans) -> dict[str, int]:
    """First span id per stage name in a finished span tree — what the
    edges get stamped with.  Empty when tracing was off."""
    index: dict[str, int] = {}
    for span in spans or ():
        if span.name not in index:
            index[span.name] = span.span_id
    return index


def build_evidence_graph(
    digest: dict,
    failing_samples,
    successes,
    spans=(),
) -> EvidenceGraph:
    """Build the provenance DAG for one finished diagnosis.

    ``digest`` is the wire-form :func:`~repro.fleet.server.report_digest`
    (everything deterministic in the evidence); ``failing_samples`` and
    ``successes`` are the :class:`~repro.core.pipeline.TraceSample` lists
    the pipeline consumed; ``spans`` the run's finished span tree (may
    be empty — span ids are optional annotation).
    """
    span_ids = _stage_span_index(spans)
    # nodes/edges are deduped by content key at build time so the
    # in-memory graph and its store round-trip (INSERT OR IGNORE, also
    # content-keyed) digest identically
    nodes: dict[str, EvidenceNode] = {}
    edge_keys: set[tuple[str, str, str]] = set()
    edges: list[EvidenceEdge] = []

    def add_node(kind: str, payload: dict) -> EvidenceNode:
        node = EvidenceNode.build(kind, payload)
        return nodes.setdefault(node.digest, node)

    def add_edge(src: EvidenceNode, dst: EvidenceNode, stage: str) -> None:
        key = (src.digest, dst.digest, stage)
        if key in edge_keys:
            return
        edge_keys.add(key)
        edges.append(
            EvidenceEdge(
                src=src.digest,
                dst=dst.digest,
                stage=stage,
                span_id=span_ids.get(stage),
            )
        )

    report_node = add_node("report", dict(digest))
    constraints_node = add_node(
        "constraints", dict(digest.get("stage_funnel", {}))
    )

    patterns = list(digest.get("ranked_patterns", ()))
    for rank, pattern in enumerate(patterns, 1):
        node = add_node("pattern", {"pattern": pattern, "rank": rank})
        add_edge(report_node, node, "statistical_diagnosis")
        add_edge(node, constraints_node, "pattern_computation")
    if not patterns:
        # an undiagnosed report still links to the constraint funnel it
        # exhausted — provenance of "we looked and found nothing"
        add_edge(report_node, constraints_node, "pattern_computation")

    for sample in list(failing_samples) + list(successes):
        hashes = _buffer_hashes(sample)
        trace_node = add_node(
            "trace",
            {
                "label": sample.label,
                "failing": sample.failing,
                "buffer_hashes": {
                    str(tid): h["sha256"] for tid, h in hashes.items()
                },
            },
        )
        add_edge(constraints_node, trace_node, "points_to")
        for tid, h in hashes.items():
            buffer_node = add_node(
                "pt_buffer",
                {"tid": tid, "sha256": h["sha256"], "bytes": h["bytes"]},
            )
            add_edge(trace_node, buffer_node, "trace_processing")

    return EvidenceGraph(
        report_key=report_key(digest),
        nodes=tuple(nodes.values()),
        edges=tuple(edges),
    )
