"""Hierarchical span tracer: where did this diagnosis spend its time?

A :class:`Span` is one timed region of the pipeline — a stage, a cache
lookup, a fleet round-trip — with a name, monotonic-clock duration,
key/value attributes, and a parent.  Spans form a tree: the root of a
diagnosis job covers the whole run, its children are the five pipeline
stages plus collection, and their children attribute time further down
(constraint generation vs. solving, per-request round-trips).

Design constraints, in order:

* **Near-zero cost when disabled.** ``Tracer(enabled=False).span(...)``
  allocates nothing: it returns one shared no-op context manager whose
  ``__enter__`` yields one shared :data:`NULL_SPAN`.  Hot paths can be
  instrumented unconditionally and pay one attribute check when tracing
  is off — the Table 4 numbers must not move.
* **Thread-safe.** The current-span stack is thread-local (each worker
  thread nests its own spans correctly); the finished-span list is
  locked.  Cross-thread parentage — a speculative collection batch
  fanned out to pool threads — is explicit: pass ``parent=span``.
* **Monotonic.** Durations come from ``perf_counter_ns``; wall-clock
  never enters a span, so traces from machines with stepping clocks
  still order correctly.
"""

from __future__ import annotations

import itertools
import json
import threading
from time import perf_counter_ns


class Span:
    """One finished-or-running timed region."""

    __slots__ = ("name", "span_id", "parent_id", "start_ns", "end_ns", "attrs", "thread")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        start_ns: int,
        thread: str,
        attrs: dict | None = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: int | None = None
        self.attrs: dict = attrs or {}
        self.thread = thread

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def set(self, **attrs) -> None:
        """Attach key/value attributes to the span."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "thread": self.thread,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"{self.duration_ns / 1e6:.3f}ms)"
        )


class _NullSpan:
    """The span handed out when tracing is disabled: absorbs everything."""

    __slots__ = ()

    name = "<disabled>"
    span_id = 0
    parent_id = None
    start_ns = 0
    end_ns = 0
    duration_ns = 0
    duration_s = 0.0
    attrs: dict = {}
    thread = ""

    def set(self, **attrs) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Shared no-op context manager: disabled tracing allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()

_UNSET = object()  # "use the current thread's span stack" sentinel


class _SpanContext:
    """The live context manager ``Tracer.span`` returns."""

    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, parent, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._start(self._name, self._parent, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Collects a run's spans; one tracer per observed process/run."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._finished: list[Span] = []
        self._local = threading.local()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, parent=_UNSET, **attrs):
        """Context manager for one timed region.

        ``parent`` defaults to the calling thread's innermost open span;
        pass an explicit :class:`Span` (or ``None`` for a root) when the
        work runs on a different thread than its logical parent.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, parent, attrs)

    def record(self, name: str, duration_s: float, parent=_UNSET, **attrs) -> Span | _NullSpan:
        """Record an already-elapsed region (e.g. queue wait measured
        before tracing could wrap it) as a finished span ending now."""
        if not self.enabled:
            return NULL_SPAN
        span = self._start(name, parent, attrs)
        span.start_ns -= int(duration_s * 1e9)
        self._finish(span)
        return span

    def _start(self, name: str, parent, attrs: dict) -> Span:
        stack = self._stack()
        if parent is _UNSET:
            parent_id = stack[-1].span_id if stack else None
        elif parent is None or isinstance(parent, _NullSpan):
            parent_id = None
        else:
            parent_id = parent.span_id
        span = Span(
            name,
            next(self._ids),
            parent_id,
            perf_counter_ns(),
            threading.current_thread().name,
            attrs,
        )
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end_ns = perf_counter_ns()
        stack = self._stack()
        if span in stack:  # tolerate exits out of order across threads
            stack.remove(span)
        with self._lock:
            self._finished.append(span)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- reading -----------------------------------------------------------

    def current(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished_spans(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()

    def subtree(self, root: Span | _NullSpan) -> list[Span]:
        """``root`` plus every finished descendant, depth-first.

        Children finish before their parent, so once the root is
        finished the whole subtree is in the finished list.
        """
        if isinstance(root, _NullSpan):
            return []
        children = self._children_index()
        out: list[Span] = []
        work = [root]
        while work:
            span = work.pop()
            out.append(span)
            work.extend(reversed(children.get(span.span_id, ())))
        return out

    def _children_index(self) -> dict[int, list[Span]]:
        index: dict[int, list[Span]] = {}
        for span in self.finished_spans():
            if span.parent_id is not None:
                index.setdefault(span.parent_id, []).append(span)
        for kids in index.values():
            kids.sort(key=lambda s: (s.start_ns, s.span_id))
        return index

    # -- rendering ---------------------------------------------------------

    def render_tree(self, root: Span | None = None, max_attrs: int = 6) -> str:
        """Human-readable indented span tree (all roots, or one subtree)."""
        spans = self.finished_spans()
        if not spans:
            return "(no spans recorded)"
        children = self._children_index()
        ids = {s.span_id for s in spans}
        if root is not None:
            roots = [root]
        else:
            roots = sorted(
                (s for s in spans if s.parent_id is None or s.parent_id not in ids),
                key=lambda s: (s.start_ns, s.span_id),
            )
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            attrs = ""
            if span.attrs:
                shown = list(span.attrs.items())[:max_attrs]
                attrs = "  {" + ", ".join(f"{k}={v}" for k, v in shown) + "}"
            lines.append(
                f"{'  ' * depth}{span.name}  {span.duration_ns / 1e6:.3f} ms{attrs}"
            )
            for child in children.get(span.span_id, ()):
                walk(child, depth + 1)

        for r in roots:
            walk(r, 0)
        return "\n".join(lines)

    def to_jsonl(self) -> str:
        """One JSON object per span, start-ordered — the ``--trace-out``
        artifact format."""
        spans = sorted(self.finished_spans(), key=lambda s: (s.start_ns, s.span_id))
        return "\n".join(json.dumps(s.to_dict(), default=str) for s in spans)


NULL_TRACER = Tracer(enabled=False)
"""The shared disabled tracer un-observed code paths run against."""
