"""The live fleet dashboard: one stdlib HTTP server, zero dependencies.

An always-on diagnosis service needs to be *watched*, not just scraped:
which endpoints are alive, what the anomaly detector thinks right now,
which signatures got diagnosed and why.  This module serves that view:

* ``GET /``                    — single-page HTML/JS UI (inline, no assets)
* ``GET /api/fleet``           — health table + anomaly scores (JSON)
* ``GET /api/timeline``        — anomaly/diagnosis event feed (JSON)
* ``GET /api/evidence?report=<key>`` — one evidence graph (JSON)
* ``GET /metrics``             — Prometheus text (same registry)

The server knows nothing about fleets: it is wired with three callables
(status, timeline, evidence lookup) so tests can drive it with stubs and
the fleet server can pass its own thread-safe accessors.  Handlers run
on the ThreadingHTTPServer's pool; the callables are responsible for
their own synchronization (the fleet's hop onto the event loop).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlparse

from repro.obs.exporters import prometheus_text
from repro.obs.registry import MetricsRegistry

_PAGE = """<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>snorlax fleet</title>
<style>
  body { font-family: ui-monospace, monospace; margin: 1.5em; background: #101418; color: #d8dee9; }
  h1, h2 { font-weight: 600; }
  h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.5em; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: 0.25em 0.75em; border-bottom: 1px solid #2e3440; }
  th { color: #81a1c1; }
  .dead { color: #bf616a; } .ok { color: #a3be8c; }
  pre { background: #161b22; padding: 0.75em; overflow-x: auto; }
  a { color: #88c0d0; }
  .muted { color: #4c566a; }
</style>
</head>
<body>
<h1>snorlax fleet — always-on diagnosis</h1>
<h2>endpoints</h2>
<table id="agents"><thead><tr>
  <th>agent</th><th>bug</th><th>state</th><th>heartbeats</th>
  <th>samples</th><th>failures</th><th>last seen</th><th>pending</th>
</tr></thead><tbody></tbody></table>
<h2>anomaly scores</h2>
<table id="anomaly"><thead><tr>
  <th>bug</th><th>signature</th><th>score</th><th>hang</th>
  <th>obs</th><th>hits</th><th>last trigger</th>
</tr></thead><tbody></tbody></table>
<h2>timeline</h2>
<table id="timeline"><thead><tr>
  <th>at</th><th>event</th><th>signature</th><th>detail</th>
</tr></thead><tbody></tbody></table>
<h2>evidence</h2>
<div class="muted">click a diagnosis row's report key to load its provenance graph</div>
<pre id="evidence">(none loaded)</pre>
<script>
function cell(text, cls) {
  const td = document.createElement('td');
  td.textContent = text;
  if (cls) td.className = cls;
  return td;
}
async function loadEvidence(key) {
  const r = await fetch('/api/evidence?report=' + key);
  const el = document.getElementById('evidence');
  el.textContent = r.ok ? JSON.stringify(await r.json(), null, 2)
                        : 'no evidence for ' + key;
}
async function refresh() {
  const fleet = await (await fetch('/api/fleet')).json();
  const agents = document.querySelector('#agents tbody');
  agents.replaceChildren();
  for (const a of fleet.agents) {
    const tr = document.createElement('tr');
    tr.append(
      cell(a.agent_id), cell(a.bug_id),
      cell(a.alive ? 'alive' : 'dead', a.alive ? 'ok' : 'dead'),
      cell(a.heartbeats), cell(a.samples_sent), cell(a.failures_seen),
      cell(a.last_seen_age_s + 's ago'), cell(a.pending));
    agents.append(tr);
  }
  const anomaly = document.querySelector('#anomaly tbody');
  anomaly.replaceChildren();
  for (const [bug, sigs] of Object.entries(fleet.anomaly)) {
    for (const [sig, s] of Object.entries(sigs)) {
      const tr = document.createElement('tr');
      tr.append(cell(bug), cell(sig), cell(s.score), cell(s.hang_score),
                cell(s.observations), cell(s.hits),
                cell(s.last_trigger === null ? '—' : s.last_trigger));
      anomaly.append(tr);
    }
  }
  const timeline = document.querySelector('#timeline tbody');
  timeline.replaceChildren();
  const events = await (await fetch('/api/timeline')).json();
  for (const e of events.slice().reverse()) {
    const tr = document.createElement('tr');
    let detail;
    if (e.event === 'anomaly') {
      detail = cell(e.reason + ' score=' + e.score);
    } else {
      detail = document.createElement('td');
      const a = document.createElement('a');
      a.textContent = (e.root_cause || 'undiagnosed') + ' [' + e.report_key.slice(0, 12) + ']';
      a.href = '#evidence';
      a.onclick = () => loadEvidence(e.report_key);
      detail.append(a);
    }
    tr.append(cell(e.at), cell(e.event), cell(e.signature), detail);
    timeline.append(tr);
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""


class _DashboardHandler(BaseHTTPRequestHandler):
    server_version = "snorlax-dashboard"

    def _reply(self, body: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload, status: int = 200) -> None:
        self._reply(
            json.dumps(payload, sort_keys=True).encode(),
            "application/json",
            status,
        )

    def do_GET(self):  # noqa: N802 - http.server API
        srv: DashboardServer = self.server.dashboard  # type: ignore[attr-defined]
        url = urlparse(self.path)
        route = url.path.rstrip("/") or "/"
        try:
            if route == "/":
                self._reply(_PAGE.encode(), "text/html; charset=utf-8")
            elif route == "/api/fleet":
                self._json(srv.status_fn())
            elif route == "/api/timeline":
                self._json(srv.timeline_fn())
            elif route == "/api/evidence":
                keys = parse_qs(url.query).get("report", [])
                payload = srv.evidence_fn(keys[0]) if keys else None
                if payload is None:
                    self._json({"error": "unknown report key"}, status=404)
                else:
                    self._json(payload)
            elif route == "/metrics":
                self._reply(
                    prometheus_text(srv.registry).encode(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self.send_error(404, "unknown route")
        except Exception as exc:  # a flaky status_fn must not kill the UI
            self._json({"error": str(exc)}, status=500)

    def log_message(self, fmt, *args):  # silence per-request stderr noise
        pass


class DashboardServer:
    """The fleet's live UI endpoint (``--dashboard-port``; 0 picks a
    free port, ``port`` reports the bound one after :meth:`start`)."""

    def __init__(
        self,
        registry: MetricsRegistry,
        status_fn: Callable[[], dict],
        timeline_fn: Callable[[], list],
        evidence_fn: Callable[[str], dict | None],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self.status_fn = status_fn
        self.timeline_fn = timeline_fn
        self.evidence_fn = evidence_fn
        self.host = host
        self.port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        httpd = ThreadingHTTPServer((self.host, self.port), _DashboardHandler)
        httpd.dashboard = self  # type: ignore[attr-defined]
        httpd.daemon_threads = True
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="obs-dashboard-http", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"
