"""Exporters: how observability leaves the process.

Three export paths, matching how a production diagnosis service is
actually watched:

* **JSONL span log** (:func:`write_trace_jsonl`) — one JSON object per
  finished span, the per-run artifact ``--trace-out`` writes and CI
  uploads.  Greppable, diffable, loadable into any trace viewer with a
  ten-line adapter.
* **Prometheus text format** (:func:`prometheus_text`,
  :class:`MetricsHTTPServer`) — the scrape surface.  Counters map to
  ``counter``, gauges to ``gauge``, histograms to ``summary`` with
  ``_count`` / ``_sum`` and p50/p95/p99 quantile samples.
  :func:`parse_prometheus_text` is the matching reader the round-trip
  tests (and the CI smoke check) use.
* **Flight recorder** (:func:`render_flight_recorder`) — the
  human-readable per-job summary embedded in a
  :class:`~repro.core.report.DiagnosisReport`: the job's span tree with
  durations, so "where did this diagnosis spend its 19 ms?" is answered
  by the report itself.
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Span, Tracer

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>[^\s]+)$"
)

QUANTILES = (50.0, 95.0, 99.0)


def metric_name(name: str, prefix: str = "") -> str:
    """Sanitize an internal metric name into the Prometheus charset.

    Every char outside ``[a-zA-Z0-9_:]`` becomes ``_`` (shard ids carry
    ``#``, span names carry ``.``), and a result whose first char is
    not ``[a-zA-Z_:]`` — an empty prefix in front of ``0_errors``, or
    an empty name — gets a leading ``_`` so the sample line stays
    parseable under the 0.0.4 grammar."""
    full = prefix + _NAME_RE.sub("_", name)
    if not full or not (full[0].isalpha() or full[0] in "_:"):
        full = "_" + full
    return full


def format_value(value: float) -> str:
    """One sample value in exposition format: the 0.0.4 spellings
    ``NaN`` / ``+Inf`` / ``-Inf`` for non-finite floats (Python's
    ``repr`` gives ``nan``/``inf``, which strict scrapers reject),
    ``repr`` otherwise (round-trip exact)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(value)


# ---------------------------------------------------------------------------
# Prometheus text format (version 0.0.4)
# ---------------------------------------------------------------------------


def prometheus_text(registry: MetricsRegistry, prefix: str = "snorlax_") -> str:
    """Render a registry snapshot in the Prometheus text exposition
    format.  Counters keep their exact integer values (the round-trip
    tests assert ``parse(render(m)) == m``)."""
    snap = registry.as_dict()
    lines: list[str] = []
    for name, value in snap["counters"].items():
        full = metric_name(name, prefix)
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {value}")
    for name, value in snap["gauges"].items():
        full = metric_name(name, prefix)
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {format_value(value)}")
    for name, summary in snap["timers"].items():
        full = metric_name(name, prefix) + "_seconds"
        lines.append(f"# TYPE {full} summary")
        for q in QUANTILES:
            lines.append(
                f'{full}{{quantile="{q / 100:g}"}} '
                f"{format_value(registry.percentile(name, q))}"
            )
        lines.append(f"{full}_sum {format_value(summary['total_s'])}")
        lines.append(f"{full}_count {summary['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse text-format samples back into ``{name[{labels}]: value}``.

    Raises ``ValueError`` on a malformed sample line, which is what the
    CI smoke assertion relies on to prove the scrape is well-formed.
    """
    samples: dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed prometheus sample line: {raw!r}")
        key = match.group("name")
        if match.group("labels"):
            key += "{" + match.group("labels") + "}"
        samples[key] = float(match.group("value"))
    return samples


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "snorlax-obs"

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path.rstrip("/") not in ("", "/metrics"):
            self.send_error(404, "only /metrics is served here")
            return
        body = prometheus_text(
            self.server.registry, self.server.metric_prefix  # type: ignore[attr-defined]
        ).encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # silence per-scrape stderr noise
        pass


class MetricsHTTPServer:
    """A tiny scrape endpoint: ``GET /metrics`` serves the registry.

    The fleet server starts one when given ``metrics_port`` (0 picks a
    free port); ``port`` reports the bound port after :meth:`start`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "snorlax_",
    ):
        self.registry = registry
        self.host = host
        self.port = port
        self.prefix = prefix
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        httpd = ThreadingHTTPServer((self.host, self.port), _MetricsHandler)
        httpd.registry = self.registry  # type: ignore[attr-defined]
        httpd.metric_prefix = self.prefix  # type: ignore[attr-defined]
        httpd.daemon_threads = True
        self._httpd = httpd
        self.port = httpd.server_address[1]
        self._thread = threading.Thread(
            target=httpd.serve_forever, name="obs-metrics-http", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"


# ---------------------------------------------------------------------------
# JSONL span log
# ---------------------------------------------------------------------------


def write_trace_jsonl(path: str | Path, tracer: Tracer) -> int:
    """Write every finished span as one JSON line; returns the count."""
    lines = tracer.to_jsonl()
    text = lines + "\n" if lines else ""
    Path(path).write_text(text)
    return len(tracer)


def read_trace_jsonl(path: str | Path) -> list[dict]:
    """Load a ``--trace-out`` artifact back (the CI smoke check)."""
    spans = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            spans.append(json.loads(line))
    return spans


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


def render_flight_recorder(tracer: Tracer, root: Span) -> str:
    """The per-job summary embedded in a DiagnosisReport: the job's span
    subtree, durations in ms, attributes inline."""
    lines = ["--- flight recorder ---"]
    lines.append(tracer.render_tree(root=root))
    return "\n".join(lines)
