"""repro.obs — end-to-end observability for the diagnosis pipeline.

Snorlax's premise is diagnosing failures *in production*; a production
system must be able to answer "where did this diagnosis spend its
19 ms, and which endpoint stalled collection?" without a debugger.
This package is that answer, threaded through every layer:

* :class:`~repro.obs.tracer.Tracer` — hierarchical span tracer
  (context-manager API, monotonic durations, thread-safe, near-zero
  cost when disabled) covering the five pipeline stages, fleet
  collection round-trips, job-queue wait, and cache lookups;
* :class:`~repro.obs.registry.MetricsRegistry` — the process-wide
  counters/gauges/histograms surface that unifies the legacy
  ``FleetMetrics`` / ``SolverStats`` / ``CacheStats`` vocabularies;
* :mod:`~repro.obs.exporters` — JSONL span logs, Prometheus text
  format (+ HTTP scrape endpoint), and the per-job flight recorder;
* :class:`~repro.obs.profiler.SamplingProfiler` — optional per-job
  stack sampling for hot-path attribution.

The :class:`Observability` bundle is what flows through APIs: pass one
to ``repro.api.diagnose(..., obs=...)``, ``SnorlaxServer``, or
``FleetServer`` and every layer below records into it.  ``None`` (or
:data:`NULL_OBS`) means "off" and costs nothing measurable.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.obs.dashboard import DashboardServer
from repro.obs.exporters import (
    MetricsHTTPServer,
    parse_prometheus_text,
    prometheus_text,
    read_trace_jsonl,
    render_flight_recorder,
    write_trace_jsonl,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry, NullMetricsRegistry
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Span, Tracer


@dataclass
class Observability:
    """One run's observability context: tracer + registry + profiler.

    ``Observability()`` is fully on (minus profiling);
    ``Observability(profile=True)`` adds per-job stack sampling;
    :data:`NULL_OBS` (what ``obs=None`` resolves to internally) disables
    everything at near-zero cost.
    """

    tracer: Tracer = field(default_factory=Tracer)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    profile: bool = False
    profile_interval_s: float = 0.002

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def profiler(self):
        """Context manager for one profiled job: a live
        :class:`SamplingProfiler`, or a ``None``-yielding null context
        when profiling is off."""
        if not self.profile:
            return nullcontext(None)
        return SamplingProfiler(self.profile_interval_s)

    @classmethod
    def disabled(cls) -> "Observability":
        return NULL_OBS


NULL_OBS = Observability(
    tracer=NULL_TRACER, registry=NULL_REGISTRY, profile=False
)
"""The shared no-op context disabled code paths thread through."""


def resolve_obs(obs: Observability | None) -> Observability:
    """``None`` -> the shared disabled context (internal plumbing)."""
    return obs if obs is not None else NULL_OBS


__all__ = [
    "DashboardServer",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "Observability",
    "SamplingProfiler",
    "Span",
    "Tracer",
    "parse_prometheus_text",
    "prometheus_text",
    "read_trace_jsonl",
    "render_flight_recorder",
    "resolve_obs",
    "write_trace_jsonl",
]
