"""The process-wide metrics registry: one naming surface for the stack.

Before ``repro.obs`` existed the reproduction had three disjoint ad-hoc
metric surfaces: ``repro.fleet.metrics.FleetMetrics`` (service
counters/timers), ``repro.core.andersen.SolverStats`` (solver work
counts), and ``repro.core.cache.CacheStats`` (hit/miss/eviction).  The
:class:`MetricsRegistry` unifies them: counters, gauges, and histograms
under one snake_case vocabulary, with ``percentile()`` and
``counters_with_prefix()`` everywhere, absorbed from the legacy stats
objects via :meth:`absorb_solver_stats` / :meth:`absorb_cache_stats`
(the legacy classes keep their read surface — see their modules).

Metric name vocabulary (prefix -> owner):

* ``solver_*`` — points-to solver work (propagations, SCC collapses…);
* ``analysis_cache_*`` / ``trace_cache_*`` — diagnosis cache health;
* ``stage_*`` (histograms) — per-pipeline-stage wall time;
* ``jobs_*`` / ``queue_*`` — diagnosis job queue;
* ``trace_request*`` / ``agents_*`` / ``chaos_*`` — fleet service and
  resilience counters (documented in :mod:`repro.fleet.metrics`);
* ``digest_mismatches`` — fleet vs. in-process verification failures.

Histograms are stored as raw observation lists ("timers" in the export
snapshot, for backward compatibility with the fleet dashboards/tests
that consume ``as_dict()["timers"]``).
"""

from __future__ import annotations

import math
import statistics
import threading
from contextlib import contextmanager
from time import perf_counter


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolated q-th percentile of pre-sorted observations."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def _finite(values: list[float]) -> list[float]:
    """Observations with NaN dropped.  A NaN observation (a failed
    timer, arithmetic on a corrupt sample) would poison ``sorted()``
    — NaN compares False with everything, so the 'sorted' list is
    misordered and every quantile after it is garbage."""
    return [v for v in values if not math.isnan(v)]


class MetricsRegistry:
    """Thread-safe counters, gauges, and histograms with percentiles."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            self._timers.setdefault(name, []).append(seconds)

    @contextmanager
    def timer(self, name: str):
        started = perf_counter()
        try:
            yield
        finally:
            self.observe(name, perf_counter() - started)

    def merge_counters(self, counters: dict[str, int], prefix: str = "") -> None:
        """Add a batch of counter increments (e.g. a legacy stats object
        rendered through its ``as_counters()`` accessor)."""
        with self._lock:
            for name, amount in counters.items():
                key = prefix + name
                self._counters[key] = self._counters.get(key, 0) + amount

    def absorb_solver_stats(self, stats) -> None:
        """Fold a :class:`~repro.core.andersen.SolverStats` (or any stats
        object exposing ``as_counters()``) into the unified vocabulary."""
        as_counters = getattr(stats, "as_counters", None)
        if as_counters is not None:
            self.merge_counters(as_counters())

    def absorb_check_stats(self, stats) -> None:
        """Fold a :class:`~repro.check.runner.CheckStats` into the
        unified ``check_*`` counter vocabulary — a self-check run is
        scraped/exported exactly like a fleet run."""
        as_counters = getattr(stats, "as_counters", None)
        if as_counters is not None:
            self.merge_counters(as_counters())

    def absorb_cache_stats(self, name: str, stats) -> None:
        """Snapshot one cache's :class:`~repro.core.cache.CacheStats`
        under ``{name}_hits`` / ``_misses`` / ``_evictions``.

        Cache stats are cumulative on the cache object, so this *sets*
        gauges-as-counters rather than incrementing: absorbing twice
        reflects the latest totals, not double counts.
        """
        with self._lock:
            for key, value in stats.as_counters(prefix=f"{name}_").items():
                self._counters[key] = value

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def timings(self, name: str) -> list[float]:
        with self._lock:
            return list(self._timers.get(name, ()))

    def median(self, name: str) -> float:
        values = _finite(self.timings(name))
        return statistics.median(values) if values else 0.0

    def percentile(self, name: str, q: float) -> float:
        """The q-th percentile (0 < q < 100) of a histogram's
        observations — tail latency is what degrades first when the
        network misbehaves.  Empty histograms (and histograms whose
        every observation was NaN) answer 0.0, never raise."""
        return _quantile(sorted(_finite(self.timings(name))), q)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """All counters whose name starts with ``prefix`` (e.g. the
        ``chaos_`` family) — how the simulation reports injected faults."""
        with self._lock:
            return {
                k: v for k, v in sorted(self._counters.items())
                if k.startswith(prefix)
            }

    def as_dict(self) -> dict:
        """A stable snapshot: counters, gauges, and histogram summaries
        (exported under the legacy ``timers`` key)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            timers = {k: list(v) for k, v in self._timers.items()}
        summary = {}
        for name, values in sorted(timers.items()):
            # summaries are computed over the finite observations only,
            # but ``count`` reports everything observed: a NaN-producing
            # timer shows up as count > what the stats cover, instead of
            # NaN-poisoning mean/median/p95 for the whole histogram
            finite = _finite(values)
            ordered = sorted(finite)
            summary[name] = {
                "count": len(values),
                "total_s": sum(finite),
                "mean_s": statistics.fmean(finite) if finite else 0.0,
                "median_s": statistics.median(finite) if finite else 0.0,
                "p95_s": _quantile(ordered, 95.0),
                "max_s": ordered[-1] if ordered else 0.0,
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "timers": summary,
        }

    def render(self) -> str:
        snap = self.as_dict()
        lines = ["=== fleet metrics ==="]
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(k) for k in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<{width}}  {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(k) for k in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<{width}}  {value:g}")
        if snap["timers"]:
            lines.append("timers:")
            for name, s in snap["timers"].items():
                lines.append(
                    f"  {name}: n={s['count']} total={s['total_s'] * 1000:.1f}ms "
                    f"mean={s['mean_s'] * 1000:.1f}ms "
                    f"median={s['median_s'] * 1000:.1f}ms "
                    f"max={s['max_s'] * 1000:.1f}ms"
                )
        return "\n".join(lines)


class NullMetricsRegistry(MetricsRegistry):
    """A registry that records nothing: what disabled observability
    threads through the pipeline so hot paths need no ``if obs`` forks."""

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def merge_counters(self, counters: dict[str, int], prefix: str = "") -> None:
        pass

    def absorb_cache_stats(self, name: str, stats) -> None:
        pass


NULL_REGISTRY = NullMetricsRegistry()
"""Shared no-op registry (safe to share: it never accumulates state)."""
