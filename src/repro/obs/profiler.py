"""Optional sampling profiler: hot-path attribution for one job.

Spans say *which stage* a diagnosis spent its time in; the profiler
says *which functions*.  It is a classic periodic stack sampler: a
daemon thread wakes every ``interval_s``, grabs the observed thread's
frame via ``sys._current_frames()``, and counts one *self* sample for
the innermost function plus one *cumulative* sample per function on the
stack.  No instrumentation is installed in the observed thread
(``sys.setprofile`` would tax every call), so the observed job runs at
full speed and the error is purely statistical — the right trade for
per-job, in-production attribution.

Activate per job via ``Observability(profile=True)`` or the fleet's
``--profile`` flag; results land in the job's root span attributes and
the flight recorder.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter


def _frame_key(frame) -> str:
    code = frame.f_code
    return f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]}:{code.co_firstlineno})"


class SamplingProfiler:
    """Samples one thread's stack periodically; a context manager.

    The thread entering the ``with`` block is the one profiled.
    """

    def __init__(self, interval_s: float = 0.002, max_depth: int = 64):
        if interval_s <= 0:
            raise ValueError("profiler needs interval_s > 0")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self.samples = 0
        self.self_counts: Counter[str] = Counter()
        self.cumulative_counts: Counter[str] = Counter()
        self._target_ident: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # serializes sample recording against stop(): without it the
        # sampler can pass the stop check, lose the GIL mid-record, and
        # land a sample in a profile already handed to the flight
        # recorder after stop() returned
        self._record_lock = threading.Lock()

    def __enter__(self) -> "SamplingProfiler":
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, deadline_s: float = 5.0) -> None:
        """Stop sampling; once this returns no further sample can land.

        The join is bounded by ``deadline_s``; if the sampler thread is
        wedged past the deadline (it should never be — it only sleeps
        and records), acquiring ``_record_lock`` is the barrier: the
        loop re-checks the stop flag under that lock before recording,
        so holding it once guarantees every later recording attempt
        sees the flag and bails.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=deadline_s)
            self._thread = None
        with self._record_lock:
            pass  # barrier: any in-flight record has finished or will bail

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            self._record(frame)

    def _record(self, frame) -> None:
        with self._record_lock:
            if self._stop.is_set():
                return  # stop() won the race; the profile is frozen
            self.samples += 1
            seen: set[str] = set()
            depth = 0
            leaf = True
            while frame is not None and depth < self.max_depth:
                key = _frame_key(frame)
                if leaf:
                    self.self_counts[key] += 1
                    leaf = False
                if key not in seen:  # recursion counts once per sample
                    self.cumulative_counts[key] += 1
                    seen.add(key)
                frame = frame.f_back
                depth += 1

    # -- reading -----------------------------------------------------------

    def top(self, n: int = 5, cumulative: bool = False) -> list[tuple[str, int]]:
        """The hottest functions: (function, samples), hottest first."""
        counts = self.cumulative_counts if cumulative else self.self_counts
        return counts.most_common(n)

    def summary(self, n: int = 5) -> dict[str, object]:
        """Span-attribute-sized digest of the profile."""
        return {
            "profile_samples": self.samples,
            "profile_interval_s": self.interval_s,
            "profile_top_self": [f"{name} x{c}" for name, c in self.top(n)],
            "profile_top_cumulative": [
                f"{name} x{c}" for name, c in self.top(n, cumulative=True)
            ],
        }

    def render(self, n: int = 8) -> str:
        lines = [f"profile: {self.samples} samples @ {self.interval_s * 1000:.1f} ms"]
        for name, count in self.top(n):
            share = count / self.samples if self.samples else 0.0
            lines.append(f"  {share:6.1%}  {name}")
        return "\n".join(lines)
