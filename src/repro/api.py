"""repro.api — the unified front door to Lazy Diagnosis.

Every way of running a diagnosis — the in-process pipeline, the
single-machine :class:`~repro.runtime.server.SnorlaxServer`, the
networked fleet, the baseline runners — ultimately answers the same
question with the same inputs.  This module gives that question one
call shape::

    from repro.api import diagnose
    result = diagnose(module, traces=samples)       # samples carry
    print(result.report.render())                   # their failure

``diagnose`` accepts the evidence (a mixed list of failing and
successful :class:`~repro.core.pipeline.TraceSample`), partitions it,
runs the pipeline, and returns an immutable :class:`DiagnosisResult`
that bundles the report with the run's observability: per-stage wall
time, cache events, and (when tracing is on) the finished span tree.

The lower layers stay callable (``SnorlaxServer.diagnose``,
``LazyDiagnosis.diagnose`` driven directly) and funnel through this
module; the old report-only ``diagnose_failure`` shim is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.pipeline import LazyDiagnosis, PipelineConfig, TraceSample
from repro.core.report import DiagnosisReport
from repro.errors import DiagnosisError
from repro.ir.module import Module
from repro.obs import Observability, Span, resolve_obs
from repro.sim.failures import FailureReport
from repro.sim.scheduler import (
    HierarchicalScheduler,
    RandomScheduler,
    Scheduler,
)


@dataclass(frozen=True)
class SchedulerPolicy:
    """A frozen description of how executions are scheduled.

    One object replaces the ``scheduler``/``mean_quantum`` kwargs that
    used to be threaded separately through the client, the fleet config
    and the evidence cache: build concrete schedulers with
    :meth:`build` (one per seed — schedulers are stateful) and key
    caches with :meth:`cache_key`.

    Kinds:

    * ``"random"`` — uniform random preemption, geometric quanta with
      mean ``mean_quantum`` (the production default).
    * ``"hierarchical"`` — schedsi-style two-level scheduling: threads
      pinned to ``vcpus`` virtual CPUs, round-robin within a vcpu,
      timeslices of ``slice_picks`` picks with slice inheritance.
    * ``"rr"`` — deterministic round-robin, quantum 1.

    ``cache_key()`` for the default policy is ``("random", 24)`` —
    byte-compatible with the tuple the evidence cache keyed on before
    this type existed, so a fleet upgraded in place keeps its cache.
    """

    kind: str = "random"
    mean_quantum: int = 24
    vcpus: int = 2  # hierarchical only
    slice_picks: int = 4  # hierarchical only

    def __post_init__(self) -> None:
        if self.kind not in ("random", "hierarchical", "rr"):
            raise ValueError(
                f"unknown scheduler kind {self.kind!r}; expected "
                "'random', 'hierarchical' or 'rr'"
            )
        if self.mean_quantum < 1:
            raise ValueError("mean_quantum must be >= 1")
        if self.vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if self.slice_picks < 1:
            raise ValueError("slice_picks must be >= 1")

    def build(self, seed: int) -> Scheduler:
        """A fresh scheduler for one execution."""
        if self.kind == "random":
            return RandomScheduler(seed, self.mean_quantum)
        if self.kind == "hierarchical":
            return HierarchicalScheduler(
                seed, self.vcpus, self.mean_quantum, self.slice_picks
            )
        return Scheduler(seed)

    def cache_key(self) -> tuple:
        """The policy's contribution to evidence-cache keys: everything
        that changes how the same seeds interleave."""
        if self.kind == "random":
            return ("random", self.mean_quantum)
        if self.kind == "hierarchical":
            return (
                "hierarchical", self.mean_quantum, self.vcpus,
                self.slice_picks,
            )
        return ("rr",)


@dataclass(frozen=True)
class ScenarioSpec:
    """A frozen runnable scenario: a program builder, its seed-indexed
    workload, and the scheduling policy it runs under.

    This is the shape the programmatic generators in
    :mod:`repro.corpus.scenarios` produce — everything a client or a
    check stage needs to execute and diagnose a concurrency scenario,
    in one hashable object (``builder`` and ``workload`` compare by
    identity, like any callable)."""

    name: str
    builder: object  # Callable[[], Module]
    workload: object  # Callable[[int], tuple]
    entry: str = "main"
    policy: SchedulerPolicy = field(default_factory=SchedulerPolicy)

    def module(self) -> Module:
        module = self.builder()
        if not module.finalized:
            module.finalize()
        return module

    def client(self, **kwargs):
        """A :class:`~repro.runtime.client.SnorlaxClient` wired to this
        scenario's module, workload, entry and policy."""
        from repro.runtime.client import SnorlaxClient

        return SnorlaxClient(
            self.module(),
            self.workload,
            entry=self.entry,
            policy=self.policy,
            **kwargs,
        )


@dataclass(frozen=True)
class DiagnosisRequest:
    """One diagnosis question, frozen: the module, the evidence, and the
    analysis knobs.  ``traces`` mixes failing and successful samples;
    the pipeline partitions them by :attr:`TraceSample.failing`."""

    module: Module
    traces: tuple[TraceSample, ...]
    scope: bool = True
    algorithm: str = "andersen"
    failure: FailureReport | None = None

    @property
    def failing(self) -> tuple[TraceSample, ...]:
        return tuple(t for t in self.traces if t.failing)

    @property
    def successes(self) -> tuple[TraceSample, ...]:
        return tuple(t for t in self.traces if not t.failing)


@dataclass(frozen=True)
class DiagnosisResult:
    """A finished diagnosis: the report plus the run's observability."""

    request: DiagnosisRequest
    report: DiagnosisReport
    stage_seconds: dict[str, float]
    cache_events: dict[str, int]
    # the finished span tree of this run (root first), when tracing was on
    spans: tuple[Span, ...] = ()
    # the pipeline that ran, for legacy callers poking at last_analysis /
    # last_ranking; excluded from equality and repr on purpose.
    pipeline: LazyDiagnosis | None = field(default=None, repr=False, compare=False)

    @property
    def diagnosed(self) -> bool:
        return self.report.diagnosed

    @property
    def root_cause(self):
        return self.report.root_cause

    def render(self) -> str:
        return self.report.render()


def _resolve_caches(caches):
    """``caches`` may be a DiagnosisCaches, an (analysis, traces) pair,
    or None — the server passes its two independent cache fields."""
    if caches is None:
        return None, None
    if isinstance(caches, tuple):
        analysis_cache, trace_cache = caches
        return analysis_cache, trace_cache
    return caches.analysis, caches.traces


def diagnose(
    module: Module,
    failure: FailureReport | None = None,
    traces: Sequence[TraceSample] = (),
    *,
    scope: bool = True,
    algorithm: str = "andersen",
    config: PipelineConfig | None = None,
    caches=None,
    obs: Observability | None = None,
    validate: bool = False,
    workload=None,
    entry: str = "main",
    failing_seed: int | None = None,
) -> DiagnosisResult:
    """Run Lazy Diagnosis over ``traces`` and return the bundled result.

    ``failure`` is optional when the failing sample already carries its
    :class:`FailureReport` (the normal case — snapshots arrive with the
    report attached); pass it explicitly to diagnose raw evidence.
    ``config`` overrides ``scope``/``algorithm`` wholesale when given.
    ``caches`` is a :class:`~repro.core.cache.DiagnosisCaches` (or an
    ``(analysis, traces)`` pair); ``obs`` an
    :class:`~repro.obs.Observability` bundle, ``None`` for off.

    ``validate=True`` closes the loop: the diagnosed order is compiled
    into a directed reproducer schedule and replayed — forced and
    inverse — on ``workload(failing_seed)``, stamping
    ``result.report.validation`` (see :mod:`repro.validate`).  Both
    ``workload`` and ``failing_seed`` are required for validation.
    """
    samples = tuple(traces)
    failing = [t for t in samples if t.failing]
    successes = [t for t in samples if not t.failing]
    if not failing:
        raise DiagnosisError("at least one failing trace is required")
    if failure is not None and failing[0].failure is None:
        failing[0].failure = failure
    effective = config or PipelineConfig(
        scope_restriction=scope, algorithm=algorithm
    )
    analysis_cache, trace_cache = _resolve_caches(caches)
    pipeline = LazyDiagnosis(
        module,
        effective,
        analysis_cache=analysis_cache,
        trace_cache=trace_cache,
        obs=obs,
    )
    report = pipeline.diagnose(failing, successes)
    if validate:
        if workload is None or failing_seed is None:
            raise DiagnosisError(
                "diagnose(validate=True) needs the workload and the "
                "failing seed to replay the reproducer schedule"
            )
        from repro.validate import validate_report

        validate_report(
            module, workload, report, entry=entry, failing_seed=failing_seed
        )
    request = DiagnosisRequest(
        module=module,
        traces=samples,
        scope=effective.scope_restriction,
        algorithm=effective.algorithm,
        failure=failing[0].failure,
    )
    return result_from_pipeline(request, pipeline, report, obs)


def result_from_pipeline(
    request: DiagnosisRequest,
    pipeline: LazyDiagnosis,
    report: DiagnosisReport,
    obs: Observability | None,
) -> DiagnosisResult:
    """Bundle a finished pipeline run (however it was driven) into the
    public result shape — the server and fleet reuse this."""
    resolved = resolve_obs(obs)
    spans: tuple[Span, ...] = ()
    if resolved.enabled and pipeline.last_root_span is not None:
        spans = tuple(resolved.tracer.subtree(pipeline.last_root_span))
    return DiagnosisResult(
        request=request,
        report=report,
        stage_seconds=dict(pipeline.last_stage_seconds),
        cache_events=dict(pipeline.last_cache_events),
        spans=spans,
        pipeline=pipeline,
    )
