"""Close the loop: diagnosis -> deterministic reproduction -> fix validation.

A :class:`~repro.core.report.DiagnosisReport` names a root-cause event
order but nothing proves it.  This package compiles the diagnosed order
into a :class:`~repro.sim.scheduler.DirectedScheduler` directive (the
*schedule synthesizer*), replays the failing execution under the forced
order and under its inverse (the *reproduction engine*), and stamps the
report ``validated`` — the failure fires exactly when the diagnosed
order holds — or ``refuted``.  On top of a validated reproduction, the
*fix layer* derives candidate IR patches from the bug class and
accepts only those that survive both the reproducer schedule and a
success-corpus sweep.
"""

from repro.validate.engine import (
    ValidationOutcome,
    WitnessSchedule,
    directed_run,
    validate_ground_truth,
    validate_order,
    validate_report,
)
from repro.validate.fixes import CandidateFix, FixOutcome, propose_fixes, validate_fix
from repro.validate.synthesizer import (
    OrderedEvent,
    TargetOrder,
    synthesize_directives,
)

__all__ = [
    "CandidateFix",
    "FixOutcome",
    "OrderedEvent",
    "TargetOrder",
    "ValidationOutcome",
    "WitnessSchedule",
    "directed_run",
    "propose_fixes",
    "synthesize_directives",
    "validate_fix",
    "validate_ground_truth",
    "validate_order",
    "validate_report",
]
