"""Candidate-fix synthesis and validation (the loop's last mile).

A validated reproduction is a *test*: a schedule that makes the bug
fire on demand, and a counterfactual schedule that makes it pass.  That
is exactly the substrate automatic fix checking needs, so this module
derives candidate patches from the bug class, applies them at the IR
level, and accepts only the candidates that survive

1. the **reproducer schedule** — the forced order replayed on the
   patched module must no longer fail (the gate degrades to a free run
   wherever the patch made the order unreachable), and
2. the **success sweep** — the failing seed plus a corpus of fresh
   seeds run under the normal scheduler must all succeed (the patch
   must not break the program or introduce a new deadlock).

Fix templates by class:

* order violation — move the premature teardown after the join
  (``WR``), move the spawn after the publication (``RW``), or
  serialize the racing function when both slots run the same code
  (``WW``); the deliberately naive "wrap each event in a lock" is
  proposed too, and rejected by the reproducer schedule (locks do not
  order events).
* atomicity violation — an **atomic window**: one new global lock held
  from the first victim event through the last (released at the
  structured merge when the window spans a branch), with the rival's
  intruding event wrapped in the same lock; plus coarse whole-function
  serialization; the naive victim-only window (rival left unlocked) is
  proposed and rejected.
* deadlock — lock-ordering normalization: the second slot's two
  acquisitions swap lock operands so both slots acquire in the same
  order; the naive unlock-reordering is proposed and rejected.

All edits run on a *fresh* builder output (never a module any uid-keyed
cache or trace has seen), then :meth:`Module.refinalize` renumbers uids
and re-verifies; the old->new uid map keeps the reproducer directive
valid on the patched module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import (
    Free,
    Instruction,
    Join,
    Lock,
    LockInit,
    Ret,
    Spawn,
    Store,
    Unlock,
)
from repro.ir.module import Module
from repro.ir.types import LOCK
from repro.ir.values import FunctionRef
from repro.sim.machine import Machine
from repro.sim.scheduler import ForceOrder, RandomScheduler
from repro.validate.engine import DEFAULT_MEAN_QUANTUM, WitnessSchedule, _witness
from repro.validate.synthesizer import TargetOrder

FIX_LOCK_NAME = "__snorlax_fix_lock"


class FixNotApplicable(Exception):
    """The candidate's structural preconditions do not hold."""


@dataclass
class CandidateFix:
    """One derivable patch: a name plus an IR-level edit."""

    name: str
    description: str
    _apply: Callable[[Module, TargetOrder, list[Instruction], str], None]

    def apply(self, module: Module, order: TargetOrder, entry: str) -> dict[int, int]:
        """Apply in place on a fresh finalized module; returns the
        old->new uid map after renumbering."""
        instrs = [module.instruction(uid) for uid in order.uids]
        old_uids = {instr: instr.uid for instr in module.instructions()}
        self._apply(module, order, instrs, entry)
        module.refinalize()
        return {old: instr.uid for instr, old in old_uids.items()}


@dataclass
class FixOutcome:
    """Verdict for one candidate on one validated bug."""

    fix: str
    description: str
    accepted: bool
    reason: str
    forced: WitnessSchedule | None = None
    sweep_runs: int = 0
    notes: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "fix": self.fix,
            "description": self.description,
            "accepted": self.accepted,
            "reason": self.reason,
            "forced": self.forced.as_dict() if self.forced else None,
            "sweep_runs": self.sweep_runs,
            "notes": list(self.notes),
        }


# -- IR editing helpers ------------------------------------------------------


def _insert(block: BasicBlock, index: int, instr: Instruction) -> None:
    # direct list surgery: BasicBlock.append refuses instructions after
    # the terminator, which is exactly where fixes need to place code
    block.instructions.insert(index, instr)
    instr.parent = block


def _insert_before(anchor: Instruction, instr: Instruction) -> None:
    block = anchor.parent
    _insert(block, block.instructions.index(anchor), instr)


def _insert_after(anchor: Instruction, instr: Instruction) -> None:
    block = anchor.parent
    _insert(block, block.instructions.index(anchor) + 1, instr)


def _fix_lock(module: Module, entry: str):
    """A fresh global mutex, initialized first thing in the entry."""
    if FIX_LOCK_NAME in module.globals:
        return module.globals[FIX_LOCK_NAME]
    g = module.add_global(FIX_LOCK_NAME, LOCK)
    _insert(module.function(entry).entry, 0, LockInit(g))
    return g


def _terminator(block: BasicBlock):
    if block.instructions and block.instructions[-1].is_terminator:
        return block.instructions[-1]
    return None


def _reaches(start: BasicBlock, target: BasicBlock, barrier: BasicBlock) -> bool:
    """CFG reachability from ``start`` to ``target`` without re-entering
    ``barrier`` (so loop backedges through the window head don't count)."""
    if start is target:
        return True
    seen = {start, barrier}
    frontier = [start]
    while frontier:
        block = frontier.pop()
        term = _terminator(block)
        if term is None:
            continue
        for succ in term.successors():
            if succ is target:
                return True
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return False


def _place_window_unlock(v1: Instruction, v2: Instruction, lock_var) -> None:
    """Release the window lock after the last victim event.

    Three shapes: same block -> right after v2; v2 on every path from
    v1 -> right after v2; v2 only on one branch of v1's terminator ->
    at the head of the skipping successor, which structured control
    flow guarantees is the merge both paths reach exactly once.
    """
    if v2.parent is v1.parent:
        _insert_after(v2, Unlock(lock_var))
        return
    term = _terminator(v1.parent)
    succs = term.successors() if term is not None else []
    reach = [s for s in succs if _reaches(s, v2.parent, barrier=v1.parent)]
    if not succs or len(reach) == len(succs):
        _insert_after(v2, Unlock(lock_var))
        return
    skip = next(s for s in succs if s not in reach)
    _insert(skip, 0, Unlock(lock_var))


# -- order-violation candidates ----------------------------------------------


def _apply_move_free_after_join(
    module: Module, order: TargetOrder, instrs: list[Instruction], entry: str
) -> None:
    teardown = instrs[0]
    if not isinstance(teardown, Free):
        raise FixNotApplicable("first event is not a free")
    fn = teardown.parent.function
    joins = [i for i in fn.instructions() if isinstance(i, Join)]
    if not joins:
        raise FixNotApplicable("freeing function joins no threads")
    teardown.parent.instructions.remove(teardown)
    _insert_after(joins[-1], teardown)


def _apply_spawn_after_publish(
    module: Module, order: TargetOrder, instrs: list[Instruction], entry: str
) -> None:
    publish = instrs[-1]
    if not isinstance(publish, Store):
        raise FixNotApplicable("last event is not a store")
    reader_fn = instrs[0].parent.function.name
    fn = publish.parent.function
    spawns = [
        i
        for i in fn.instructions()
        if isinstance(i, Spawn)
        and isinstance(i.callee, FunctionRef)
        and i.callee.function.name == reader_fn
    ]
    if not spawns:
        raise FixNotApplicable("publishing function spawns no racing thread")
    spawn = spawns[0]
    spawn.parent.instructions.remove(spawn)
    _insert_after(publish, spawn)


def _apply_serialize_function(
    module: Module, order: TargetOrder, instrs: list[Instruction], entry: str
) -> None:
    functions = {i.parent.function for i in instrs}
    if len(functions) != 1:
        raise FixNotApplicable("events span multiple functions")
    victim = functions.pop()
    if victim.name == entry:
        raise FixNotApplicable("cannot serialize the entry function")
    lock_var = _fix_lock(module, entry)
    _insert(victim.entry, 0, Lock(lock_var))
    for instr in list(victim.instructions()):
        if isinstance(instr, Ret):
            _insert_before(instr, Unlock(lock_var))


def _apply_guard_events(
    module: Module, order: TargetOrder, instrs: list[Instruction], entry: str
) -> None:
    lock_var = _fix_lock(module, entry)
    for instr in dict.fromkeys(instrs):  # dedupe shared-uid events
        _insert_before(instr, Lock(lock_var))
        _insert_after(instr, Unlock(lock_var))


# -- atomicity-violation candidates ------------------------------------------


def _apply_atomic_window(
    module: Module,
    order: TargetOrder,
    instrs: list[Instruction],
    entry: str,
    wrap_rival: bool = True,
) -> None:
    if len(instrs) != 3:
        raise FixNotApplicable("atomicity window needs three events")
    v1, rival, v2 = instrs
    if v1.parent.function is not v2.parent.function:
        raise FixNotApplicable("victim events span functions")
    lock_var = _fix_lock(module, entry)
    _insert_before(v1, Lock(lock_var))
    _place_window_unlock(v1, v2, lock_var)
    if wrap_rival:
        # the whole rival block leading up to the intrusion joins the
        # critical section (its companion accesses are part of the
        # hazard, e.g. the free preceding a pointer swap)
        _insert(rival.parent, 0, Lock(lock_var))
        _insert_after(rival, Unlock(lock_var))


def _apply_victim_window_only(
    module: Module, order: TargetOrder, instrs: list[Instruction], entry: str
) -> None:
    _apply_atomic_window(module, order, instrs, entry, wrap_rival=False)


def _apply_coarse_serialize(
    module: Module, order: TargetOrder, instrs: list[Instruction], entry: str
) -> None:
    if len(instrs) != 3:
        raise FixNotApplicable("atomicity serialization needs three events")
    victim_fn = instrs[0].parent.function
    rival_fn = instrs[1].parent.function
    if entry in (victim_fn.name, rival_fn.name):
        raise FixNotApplicable("cannot serialize the entry function")
    lock_var = _fix_lock(module, entry)
    for fn in {victim_fn, rival_fn}:
        _insert(fn.entry, 0, Lock(lock_var))
        for instr in list(fn.instructions()):
            if isinstance(instr, Ret):
                _insert_before(instr, Unlock(lock_var))


# -- deadlock candidates -----------------------------------------------------


def _slot_lock_pair(
    order: TargetOrder, instrs: list[Instruction], slot: int
) -> list[Instruction]:
    pair = [
        instr
        for instr, event in zip(instrs, order.events)
        if event.slot == slot and isinstance(instr, Lock)
    ]
    if len(pair) != 2:
        raise FixNotApplicable("deadlock slot does not hold exactly two locks")
    return pair


def _apply_normalize_lock_order(
    module: Module, order: TargetOrder, instrs: list[Instruction], entry: str
) -> None:
    if len(instrs) != 4 or not all(isinstance(i, Lock) for i in instrs):
        raise FixNotApplicable("needs the four ABBA lock acquisitions")
    second_slot = order.events[1].slot
    first, second = _slot_lock_pair(order, instrs, second_slot)
    # swap which mutex each acquisition takes: B,A becomes A,B, making
    # both slots acquire in the same global order (no cycle possible)
    first.operands[0], second.operands[0] = second.operands[0], first.operands[0]


def _apply_reorder_unlocks(
    module: Module, order: TargetOrder, instrs: list[Instruction], entry: str
) -> None:
    if len(instrs) != 4 or not all(isinstance(i, Lock) for i in instrs):
        raise FixNotApplicable("needs the four ABBA lock acquisitions")
    rival_fn = instrs[1].parent.function
    unlocks = [i for i in rival_fn.instructions() if isinstance(i, Unlock)]
    if len(unlocks) < 2:
        raise FixNotApplicable("rival releases fewer than two locks")
    unlocks[0].operands[0], unlocks[1].operands[0] = (
        unlocks[1].operands[0],
        unlocks[0].operands[0],
    )


# -- registry ----------------------------------------------------------------

_CANDIDATES: dict[str, list[CandidateFix]] = {
    "order-violation": [
        CandidateFix(
            "move-teardown-after-join",
            "delay the premature free until after the joins",
            _apply_move_free_after_join,
        ),
        CandidateFix(
            "publish-before-spawn",
            "move the spawn after the publication store",
            _apply_spawn_after_publish,
        ),
        CandidateFix(
            "serialize-racing-function",
            "one racing thread runs the shared function at a time",
            _apply_serialize_function,
        ),
        CandidateFix(
            "guard-events-with-lock",
            "wrap each target event in a new lock (naive: locks do not order)",
            _apply_guard_events,
        ),
    ],
    "atomicity-violation": [
        CandidateFix(
            "atomic-window",
            "hold a new lock across the victim window; rival takes the same lock",
            _apply_atomic_window,
        ),
        CandidateFix(
            "coarse-serialize",
            "serialize the victim and rival functions with one lock",
            _apply_coarse_serialize,
        ),
        CandidateFix(
            "victim-window-only",
            "lock the victim window but not the rival (naive: rival still intrudes)",
            _apply_victim_window_only,
        ),
    ],
    "deadlock": [
        CandidateFix(
            "normalize-lock-order",
            "second slot acquires the two locks in the first slot's order",
            _apply_normalize_lock_order,
        ),
        CandidateFix(
            "reorder-unlocks",
            "swap the rival's release order (naive: acquisition order unchanged)",
            _apply_reorder_unlocks,
        ),
    ],
}


def propose_fixes(bug_kind: str) -> list[CandidateFix]:
    """The candidate patches derivable for a bug class (may be empty)."""
    return list(_CANDIDATES.get(bug_kind, ()))


# -- validation --------------------------------------------------------------


def validate_fix(
    fix: CandidateFix,
    module_factory: Callable[[], Module],
    workload,
    order: TargetOrder,
    *,
    entry: str = "main",
    failing_seed: int,
    sweep_seeds: int = 30,
    sweep_start: int = 0,
    mean_quantum: int = DEFAULT_MEAN_QUANTUM,
    max_steps: int = 20_000_000,
) -> FixOutcome:
    """Patch a fresh module and re-run the loop's two checks."""
    module = module_factory()
    try:
        uid_map = fix.apply(module, order, entry)
    except FixNotApplicable as exc:
        return FixOutcome(fix.name, fix.description, False, f"not applicable: {exc}")
    # 1. the reproducer schedule must no longer fail
    from repro.validate.engine import directed_run

    forced = ForceOrder(tuple(uid_map[uid] for uid in order.uids))
    result, scheduler = directed_run(
        module, workload, entry, failing_seed, forced, mean_quantum, max_steps
    )
    witness = _witness(
        "forced", failing_seed, mean_quantum, forced, result, scheduler
    )
    if result.failure is not None:
        return FixOutcome(
            fix.name,
            fix.description,
            False,
            f"reproducer schedule still fails: {result.outcome} at "
            f"uid={result.failure.failing_uid}",
            forced=witness,
        )
    # 2. the success sweep: the failing seed plus fresh seeds, normal
    # scheduler — the patch must not regress healthy executions
    seeds = [failing_seed, *range(sweep_start, sweep_start + sweep_seeds)]
    for seed in seeds:
        sweep = Machine(
            module,
            scheduler=RandomScheduler(seed, mean_quantum),
            max_steps=max_steps,
        ).run(entry, workload(seed))
        if sweep.failure is not None:
            return FixOutcome(
                fix.name,
                fix.description,
                False,
                f"success sweep failed: seed {seed} -> {sweep.outcome} at "
                f"uid={sweep.failure.failing_uid}",
                forced=witness,
                sweep_runs=seeds.index(seed),
            )
    return FixOutcome(
        fix.name,
        fix.description,
        True,
        "reproducer schedule passes and the success sweep is clean",
        forced=witness,
        sweep_runs=len(seeds),
    )


def propose_and_validate(
    bug_kind: str,
    module_factory: Callable[[], Module],
    workload,
    order: TargetOrder,
    *,
    entry: str = "main",
    failing_seed: int,
    sweep_seeds: int = 30,
    mean_quantum: int = DEFAULT_MEAN_QUANTUM,
) -> list[FixOutcome]:
    """Run every candidate for the class through validation."""
    return [
        validate_fix(
            fix,
            module_factory,
            workload,
            order,
            entry=entry,
            failing_seed=failing_seed,
            sweep_seeds=sweep_seeds,
            mean_quantum=mean_quantum,
        )
        for fix in propose_fixes(bug_kind)
    ]
