"""The reproduction engine: forced/inverse replays and their verdict.

Validation replays the *failing seed* (same module, same workload
arguments, same virtual-time behaviour) twice:

* under the **forced** directive the diagnosed order is imposed; a
  correct diagnosis makes the failure fire, at the same failing
  instruction the production run reported;
* under the **inverse** directive the diagnosed order is made
  impossible; a correct diagnosis makes the run succeed.

Both replays together upgrade the report's statistical (F1) root cause
into a demonstrated one:

* ``validated`` — forced fails at the diagnosed instruction AND the
  inverse passes;
* ``refuted`` — the forced order did not reproduce the failure (the
  diagnosed order is not sufficient for it);
* ``inconclusive`` — the forced run failed somewhere else, or the
  inverse still failed (the order is not *necessary*).

Each replay is summarized as a :class:`WitnessSchedule` — enough to
re-run it bit-identically (seed + directive + quantum are the full
scheduler state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.module import Module
from repro.sim.failures import ExecutionResult
from repro.sim.machine import Machine
from repro.sim.scheduler import DirectedScheduler, Directive
from repro.validate.synthesizer import (
    TargetOrder,
    synthesize_directives,
    synthesize_inverse_fallback,
)

DEFAULT_MEAN_QUANTUM = 24


@dataclass
class WitnessSchedule:
    """One directed replay, reproducible from (seed, directive, quantum)."""

    mode: str  # "forced" | "inverse"
    seed: int
    mean_quantum: int
    directive: str  # Directive.describe()
    outcome: str  # machine outcome: success/crash/assert/deadlock/hang/...
    failing_uid: int | None
    order_satisfied: bool  # a ForceOrder gated every position
    releases: int  # force_release count (gate pressure / unsatisfiability)
    duration_ns: int

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "mean_quantum": self.mean_quantum,
            "directive": self.directive,
            "outcome": self.outcome,
            "failing_uid": self.failing_uid,
            "order_satisfied": self.order_satisfied,
            "releases": self.releases,
            "duration_ns": self.duration_ns,
        }


@dataclass
class ValidationOutcome:
    """The verdict plus its two witness schedules."""

    status: str  # "validated" | "refuted" | "inconclusive"
    witnesses: list[WitnessSchedule] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def validated(self) -> bool:
        return self.status == "validated"

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "witnesses": [w.as_dict() for w in self.witnesses],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [f"validation: {self.status.upper()}"]
        for w in self.witnesses:
            failing = f" at uid={w.failing_uid}" if w.failing_uid else ""
            lines.append(
                f"  {w.mode:7s} seed={w.seed} [{w.directive}] -> "
                f"{w.outcome}{failing}"
            )
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def directed_run(
    module: Module,
    workload,
    entry: str,
    seed: int,
    directive: Directive,
    mean_quantum: int = DEFAULT_MEAN_QUANTUM,
    max_steps: int = 20_000_000,
) -> tuple[ExecutionResult, DirectedScheduler]:
    """One replay of ``(module, workload(seed))`` under a directive."""
    scheduler = DirectedScheduler(seed, directive, mean_quantum)
    machine = Machine(module, scheduler=scheduler, max_steps=max_steps)
    result = machine.run(entry, workload(seed))
    return result, scheduler


def _witness(
    mode: str,
    seed: int,
    mean_quantum: int,
    directive: Directive,
    result: ExecutionResult,
    scheduler: DirectedScheduler,
) -> WitnessSchedule:
    return WitnessSchedule(
        mode=mode,
        seed=seed,
        mean_quantum=mean_quantum,
        directive=directive.describe(),
        outcome=result.outcome,
        failing_uid=result.failure.failing_uid if result.failure else None,
        order_satisfied=scheduler.satisfied,
        releases=scheduler.releases,
        duration_ns=result.duration,
    )


def validate_order(
    module: Module,
    workload,
    order: TargetOrder,
    *,
    entry: str = "main",
    failing_seed: int,
    expected_uid: int,
    mean_quantum: int = DEFAULT_MEAN_QUANTUM,
    max_steps: int = 20_000_000,
) -> ValidationOutcome:
    """Force the order, then force its inverse, and pass the verdict."""
    forced_directive, inverse_directive = synthesize_directives(
        module, order, entry
    )
    forced_result, forced_sched = directed_run(
        module, workload, entry, failing_seed, forced_directive,
        mean_quantum, max_steps,
    )
    inverse_result, inverse_sched = directed_run(
        module, workload, entry, failing_seed, inverse_directive,
        mean_quantum, max_steps,
    )
    witnesses = [
        _witness("forced", failing_seed, mean_quantum, forced_directive,
                 forced_result, forced_sched),
        _witness("inverse", failing_seed, mean_quantum, inverse_directive,
                 inverse_result, inverse_sched),
    ]
    notes: list[str] = []
    forced_failure = forced_result.failure
    if forced_failure is None:
        notes.append(
            "forced order did not reproduce the failure: the diagnosed "
            "order is not sufficient for it"
        )
        return ValidationOutcome("refuted", witnesses, notes)
    # A deadlock cycle can be "completed" by either participant, so any
    # target-event uid is an acceptable deadlock site; all other kinds
    # must fail at exactly the production failing instruction.
    uid_matches = forced_failure.failing_uid == expected_uid or (
        order.bug_kind == "deadlock"
        and forced_failure.kind == "deadlock"
        and forced_failure.failing_uid in order.uids
    )
    if not uid_matches:
        notes.append(
            f"forced order failed at uid={forced_failure.failing_uid}, "
            f"expected uid={expected_uid}"
        )
        return ValidationOutcome("inconclusive", witnesses, notes)
    if inverse_result.failure is not None:
        # An atomicity window has a second non-interleaved placement
        # (rival entirely after the window); some bugs only succeed
        # under that one.  Try it before giving up.
        fallback = synthesize_inverse_fallback(module, order, entry)
        if (
            fallback is not None
            and fallback.describe() != inverse_directive.describe()
        ):
            fb_result, fb_sched = directed_run(
                module, workload, entry, failing_seed, fallback,
                mean_quantum, max_steps,
            )
            witnesses.append(
                _witness("inverse", failing_seed, mean_quantum, fallback,
                         fb_result, fb_sched)
            )
            if fb_result.failure is None:
                notes.append(
                    "primary inverse still failed; the opposite "
                    "serialization avoids the failure"
                )
                return ValidationOutcome("validated", witnesses, notes)
        notes.append(
            "inverse order still failed: the diagnosed order is not "
            "necessary for the failure"
        )
        return ValidationOutcome("inconclusive", witnesses, notes)
    return ValidationOutcome("validated", witnesses, notes)


def validate_report(
    module: Module,
    workload,
    report,
    *,
    entry: str = "main",
    failing_seed: int,
    mean_quantum: int = DEFAULT_MEAN_QUANTUM,
    max_steps: int = 20_000_000,
) -> ValidationOutcome | None:
    """Validate a DiagnosisReport in place (sets ``report.validation``).

    Returns None (and leaves the report untouched) when the report has
    no diagnosed order to validate.
    """
    if not report.diagnosed or not report.target_events:
        return None
    order = TargetOrder.from_report(report)
    outcome = validate_order(
        module,
        workload,
        order,
        entry=entry,
        failing_seed=failing_seed,
        expected_uid=report.failing_uid,
        mean_quantum=mean_quantum,
        max_steps=max_steps,
    )
    report.validation = outcome.as_dict()
    return outcome


def find_failing_seed(
    module: Module,
    workload,
    entry: str = "main",
    start_seed: int = 0,
    max_attempts: int = 3000,
) -> tuple[int, int] | None:
    """Scan seeds for a failing run; returns (seed, failing_uid)."""
    from repro.runtime.client import SnorlaxClient

    client = SnorlaxClient(module, workload, entry, tracing=False)
    runs = client.find_runs(
        want_failing=True, count=1, start_seed=start_seed,
        max_attempts=max_attempts,
    )
    if not runs:
        return None
    run = runs[0]
    return run.seed, run.result.failure.failing_uid


def validate_ground_truth(
    spec,
    *,
    start_seed: int = 0,
    max_attempts: int = 3000,
    mean_quantum: int = DEFAULT_MEAN_QUANTUM,
) -> tuple[ValidationOutcome, int] | None:
    """Validate one corpus bug against its ground truth.

    Returns (outcome, failing_seed), or None when no failing seed was
    found in the scan budget.
    """
    module = spec.module()
    found = find_failing_seed(
        module, spec.workload, spec.entry, start_seed, max_attempts
    )
    if found is None:
        return None
    failing_seed, failing_uid = found
    order = TargetOrder.from_truth(module, spec.ground_truth)
    outcome = validate_order(
        module,
        spec.workload,
        order,
        entry=spec.entry,
        failing_seed=failing_seed,
        expected_uid=failing_uid,
        mean_quantum=mean_quantum,
    )
    return outcome, failing_seed
