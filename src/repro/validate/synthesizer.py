"""Schedule synthesis: diagnosed event order -> scheduler directives.

The synthesizer turns the report's ordered target events into two
:class:`~repro.sim.scheduler.DirectedScheduler` directives:

* the **forced** directive (:class:`~repro.sim.scheduler.ForceOrder`)
  gates execution at the target uids so the diagnosed cross-thread
  order is the one that happens — the reproducer schedule;
* the **inverse** directive serializes the racing slots so the
  diagnosed-first event can only happen once the other slot is out of
  the race — the counterfactual schedule under which a correctly
  diagnosed failure must *not* fire.

Picking the inverse's shape needs a little static analysis: the other
slot's events run in threads we can only name by their *root* function
(``frames[0]``), so the synthesizer walks the direct call graph from
every thread root (the entry function plus each ``spawn`` target) and
keeps the roots that can reach an other-slot event's function.  When
both slots execute the *same* function (symmetric races like a double
free), root reachability cannot tell the threads apart and the inverse
degenerates to whole-function entry serialization instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import Call, Spawn
from repro.ir.module import Module
from repro.ir.values import FunctionRef
from repro.sim.scheduler import Directive, ForceOrder, SerializeAfter, SerializeFunction


@dataclass(frozen=True)
class OrderedEvent:
    """One target event of a diagnosed order."""

    uid: int
    role: str  # "R" | "W" | "L"
    slot: int  # thread slot within the pattern (0 = the victim slot)
    function: str  # function containing the instruction


@dataclass(frozen=True)
class TargetOrder:
    """A bug's ordered target events, ready for directive synthesis."""

    bug_kind: str
    events: tuple[OrderedEvent, ...]

    @property
    def uids(self) -> tuple[int, ...]:
        return tuple(e.uid for e in self.events)

    @classmethod
    def from_report(cls, report) -> "TargetOrder":
        """From a DiagnosisReport's diagnosed (ordered) target events."""
        events = tuple(
            OrderedEvent(e.uid, e.role, e.thread_slot, e.function)
            for e in report.target_events
        )
        return cls(report.bug_kind, events)

    @classmethod
    def from_truth(cls, module: Module, truth) -> "TargetOrder":
        """From corpus ground truth (events alternate thread slots:
        2 -> [0,1], 3 -> [0,1,0], 4 -> [0,1,0,1] — the pattern-shape
        convention the whole corpus follows)."""
        uids = truth.resolve(module)
        events = []
        for i, (uid, locator) in enumerate(zip(uids, truth.events)):
            instr = module.instruction(uid)
            fn = instr.parent.function.name if instr.parent else "?"
            events.append(OrderedEvent(uid, locator.role, i % 2, fn))
        return cls(truth.kind, tuple(events))


def thread_roots(module: Module, entry: str) -> set[str]:
    """Function names a thread can be rooted at: the entry plus every
    static ``spawn`` target."""
    roots = {entry}
    for instr in module.instructions():
        if isinstance(instr, Spawn) and isinstance(instr.callee, FunctionRef):
            roots.add(instr.callee.function.name)
    return roots


def _call_closure(module: Module, root: str) -> set[str]:
    """Functions reachable from ``root`` through direct calls (spawns
    start *other* threads, so they do not extend this thread's root)."""
    seen = {root}
    frontier = [root]
    while frontier:
        name = frontier.pop()
        fn = module.functions.get(name)
        if fn is None:
            continue
        for instr in fn.instructions():
            if isinstance(instr, Call) and isinstance(instr.callee, FunctionRef):
                callee = instr.callee.function.name
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
    return seen


def qualifying_roots(
    module: Module, entry: str, other_functions: set[str]
) -> set[str]:
    """Thread roots whose call closure can execute an other-slot event."""
    return {
        root
        for root in thread_roots(module, entry)
        if _call_closure(module, root) & other_functions
    }


def synthesize_directives(
    module: Module, order: TargetOrder, entry: str = "main"
) -> tuple[ForceOrder, Directive]:
    """Compile a target order into (forced directive, inverse directive)."""
    if not order.events:
        raise ValueError("cannot synthesize directives for an empty order")
    forced = ForceOrder(order.uids)
    first = order.events[0]
    other_functions = {e.function for e in order.events if e.slot != first.slot}
    inverse: Directive
    if first.function in other_functions:
        # symmetric race: both slots run the same code — serialize entry
        inverse = SerializeFunction(first.function)
    else:
        roots = qualifying_roots(module, entry, other_functions)
        inverse = SerializeAfter(first.uid, frozenset(roots))
    return forced, inverse


def synthesize_inverse_fallback(
    module: Module, order: TargetOrder, entry: str = "main"
) -> Directive | None:
    """The opposite non-interleaved placement: delay the *other* slot's
    first event until the diagnosed-first slot's threads are done.

    An atomicity window has two schedules that avoid the diagnosed
    interleaving — rival entirely before the window (the primary
    inverse) or entirely after it (this one).  Some bugs only succeed
    under one of them (e.g. the stale value the rival overwrites is
    what the victim must read).  Returns None when the race is
    symmetric (entry serialization already covers both directions) or
    the first slot's threads cannot be named by root reachability.
    """
    first = order.events[0]
    rivals = [e for e in order.events if e.slot != first.slot]
    if not rivals:
        return None
    rival = rivals[0]
    first_functions = {e.function for e in order.events if e.slot == first.slot}
    if rival.function in first_functions:
        return None  # symmetric race: roots cannot tell the slots apart
    roots = qualifying_roots(module, entry, first_functions)
    if not roots:
        return None
    return SerializeAfter(rival.uid, frozenset(roots))
