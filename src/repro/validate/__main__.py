"""CLI: validate diagnosed orders (and candidate fixes) for the corpus.

Usage::

    python -m repro.validate                      # validate every bug
    python -m repro.validate --bugs aget-2,dbcp-44
    python -m repro.validate --primitives condvar,barrier
    python -m repro.validate --kind deadlock --system memcached
    python -m repro.validate --fixes              # also propose fixes
    python -m repro.validate --out artifacts/     # witness JSON per bug

Selection goes through the public corpus query (``repro.corpus.bugs``):
``--kind``/``--primitives``/``--table``/``--system`` are conjunctive
filters, ``--bugs`` names exact ids and bypasses them.

Exit status: 0 when every selected ground-truth bug validates, 1 when
any is refuted/inconclusive or no failing seed was found, 2 on bad
usage.  CI runs this as the validation smoke step and publishes the
witness schedules as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.corpus.registry import bug, bugs
from repro.errors import ReproError
from repro.validate.engine import find_failing_seed, validate_order
from repro.validate.fixes import propose_and_validate
from repro.validate.synthesizer import TargetOrder


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="validate diagnosed orders against directed replays",
    )
    parser.add_argument(
        "--bugs",
        help="comma-separated bug ids (default: the whole corpus)",
    )
    parser.add_argument(
        "--kind",
        help="filter: bug kind (order-violation, atomicity-violation, "
        "deadlock)",
    )
    parser.add_argument(
        "--primitives",
        help="filter: comma-separated sync primitives the bug exercises "
        "(mutex, condvar, rwlock, sema, barrier)",
    )
    parser.add_argument(
        "--table", type=int, help="filter: paper table number"
    )
    parser.add_argument("--system", help="filter: application system name")
    parser.add_argument(
        "--fixes",
        action="store_true",
        help="also propose and validate candidate fixes per bug",
    )
    parser.add_argument(
        "--out",
        help="directory for per-bug witness/fix JSON artifacts",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3000,
        help="seed-scan budget per bug (default 3000)",
    )
    parser.add_argument(
        "--sweep-seeds",
        type=int,
        default=30,
        help="success-sweep size for fix validation (default 30)",
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    try:
        if args.bugs:
            specs = [bug(b.strip()) for b in args.bugs.split(",") if b.strip()]
        else:
            wanted = None
            if args.primitives:
                wanted = tuple(
                    p.strip() for p in args.primitives.split(",") if p.strip()
                )
            specs = bugs(
                kind=args.kind,
                primitives=wanted,
                table=args.table,
                system=args.system,
            )
            if not specs:
                print("error: no corpus bugs match the filters", file=sys.stderr)
                return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    failures = 0
    started = time.monotonic()
    for spec in specs:
        module = spec.module()
        found = find_failing_seed(
            module, spec.workload, spec.entry, max_attempts=args.max_attempts
        )
        record: dict = {"bug_id": spec.bug_id, "kind": spec.kind}
        if found is None:
            failures += 1
            record["status"] = "no-failing-seed"
            print(f"{spec.bug_id:16s} {spec.kind:20s} NO FAILING SEED")
        else:
            failing_seed, failing_uid = found
            order = TargetOrder.from_truth(module, spec.ground_truth)
            outcome = validate_order(
                module,
                spec.workload,
                order,
                entry=spec.entry,
                failing_seed=failing_seed,
                expected_uid=failing_uid,
            )
            record.update(outcome.as_dict())
            record["failing_seed"] = failing_seed
            record["failing_uid"] = failing_uid
            status = outcome.status
            print(f"{spec.bug_id:16s} {spec.kind:20s} {status.upper()}")
            if not outcome.validated:
                failures += 1
                for line in outcome.render().splitlines():
                    print(f"    {line}")
            elif args.fixes:
                fix_outcomes = propose_and_validate(
                    spec.kind,
                    spec.fresh_module,
                    spec.workload,
                    order,
                    entry=spec.entry,
                    failing_seed=failing_seed,
                    sweep_seeds=args.sweep_seeds,
                )
                record["fixes"] = [o.as_dict() for o in fix_outcomes]
                for o in fix_outcomes:
                    tag = "ACCEPT" if o.accepted else "reject"
                    print(f"    {tag} {o.fix}: {o.reason}")
        if out_dir is not None:
            path = out_dir / f"{spec.bug_id.replace('/', '_')}.json"
            path.write_text(json.dumps(record, indent=2, sort_keys=True))

    elapsed = time.monotonic() - started
    verdict = "ok" if failures == 0 else f"{failures} not validated"
    print(f"validated {len(specs) - failures}/{len(specs)} bugs "
          f"in {elapsed:.1f}s ({verdict})")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
