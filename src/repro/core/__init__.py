"""Lazy Diagnosis: the paper's primary contribution (Figure 2, steps 2-7)."""

from repro.core.accuracy import kendall_tau_distance, ordering_accuracy
from repro.core.andersen import AndersenResult, SolverStats
from repro.core.cache import (
    AnalysisCache,
    CacheStats,
    DecodedTraceCache,
    DiagnosisCaches,
    ModuleIndex,
    module_fingerprint,
    module_index,
)
from repro.core.constraints import AbstractObject, ConstraintSystem, generate_constraints
from repro.core.patterns import (
    PatternComputation,
    PatternInstance,
    PatternSignature,
    compute_crash_patterns,
    compute_deadlock_patterns,
)
from repro.core.pipeline import LazyDiagnosis, PipelineConfig, TraceSample
from repro.core.points_to import PointsToAnalysis, PointsToStats
from repro.core.report import DiagnosisReport, StageStats, TargetEventReport
from repro.core.statistics import (
    ExecutionObservation,
    ScoredPattern,
    cap_successful,
    observe,
    score_patterns,
)
from repro.core.steensgaard import SteensgaardResult
from repro.core.trace_processing import ProcessedTrace, process_snapshot
from repro.core.type_ranking import RankedCandidate, RankingResult, rank_candidates

__all__ = [
    "kendall_tau_distance",
    "ordering_accuracy",
    "AndersenResult",
    "SolverStats",
    "AnalysisCache",
    "CacheStats",
    "DecodedTraceCache",
    "DiagnosisCaches",
    "ModuleIndex",
    "module_fingerprint",
    "module_index",
    "AbstractObject",
    "ConstraintSystem",
    "generate_constraints",
    "PatternComputation",
    "PatternInstance",
    "PatternSignature",
    "compute_crash_patterns",
    "compute_deadlock_patterns",
    "LazyDiagnosis",
    "PipelineConfig",
    "TraceSample",
    "PointsToAnalysis",
    "PointsToStats",
    "DiagnosisReport",
    "StageStats",
    "TargetEventReport",
    "ExecutionObservation",
    "ScoredPattern",
    "cap_successful",
    "observe",
    "score_patterns",
    "SteensgaardResult",
    "ProcessedTrace",
    "process_snapshot",
    "RankedCandidate",
    "RankingResult",
    "rank_candidates",
]
