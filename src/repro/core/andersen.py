"""Inclusion-based (Andersen-style) points-to solvers.

Two solvers over the same constraint system, guaranteed to compute the
same least fixpoint:

* :func:`solve` — the optimized production solver: online cycle
  detection with SCC collapsing (strongly-connected subset-edge nodes
  are unioned into one representative, so a cycle propagates once
  instead of spinning) plus difference propagation (each node keeps the
  *delta* of objects not yet pushed to its successors, so an edge only
  ever moves new objects, never the whole set again).  This is the
  Nuutila/Pearce-style solver the diagnosis hot path runs on.
* :func:`solve_naive` — the classic textbook worklist: re-diffs full
  points-to sets on every propagation and never collapses cycles.
  Kept as ``algorithm="andersen-naive"`` for the randomized
  equivalence suite and the Figure 7 / Table 4 ablations.

Nodes are IR values plus one "contents" node per abstract object
(field-insensitive); copy constraints are subset edges; load/store
constraints add edges on the fly as points-to sets grow; indirect call
sites add parameter/return edges when a function object reaches the
callee expression (on-the-fly call graph).

Inclusion-based analysis is the more precise of the two classical
families (vs. unification/Steensgaard, implemented next door as a
comparator) and the one the paper's hybrid analysis is built on (§4.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.constraints import (
    AbstractObject,
    ConstraintSystem,
    bind_indirect_call,
)
from repro.ir.values import Value


@dataclass(frozen=True)
class _ContentsNode:
    """The abstract contents of one object (what ``*obj`` may hold)."""

    obj: AbstractObject


@dataclass
class SolverStats:
    nodes: int = 0
    edges: int = 0
    propagations: int = 0
    indirect_resolutions: int = 0
    # optimized-solver extensions (zero for the naive solver)
    scc_collapses: int = 0  # nodes unioned into cycle representatives
    saved_propagations: int = 0  # objects delta propagation did not re-move
    seeded_objects: int = 0  # objects pre-loaded from a cached sub-scope

    def as_counters(self, prefix: str = "solver_") -> dict[str, int]:
        """The unified ``solver_*`` counter vocabulary a
        :class:`repro.obs.MetricsRegistry` absorbs after each solve."""
        return {
            f"{prefix}nodes": self.nodes,
            f"{prefix}edges": self.edges,
            f"{prefix}propagations": self.propagations,
            f"{prefix}indirect_resolutions": self.indirect_resolutions,
            f"{prefix}scc_collapses": self.scc_collapses,
            f"{prefix}saved_propagations": self.saved_propagations,
            f"{prefix}seeded_objects": self.seeded_objects,
        }


class AndersenResult:
    """Queryable points-to sets."""

    def __init__(self, pts: dict[object, set[AbstractObject]], stats: SolverStats):
        self._pts = pts
        self.stats = stats
        self._name_index: dict[str, list[AbstractObject]] | None = None

    def points_to(self, value: Value) -> frozenset[AbstractObject]:
        return frozenset(self._pts.get(value, ()))

    def contents_of(self, obj: AbstractObject) -> frozenset[AbstractObject]:
        return frozenset(self._pts.get(_ContentsNode(obj), ()))

    def may_alias(self, a: Value, b: Value) -> bool:
        return bool(self.points_to(a) & self.points_to(b))

    def as_sets(self) -> dict[object, frozenset[AbstractObject]]:
        """Every node's points-to set, as independent frozensets (SCC
        members stop sharing storage).  This is the seeding surface:
        a cached sub-scope result replayed into a superset solve."""
        return {node: frozenset(objs) for node, objs in self._pts.items()}

    def objects_named(self, name: str) -> list[AbstractObject]:
        # One pass over the points-to sets builds the whole name index;
        # every later query is a dict lookup instead of a full scan.
        if self._name_index is None:
            by_name: dict[str, set[AbstractObject]] = {}
            seen_sets: set[int] = set()  # SCC members share set objects
            for objs in self._pts.values():
                if id(objs) in seen_sets:
                    continue
                seen_sets.add(id(objs))
                for o in objs:
                    by_name.setdefault(o.name, set()).add(o)
            self._name_index = {
                name_: sorted(objs, key=lambda o: (o.kind, o.uid, o.name))
                for name_, objs in by_name.items()
            }
        return list(self._name_index.get(name, ()))


def solve_naive(system: ConstraintSystem) -> AndersenResult:
    """The classic worklist solver (no SCC collapsing, full-set diffs)."""
    pts: dict[object, set[AbstractObject]] = {}
    succ: dict[object, set[object]] = {}
    # loads/stores indexed by the pointer node they dereference
    load_uses: dict[object, list[object]] = {}
    store_uses: dict[object, list[object]] = {}
    call_uses: dict[object, list] = {}
    stats = SolverStats()
    work: deque[object] = deque()

    def get_pts(node: object) -> set[AbstractObject]:
        return pts.setdefault(node, set())

    def add_edge(src: object, dst: object) -> None:
        edges = succ.setdefault(src, set())
        if dst in edges or src is dst:
            return
        edges.add(dst)
        stats.edges += 1
        if get_pts(src) - get_pts(dst):
            get_pts(dst).update(get_pts(src))
            work.append(dst)

    for node, objs in system.addr_of.items():
        get_pts(node).update(objs)
        work.append(node)
    for dst, src in system.copies:
        add_edge(src, dst)
    for dst, pointer in system.loads:
        load_uses.setdefault(pointer, []).append(dst)
        work.append(pointer)
    for pointer, src in system.stores:
        store_uses.setdefault(pointer, []).append(src)
        work.append(pointer)
    for instr, callee in system.indirect_calls:
        call_uses.setdefault(callee, []).append(instr)
        work.append(callee)

    resolved_calls: set[tuple[int, str]] = set()

    while work:
        node = work.popleft()
        node_pts = get_pts(node)
        if not node_pts:
            continue
        # load: dst >= *node  -> edge contents(o) -> dst for each o
        for dst in load_uses.get(node, ()):  # type: ignore[arg-type]
            for obj in list(node_pts):
                add_edge(_ContentsNode(obj), dst)
        # store through node: *node >= src -> edge src -> contents(o)
        for src in store_uses.get(node, ()):  # type: ignore[arg-type]
            for obj in list(node_pts):
                add_edge(src, _ContentsNode(obj))
        # indirect calls through node
        for instr in call_uses.get(node, ()):  # type: ignore[arg-type]
            for obj in list(node_pts):
                fn = system.functions_by_object.get(obj)
                if fn is None:
                    continue
                key = (instr.uid, fn.name)
                if key in resolved_calls:
                    continue
                resolved_calls.add(key)
                stats.indirect_resolutions += 1
                for dst, src in bind_indirect_call(system, instr, fn):
                    add_edge(src, dst)
        # propagate along subset edges
        for dst in succ.get(node, ()):  # type: ignore[arg-type]
            dst_pts = get_pts(dst)
            missing = node_pts - dst_pts
            if missing:
                dst_pts.update(missing)
                stats.propagations += 1
                work.append(dst)

    stats.nodes = len(pts)
    return AndersenResult(pts, stats)


class _OptimizedSolver:
    """SCC-collapsing, delta-propagating inclusion solver.

    Invariants:

    * every node has a representative under union-find; all per-node
      state (points-to set, delta, successor edges, load/store/call
      uses) lives on representatives only;
    * ``delta[rep]`` holds exactly the objects added to ``pts[rep]``
      that have not yet been pushed through ``rep``'s outgoing edges or
      shown to its load/store/call uses;
    * collapsing an SCC unions all per-node state and re-queues the
      merged points-to set, so anything some member's successors or
      moved uses have not seen yet is guaranteed to flow again.

    Merges are NOT confined to :meth:`_collapse_sccs`: online 2-cycle
    detection in :meth:`add_edge` can re-parent a node while its own
    popped delta is mid-flight in :meth:`_process`, which is why
    :meth:`_merge` re-queues the full set rather than trying to
    reconstruct what each side has already pushed.
    """

    def __init__(self, system: ConstraintSystem, seed: AndersenResult | None = None):
        self.system = system
        self.seed = seed
        self.stats = SolverStats()
        self.parent: dict[object, object] = {}  # child -> parent (roots absent)
        self.pts: dict[object, set[AbstractObject]] = {}
        self.delta: dict[object, set[AbstractObject]] = {}
        self.succ: dict[object, set[object]] = {}
        self.load_uses: dict[object, list[object]] = {}
        self.store_uses: dict[object, list[object]] = {}
        self.call_uses: dict[object, list] = {}
        self.all_nodes: set[object] = set()
        self.work: deque[object] = deque()
        self.resolved_calls: set[tuple[int, str]] = set()
        # Cycle detection is *lazy*: 2-cycles merge the moment the
        # closing edge appears (one reverse-edge lookup, always on);
        # longer cycles are swept by a full Tarjan pass only when
        # worklist churn — delta batches processed — exceeds the node
        # count, i.e. when cycles are demonstrably re-queuing nodes.
        # Acyclic or propagation-light programs (most whole-program
        # baselines) never pay for a single Tarjan pass.
        self.batches_since_collapse = 0
        self.collapse_threshold = 0  # set after init, when nodes are known

    # -- union-find --------------------------------------------------------

    def find(self, n: object) -> object:
        parent = self.parent
        root = n
        while root in parent:
            root = parent[root]
        while n in parent:  # path compression
            parent[n], n = root, parent[n]
        return root

    def _merge(self, a: object, b: object) -> object:
        """Union roots ``a`` and ``b`` (cycle collapse)."""
        pa = self.pts.get(a) or set()
        pb = self.pts.get(b) or set()
        if len(pb) > len(pa):  # keep the heavier set in place
            a, b = b, a
            pa, pb = pb, pa
        self.parent[b] = a
        self.stats.scc_collapses += 1
        if pb:
            pa |= pb
        self.pts[a] = pa
        self.pts.pop(b, None)
        da = self.delta.setdefault(a, set())
        db = self.delta.pop(b, None)
        if db:
            da |= db
        # Re-queue the merged node's FULL set, not just the symmetric
        # difference of the members: online 2-cycle detection fires
        # inside _process's use loops, so a merge can land while one
        # member's popped delta is still mid-flight — those objects sit
        # in both sets (invisible to the symmetric difference) yet may
        # not have crossed either side's successor edges or reached the
        # other member's moved uses.  Destinations re-diff on add_pts,
        # so the cost is one full-set diff per merge, not a re-flood.
        if pa:
            da |= pa
        succ_b = self.succ.pop(b, None)
        if succ_b:
            self.succ.setdefault(a, set()).update(succ_b)
        for uses in (self.load_uses, self.store_uses, self.call_uses):
            moved = uses.pop(b, None)
            if moved:
                uses.setdefault(a, []).extend(moved)
        if da:
            self.work.append(a)
        return a

    # -- graph mutation ----------------------------------------------------

    def _touch(self, n: object) -> None:
        self.all_nodes.add(n)

    def add_edge(self, src: object, dst: object) -> None:
        self._touch(src)
        self._touch(dst)
        rs, rd = self.find(src), self.find(dst)
        if rs is rd:
            return
        edges = self.succ.setdefault(rs, set())
        if rd in edges:
            return
        edges.add(rd)
        self.stats.edges += 1
        back = self.succ.get(rd)
        if back is not None and rs in back:
            # online 2-cycle detection: rs ⊆ rd and rd ⊆ rs hold, so
            # they are one node; merge now instead of propagating twice
            self._merge(rs, rd)
            return
        p = self.pts.get(rs)
        if p:
            self.add_pts(rd, p)

    def add_pts(self, rep: object, objs: set[AbstractObject]) -> bool:
        cur = self.pts.setdefault(rep, set())
        new = objs - cur
        if not new:
            return False
        cur |= new
        self.delta.setdefault(rep, set()).update(new)
        self.work.append(rep)
        return True

    # -- SCC collapsing ----------------------------------------------------

    def _collapse_sccs(self) -> None:
        """Tarjan over the current subset-edge graph; union every SCC.

        Also normalizes the successor map (edges re-pointed at current
        representatives, self-loops dropped), which bounds the stale
        aliases union-find leaves behind.
        """
        self.batches_since_collapse = 0
        graph: dict[object, set[object]] = {}
        for src, dsts in self.succ.items():
            rs = self.find(src)
            out = graph.setdefault(rs, set())
            for d in dsts:
                rd = self.find(d)
                if rd is not rs:
                    out.add(rd)
        # iterative Tarjan
        index: dict[object, int] = {}
        lowlink: dict[object, int] = {}
        on_stack: set[object] = set()
        stack: list[object] = []
        counter = 0
        sccs: list[list[object]] = []
        for start in list(graph):
            if start in index:
                continue
            dfs: list[tuple[object, list[object], int]] = [
                (start, list(graph.get(start, ())), 0)
            ]
            index[start] = lowlink[start] = counter
            counter += 1
            stack.append(start)
            on_stack.add(start)
            while dfs:
                node, edges, i = dfs.pop()
                advanced = False
                while i < len(edges):
                    nxt = edges[i]
                    i += 1
                    if nxt not in index:
                        index[nxt] = lowlink[nxt] = counter
                        counter += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        dfs.append((node, edges, i))
                        dfs.append((nxt, list(graph.get(nxt, ())), 0))
                        advanced = True
                        break
                    if nxt in on_stack:
                        lowlink[node] = min(lowlink[node], index[nxt])
                if advanced:
                    continue
                if lowlink[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member is node:
                            break
                    if len(scc) > 1:
                        sccs.append(scc)
                if dfs:
                    parent_node = dfs[-1][0]
                    lowlink[parent_node] = min(
                        lowlink[parent_node], lowlink[node]
                    )
        for scc in sccs:
            rep = scc[0]
            for member in scc[1:]:
                rep = self._merge(self.find(rep), self.find(member))
        if sccs:
            rebuilt: dict[object, set[object]] = {}
            for src, dsts in graph.items():
                rs = self.find(src)
                out = rebuilt.setdefault(rs, set())
                for d in dsts:
                    rd = self.find(d)
                    if rd is not rs:
                        out.add(rd)
            self.succ = rebuilt

    # -- solving -----------------------------------------------------------

    def run(self) -> AndersenResult:
        system = self.system
        if self.seed is not None:
            # Incremental seeding: replay a cached sub-scope fixpoint
            # before loading this system's constraints.  Sound because a
            # sub-scope's constraints are a subset of this system's, so
            # its least fixpoint is contained in ours — starting the
            # monotone closure there converges to the identical lfp,
            # skipping the propagation work that derives those facts.
            for node, objs in self.seed.as_sets().items():
                if not objs:
                    continue
                self._touch(node)
                if self.add_pts(self.find(node), set(objs)):
                    self.stats.seeded_objects += len(objs)
        for node, objs in system.addr_of.items():
            self._touch(node)
            self.add_pts(self.find(node), set(objs))
        for dst, src in system.copies:
            self.add_edge(src, dst)
        for dst, pointer in system.loads:
            self._touch(pointer)
            self._touch(dst)
            self.load_uses.setdefault(self.find(pointer), []).append(dst)
        for pointer, src in system.stores:
            self._touch(pointer)
            self._touch(src)
            self.store_uses.setdefault(self.find(pointer), []).append(src)
        for instr, callee in system.indirect_calls:
            self._touch(callee)
            self.call_uses.setdefault(self.find(callee), []).append(instr)
        self.collapse_threshold = max(64, len(self.all_nodes))
        while self.work:
            if self.batches_since_collapse >= self.collapse_threshold:
                self._collapse_sccs()
            node = self.work.popleft()
            rep = self.find(node)
            d = self.delta.get(rep)
            if not d:
                continue
            self.delta[rep] = set()
            self.batches_since_collapse += 1
            self._process(rep, d)
        return self._result()

    def _process(self, rep: object, d: set[AbstractObject]) -> None:
        system = self.system
        for dst in self.load_uses.get(rep, ()):
            for obj in d:
                self.add_edge(_ContentsNode(obj), dst)
        for src in self.store_uses.get(rep, ()):
            for obj in d:
                self.add_edge(src, _ContentsNode(obj))
        for instr in self.call_uses.get(rep, ()):
            for obj in d:
                fn = system.functions_by_object.get(obj)
                if fn is None:
                    continue
                key = (instr.uid, fn.name)
                if key in self.resolved_calls:
                    continue
                self.resolved_calls.add(key)
                self.stats.indirect_resolutions += 1
                for dst, src in bind_indirect_call(system, instr, fn):
                    self.add_edge(src, dst)
        edges = self.succ.get(rep)
        if not edges:
            return
        # difference propagation: only the delta crosses each edge; the
        # naive solver would re-diff the full set every time.
        saved = len(self.pts.get(rep, ())) - len(d)
        for dst in list(edges):
            rd = self.find(dst)
            if rd is rep:
                continue
            if self.add_pts(rd, d):
                self.stats.propagations += 1
                if saved > 0:
                    self.stats.saved_propagations += saved

    def _result(self) -> AndersenResult:
        out: dict[object, set[AbstractObject]] = {}
        for n in self.all_nodes:
            objs = self.pts.get(self.find(n))
            if objs is not None:
                out[n] = objs  # SCC members intentionally share one set
        self.stats.nodes = len(self.all_nodes)
        return AndersenResult(out, self.stats)


def solve(
    system: ConstraintSystem, seed: AndersenResult | None = None
) -> AndersenResult:
    """Solve with the optimized (SCC-collapsing, delta) solver.

    ``seed`` is an optional cached result of a *sub-scope* of this
    system (same fingerprint, strictly fewer executed instructions);
    its points-to sets are pre-loaded so the worklist only derives the
    facts the wider scope adds.  The fixpoint is identical either way.
    """
    from repro.core.checkpoints import checkpoint

    result = _OptimizedSolver(system, seed=seed).run()
    checkpoint("andersen.solve", system=system, result=result)
    return result
