"""Inclusion-based (Andersen-style) points-to solver.

The classic worklist algorithm over the constraint graph: nodes are IR
values plus one "contents" node per abstract object (field-insensitive);
copy constraints are subset edges; load/store constraints add edges
on the fly as points-to sets grow; indirect call sites add parameter/
return edges when a function object reaches the callee expression
(on-the-fly call graph).

Inclusion-based analysis is the more precise of the two classical
families (vs. unification/Steensgaard, implemented next door as a
comparator) and the one the paper's hybrid analysis is built on (§4.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.constraints import (
    AbstractObject,
    ConstraintSystem,
    bind_indirect_call,
)
from repro.ir.values import Value


@dataclass(frozen=True)
class _ContentsNode:
    """The abstract contents of one object (what ``*obj`` may hold)."""

    obj: AbstractObject


@dataclass
class SolverStats:
    nodes: int = 0
    edges: int = 0
    propagations: int = 0
    indirect_resolutions: int = 0


class AndersenResult:
    """Queryable points-to sets."""

    def __init__(self, pts: dict[object, set[AbstractObject]], stats: SolverStats):
        self._pts = pts
        self.stats = stats

    def points_to(self, value: Value) -> frozenset[AbstractObject]:
        return frozenset(self._pts.get(value, ()))

    def contents_of(self, obj: AbstractObject) -> frozenset[AbstractObject]:
        return frozenset(self._pts.get(_ContentsNode(obj), ()))

    def may_alias(self, a: Value, b: Value) -> bool:
        return bool(self.points_to(a) & self.points_to(b))

    def objects_named(self, name: str) -> list[AbstractObject]:
        found: set[AbstractObject] = set()
        for objs in self._pts.values():
            for o in objs:
                if o.name == name:
                    found.add(o)
        return sorted(found, key=lambda o: (o.kind, o.uid, o.name))


def solve(system: ConstraintSystem) -> AndersenResult:
    pts: dict[object, set[AbstractObject]] = {}
    succ: dict[object, set[object]] = {}
    # loads/stores indexed by the pointer node they dereference
    load_uses: dict[object, list[object]] = {}
    store_uses: dict[object, list[object]] = {}
    call_uses: dict[object, list] = {}
    stats = SolverStats()
    work: deque[object] = deque()

    def get_pts(node: object) -> set[AbstractObject]:
        return pts.setdefault(node, set())

    def add_edge(src: object, dst: object) -> None:
        edges = succ.setdefault(src, set())
        if dst in edges or src is dst:
            return
        edges.add(dst)
        stats.edges += 1
        if get_pts(src) - get_pts(dst):
            get_pts(dst).update(get_pts(src))
            work.append(dst)

    for node, objs in system.addr_of.items():
        get_pts(node).update(objs)
        work.append(node)
    for dst, src in system.copies:
        add_edge(src, dst)
    for dst, pointer in system.loads:
        load_uses.setdefault(pointer, []).append(dst)
        work.append(pointer)
    for pointer, src in system.stores:
        store_uses.setdefault(pointer, []).append(src)
        work.append(pointer)
    for instr, callee in system.indirect_calls:
        call_uses.setdefault(callee, []).append(instr)
        work.append(callee)

    resolved_calls: set[tuple[int, str]] = set()

    while work:
        node = work.popleft()
        node_pts = get_pts(node)
        if not node_pts:
            continue
        # load: dst >= *node  -> edge contents(o) -> dst for each o
        for dst in load_uses.get(node, ()):  # type: ignore[arg-type]
            for obj in list(node_pts):
                add_edge(_ContentsNode(obj), dst)
        # store through node: *node >= src -> edge src -> contents(o)
        for src in store_uses.get(node, ()):  # type: ignore[arg-type]
            for obj in list(node_pts):
                add_edge(src, _ContentsNode(obj))
        # indirect calls through node
        for instr in call_uses.get(node, ()):  # type: ignore[arg-type]
            for obj in list(node_pts):
                fn = system.functions_by_object.get(obj)
                if fn is None:
                    continue
                key = (instr.uid, fn.name)
                if key in resolved_calls:
                    continue
                resolved_calls.add(key)
                stats.indirect_resolutions += 1
                for dst, src in bind_indirect_call(system, instr, fn):
                    add_edge(src, dst)
        # propagate along subset edges
        for dst in succ.get(node, ()):  # type: ignore[arg-type]
            dst_pts = get_pts(dst)
            missing = node_pts - dst_pts
            if missing:
                dst_pts.update(missing)
                stats.propagations += 1
                work.append(dst)

    stats.nodes = len(pts)
    return AndersenResult(pts, stats)
