"""Ordering accuracy: the paper's A_O metric (§6.1).

A_O compares the order of target instructions a tool diagnoses against
the manually verified ground truth using the normalized Kendall tau
distance K: the number of instruction pairs the two orderings disagree
on.  A_O = 100 * (1 - K / #pairs).  Snorlax reports 100% on every bug it
evaluates; our accuracy bench asserts the same.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence


def kendall_tau_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Pairwise disagreements between two orderings of the same items.

    Items present in only one list are ignored (they contribute no
    comparable pair).
    """
    pos_a = {x: i for i, x in enumerate(a)}
    pos_b = {x: i for i, x in enumerate(b)}
    common = [x for x in a if x in pos_b]
    distance = 0
    for x, y in combinations(common, 2):
        if (pos_a[x] - pos_a[y]) * (pos_b[x] - pos_b[y]) < 0:
            distance += 1
    return distance


def ordering_accuracy(diagnosed: Sequence[int], ground_truth: Sequence[int]) -> float:
    """A_O as defined in the paper, in percent.

    ``diagnosed`` and ``ground_truth`` are ordered lists of target
    instruction uids.  The pair universe is the union of both lists, so
    missing or extra instructions also cost accuracy (matching the
    paper's "# of pairs in O_S  [union] O_M" denominator).
    """
    # An ordering may name the same instruction more than once (e.g. the
    # three-lock chain, where every cycle participant runs the same
    # routine): the pairwise order relation is between distinct
    # instructions, so collapse repeats first, keeping first positions.
    diagnosed = list(dict.fromkeys(diagnosed))
    ground_truth = list(dict.fromkeys(ground_truth))
    universe = list(dict.fromkeys(diagnosed + ground_truth))
    n = len(universe)
    if n < 2:
        # A single (or empty) target list: exact match or total miss.
        return 100.0 if diagnosed == ground_truth else 0.0
    total_pairs = n * (n - 1) // 2
    # Pairs not comparable in both lists count as disagreements: a tool
    # that omits a target instruction should not get credit for it.
    distance = kendall_tau_distance(diagnosed, ground_truth)
    comparable = len([x for x in diagnosed if x in set(ground_truth)])
    missing_pairs = total_pairs - comparable * (comparable - 1) // 2
    return 100.0 * (1.0 - (distance + missing_pairs) / total_pairs)
