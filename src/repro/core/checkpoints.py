"""Invariant checkpoints: hook points the self-check harness observes.

The pipeline, the solvers, and trace processing each announce their
intermediate artifacts through :func:`checkpoint`.  In production no
observer is installed and every call is a single ``is None`` test — the
stages pay nothing.  Under ``python -m repro.check`` (or a test) an
observer installed via :func:`observed` receives ``(point, payload)``
for every announcement and can assert stage invariants *in situ*: on
the real artifacts of a real diagnosis, not on reconstructions.

Checkpoint vocabulary (the payload keys each point guarantees):

======================================  =================================
point                                   payload
======================================  =================================
``trace_processing.process_snapshot``   ``trace`` (ProcessedTrace)
``pipeline.trace``                      ``trace``, ``sample``
``pipeline.points_to``                  ``analysis``, ``module``,
                                        ``executed``
``pipeline.scored``                     ``observations``, ``scored``
``pipeline.report``                     ``report``
``andersen.solve``                      ``system``, ``result``
``statistics.score_patterns``           ``observations``, ``scored``
======================================  =================================

An observer that raises aborts the surrounding diagnosis with the
raised error — exactly what the check harness wants (the case fails and
is shrunk), and why production keeps the observer uninstalled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

Observer = Callable[[str, dict], None]

_observer: Observer | None = None


def set_observer(fn: Observer | None) -> None:
    """Install (or with ``None`` clear) the process-wide observer."""
    global _observer
    _observer = fn


def active() -> bool:
    return _observer is not None


@contextmanager
def observed(fn: Observer) -> Iterator[None]:
    """Scope an observer; restores whatever was installed before."""
    global _observer
    previous = _observer
    _observer = fn
    try:
        yield
    finally:
        _observer = previous


def checkpoint(point: str, **payload: object) -> None:
    """Announce a stage artifact.  Free when no observer is installed."""
    obs = _observer
    if obs is not None:
        obs(point, payload)
