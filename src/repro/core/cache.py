"""Content-keyed caches for the diagnosis hot path.

A fleet server diagnoses the same programs over and over: the same bug
recurs across endpoints and across days, and step 8 keeps shipping
snapshots of deterministic executions.  Re-deriving module-level static
facts, re-decoding identical PT buffers, and re-solving identical
points-to problems is pure waste.  Three layers fix that:

* :class:`ModuleIndex` / :func:`module_index` — per-module static facts
  (instruction count, collected return values, content fingerprint)
  computed once per live module object and shared by every analysis.
  This is what makes the *hybrid* analysis cost proportional to the
  trace, not the program: constraint generation no longer walks the
  whole module to find the executed slice.
* :class:`AnalysisCache` — memoizes solved points-to analyses keyed by
  (module fingerprint, frozen executed scope, algorithm).  A repeat
  diagnosis of the same bug with the same evidence skips constraint
  generation and solving entirely.
* :class:`DecodedTraceCache` — memoizes decoded per-thread traces keyed
  by (module fingerprint, tid, buffer hash, MTC period).  Snapshots
  shared across diagnoses decode once; decoded traces are treated as
  immutable by the whole pipeline.

Keys are *content* keys: a module whose IR changed fingerprints
differently (the printer round-trips the full IR text), so a stale hit
is impossible as long as finalized modules are not mutated in place —
the invariant the rest of the stack already relies on.

Both caches are thread-safe, LRU-bounded, and count hits/misses/
evictions so the fleet can export cache health as metrics.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.ir.instructions import Ret
from repro.ir.module import Module
from repro.ir.values import Constant, NullPointer, Value


class ModuleIndex:
    """Static per-module facts every analysis needs, computed once."""

    def __init__(self, module: Module):
        self.instruction_count = 0
        # trackable return values per function, collected module-wide
        # (returns matter whenever an executed call targets the function,
        # even if the ret itself is outside the executed scope)
        self.returns_of: dict[object, list[Value]] = {}
        for fn in module.functions.values():
            rets: list[Value] = []
            for instr in fn.instructions():
                self.instruction_count += 1
                if isinstance(instr, Ret) and instr.value is not None:
                    if not isinstance(instr.value, (Constant, NullPointer)):
                        rets.append(instr.value)
            self.returns_of[fn] = rets
        self._module_ref = weakref.ref(module)
        self._fingerprint: str | None = None

    @property
    def fingerprint(self) -> str:
        """SHA-256 of the printed IR: a content key for the module."""
        if self._fingerprint is None:
            module = self._module_ref()
            if module is None:  # pragma: no cover - module died mid-use
                raise RuntimeError("module was garbage-collected")
            from repro.ir.printer import print_module

            self._fingerprint = hashlib.sha256(
                print_module(module).encode()
            ).hexdigest()
        return self._fingerprint


_INDEX_LOCK = threading.Lock()
_INDEXES: "weakref.WeakKeyDictionary[Module, ModuleIndex]" = (
    weakref.WeakKeyDictionary()
)


def module_index(module: Module) -> ModuleIndex:
    """The (cached) static index for a finalized module."""
    with _INDEX_LOCK:
        index = _INDEXES.get(module)
        if index is None:
            index = ModuleIndex(module)
            _INDEXES[module] = index
        return index


def module_fingerprint(module: Module) -> str:
    """Content fingerprint of a module (cached via its index)."""
    return module_index(module).fingerprint


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    # persistent tiers (repro.store) count fills; pure in-memory LRUs
    # leave this at zero
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_counters(self, prefix: str = "") -> dict[str, int]:
        """The unified cache-counter vocabulary (``{prefix}hits`` …) a
        :class:`repro.obs.MetricsRegistry` absorbs via
        ``absorb_cache_stats``.  Covers the persistent-store tiers too:
        with ``prefix="store_"`` this yields ``store_hits`` /
        ``store_misses`` / ``store_writes`` / ``store_evictions``."""
        return {
            f"{prefix}hits": self.hits,
            f"{prefix}misses": self.misses,
            f"{prefix}evictions": self.evictions,
            f"{prefix}writes": self.writes,
        }


class _LruCache:
    """Thread-safe LRU with hit/miss/eviction accounting."""

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ValueError("cache needs max_entries >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[object, object] = OrderedDict()

    def get(self, key: object) -> object | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: object, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass
class CachedAnalysis:
    """One solved analysis: the constraint system plus its result."""

    system: object  # ConstraintSystem
    result: object  # AndersenResult | SteensgaardResult


class AnalysisCache(_LruCache):
    """Memoized points-to analyses, content-keyed.

    Key: (module fingerprint, frozen executed scope or None, algorithm).
    The fleet dedup path — the same bug reported again with the same
    evidence — hits this and skips points-to entirely.
    """

    def __init__(self, max_entries: int = 64):
        super().__init__(max_entries)

    @staticmethod
    def key_for(
        module: Module, executed_uids: set[int] | None, algorithm: str
    ) -> tuple:
        scope = None if executed_uids is None else frozenset(executed_uids)
        return (module_fingerprint(module), scope, algorithm)

    def seed_candidate(
        self,
        module: Module,
        executed_uids: set[int] | None,
        algorithm: str = "andersen",
    ) -> CachedAnalysis | None:
        """The best cached *sub-scope* analysis to seed a new solve.

        A cached entry qualifies when it is the same module fingerprint
        and algorithm but a strictly smaller executed scope: its
        constraints are a subset of the target's, so its fixpoint is
        contained in the target's and can be replayed as a starting
        point (see :func:`repro.core.andersen.solve`).  The largest
        qualifying scope wins — it prepays the most propagation.

        This is a read-only scan: no hit/miss accounting, no LRU
        reordering — a seed probe must not perturb cache stats the
        fleet asserts on.
        """
        if executed_uids is None:
            return None
        target = frozenset(executed_uids)
        fingerprint = module_fingerprint(module)
        best_key: tuple | None = None
        best_size = -1
        with self._lock:
            for key in self._entries:
                fp, scope, algo = key
                if fp != fingerprint or algo != algorithm:
                    continue
                if scope is None or not (scope < target):
                    continue
                if len(scope) > best_size:
                    best_key, best_size = key, len(scope)
            if best_key is None:
                return None
            return self._entries[best_key]  # type: ignore[return-value]


class DecodedTraceCache(_LruCache):
    """Memoized decoded thread traces, content-keyed.

    Key: (module fingerprint, tid, buffer SHA-256, MTC period).  The
    returned :class:`~repro.pt.decoder.ThreadTrace` is shared between
    diagnoses and must be treated as read-only — the pipeline only ever
    copies out of it (``process_snapshot`` builds fresh state).
    """

    def __init__(self, max_entries: int = 1024):
        super().__init__(max_entries)

    def get_or_decode(
        self,
        module: Module,
        data: bytes,
        tid: int,
        mtc_period_ns: int,
        events: dict[str, int] | None = None,
        tracer=None,
    ):
        key = (
            module_fingerprint(module),
            tid,
            hashlib.sha256(data).digest(),
            mtc_period_ns,
        )
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER as tracer  # noqa: N813
        with tracer.span("trace_cache_lookup", tid=tid, bytes=len(data)) as span:
            trace = self.get(key)
            if trace is not None:
                span.set(outcome="hit")
                if events is not None:
                    events["trace_cache_hits"] = events.get("trace_cache_hits", 0) + 1
                return trace
            span.set(outcome="miss")
            from repro.pt.decoder import decode_thread_trace

            trace = decode_thread_trace(module, data, tid, mtc_period_ns)
            self.put(key, trace)
            if events is not None:
                events["trace_cache_misses"] = (
                    events.get("trace_cache_misses", 0) + 1
                )
            return trace


@dataclass
class CollectedEvidence:
    """One satisfied step-8 collection: the samples plus how it ran."""

    samples: tuple  # tuple[TraceSample, ...], treated as immutable
    attempts: int


class CollectedEvidenceCache(_LruCache):
    """Memoized step-8 evidence for recurring failures, content-keyed.

    Collection is deterministic in (module, failing seed, policy): the
    same failure recurring across the fleet re-derives byte-identical
    evidence, execution by execution.  Caching the collected samples
    turns the production steady state — the same bug failing again —
    into zero remote executions: the diagnosis replays the stored
    evidence through the (also cached) analysis pipeline.

    Key: (module fingerprint, program/workload id, failing seed,
    failing uid, collection start seed, full stopping policy).  Only
    *satisfied* collections belong here — a degraded run (deadline hit,
    endpoints scarce) must collect for real next time.
    """

    def __init__(self, max_entries: int = 128):
        super().__init__(max_entries)

    @staticmethod
    def key_for(
        module: Module,
        workload_id: str,
        failing_seed: int,
        failing_uid: int,
        start_seed: int,
        policy: tuple,
    ) -> tuple:
        return (
            module_fingerprint(module),
            workload_id,
            failing_seed,
            failing_uid,
            start_seed,
            policy,
        )


@dataclass
class DiagnosisCaches:
    """The caches a server shares across all its diagnoses."""

    analysis: AnalysisCache = field(default_factory=AnalysisCache)
    traces: DecodedTraceCache = field(default_factory=DecodedTraceCache)
    evidence: CollectedEvidenceCache = field(
        default_factory=CollectedEvidenceCache
    )
