"""Unification-based (Steensgaard-style) points-to analysis.

The almost-linear-time alternative the paper contrasts inclusion-based
analysis against (§4.2): assignments *unify* the two sides' equivalence
classes instead of adding subset edges, so the result is coarser — every
alias set is symmetric — but the solve is near-linear via union-find.

Snorlax itself uses the inclusion-based analysis; this module exists as
the precision baseline for the ablation bench (DESIGN.md §5): it lets
us measure how many more candidate instructions type-based ranking and
pattern computation would have to consider under the cheaper analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import AbstractObject, ConstraintSystem
from repro.ir.values import Value


class _UnionFind:
    def __init__(self):
        self._parent: dict[object, object] = {}
        self._rank: dict[object, int] = {}

    def find(self, x: object) -> object:
        parent = self._parent
        if x not in parent:
            parent[x] = x
            self._rank[x] = 0
            return x
        root = x
        while parent[root] is not root:
            root = parent[root]
        while parent[x] is not root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: object, b: object) -> object:
        ra, rb = self.find(a), self.find(b)
        if ra is rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra


@dataclass
class SteensgaardStats:
    unions: int = 0
    nodes: int = 0

    def as_counters(self, prefix: str = "solver_") -> dict[str, int]:
        """Unified counter vocabulary (see SolverStats.as_counters)."""
        return {f"{prefix}nodes": self.nodes, f"{prefix}unions": self.unions}


class SteensgaardResult:
    def __init__(
        self,
        uf: _UnionFind,
        class_objects: dict[object, set[AbstractObject]],
        pointee_class: dict[object, object],
        stats: SteensgaardStats,
    ):
        self._uf = uf
        self._class_objects = class_objects
        self._pointee_class = pointee_class
        self.stats = stats

    def points_to(self, value: Value) -> frozenset[AbstractObject]:
        root = self._uf.find(value)
        target = self._pointee_class.get(root)
        if target is None:
            return frozenset()
        return frozenset(self._class_objects.get(self._uf.find(target), ()))

    def may_alias(self, a: Value, b: Value) -> bool:
        pa, pb = self.points_to(a), self.points_to(b)
        return bool(pa & pb)


def solve(system: ConstraintSystem) -> SteensgaardResult:
    """Unify per the four rules; derive class points-to sets afterward."""
    uf = _UnionFind()
    stats = SteensgaardStats()
    # Each equivalence class has at most one pointee class; unifying two
    # classes with pointees unifies the pointees too (the cascade that
    # makes Steensgaard coarse).
    pointee: dict[object, object] = {}
    class_objects: dict[object, set[AbstractObject]] = {}

    def pointee_of(root: object) -> object:
        if root not in pointee:
            placeholder = ("pointee", len(pointee), id(root))
            pointee[root] = uf.find(placeholder)
        return pointee[root]

    def unify(a: object, b: object) -> object:
        ra, rb = uf.find(a), uf.find(b)
        if ra is rb:
            return ra
        stats.unions += 1
        pa, pb = pointee.get(ra), pointee.get(rb)
        oa = class_objects.pop(ra, set())
        ob = class_objects.pop(rb, set())
        root = uf.union(ra, rb)
        pointee.pop(ra, None)
        pointee.pop(rb, None)
        merged = oa | ob
        if merged:
            class_objects[root] = merged
        if pa is not None and pb is not None:
            pointee[root] = unify(pa, pb)
        elif pa is not None or pb is not None:
            pointee[root] = uf.find(pa if pa is not None else pb)
        return root

    # rule 1: p = &l  -> the pointee class of p contains object l
    for node, objs in system.addr_of.items():
        root = uf.find(node)
        target = pointee_of(root)
        troot = uf.find(target)
        pointee[root] = troot
        class_objects.setdefault(troot, set()).update(objs)
        # The object's own variable (its contents) lives in a class too:
        for obj in objs:
            unify(target, ("contents", obj))
    # rule 2: p = q -> unify(p, q)'s pointees; Steensgaard unifies the
    # pointee classes rather than the pointers themselves.
    for dst, src in system.copies:
        a, b = uf.find(dst), uf.find(src)
        unify(pointee_of(a), pointee_of(b))
        pointee[uf.find(a)] = uf.find(pointee_of(uf.find(a)))
    # rule 4: p = *q -> pointee(p) ~ pointee(pointee(q))
    for dst, pointer in system.loads:
        pr = uf.find(pointer)
        inner = pointee_of(uf.find(pointee_of(pr)))
        unify(pointee_of(uf.find(dst)), inner)
    # rule 3: *p = q -> pointee(pointee(p)) ~ pointee(q)
    for pointer, src in system.stores:
        pr = uf.find(pointer)
        inner = pointee_of(uf.find(pointee_of(pr)))
        unify(inner, pointee_of(uf.find(src)))
    # indirect calls: unify each argument's pointee with every function's
    # parameter pointee (maximally coarse, as unification must be)
    for instr, callee in system.indirect_calls:
        for fn in system.functions_by_object.values():
            args = instr.args  # type: ignore[attr-defined]
            if len(args) != len(fn.params):
                continue
            for param, arg in zip(fn.params, args):
                unify(pointee_of(uf.find(param)), pointee_of(uf.find(arg)))

    # normalize roots
    final_objects: dict[object, set[AbstractObject]] = {}
    for root, objs in class_objects.items():
        final_objects.setdefault(uf.find(root), set()).update(objs)
    final_pointee: dict[object, object] = {}
    for root, target in pointee.items():
        final_pointee[uf.find(root)] = uf.find(target)
    stats.nodes = len(final_pointee)
    return SteensgaardResult(uf, final_objects, final_pointee, stats)
