"""Points-to constraint generation (the four rules of Figure 3).

Walks IR instructions and produces the constraint system both solvers
consume.  Abstract objects are allocation sites: each ``alloca``,
``malloc``, global variable, and function gets one object.  The analysis
is field-insensitive (a pointer to a field may point to anything the
base object may), which is the standard baseline for inclusion-based
analysis and is conservative in exactly the way the paper's type-based
ranking then compensates for.

Scope restriction (§4.2): passing ``executed_uids`` limits constraint
generation to instructions that appear in the control-flow trace, which
is what makes the otherwise whole-program analysis cheap.  Call-graph
edges are discovered on the fly by the solver for indirect calls; the
generator emits parameter/return copy edges for direct calls and
spawns, and registers indirect call sites for the solver to resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    FieldAddr,
    IndexAddr,
    Instruction,
    Load,
    Malloc,
    Ret,
    Spawn,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import (
    Argument,
    Constant,
    FunctionRef,
    GlobalVariable,
    NullPointer,
    Value,
)


@dataclass(frozen=True)
class AbstractObject:
    """An allocation site: the unit points-to sets are made of."""

    kind: str  # "stack" | "heap" | "global" | "func"
    uid: int  # allocation instruction / global uid (0 for functions)
    name: str

    def __str__(self) -> str:
        return f"{self.kind}:{self.name or self.uid}"


@dataclass
class ConstraintSystem:
    """The solver input: base facts plus copy/load/store constraints."""

    # pts(node) starts with these objects (rule 1: p = &l)
    addr_of: dict[Value, set[AbstractObject]] = field(default_factory=dict)
    # pts(dst) >= pts(src)  (rule 2: p = q)
    copies: list[tuple[Value, Value]] = field(default_factory=list)
    # pts(dst) >= pts(*src)  (rule 4: p = *q)
    loads: list[tuple[Value, Value]] = field(default_factory=list)
    # pts(*dst) >= pts(src)  (rule 3: *p = q)
    stores: list[tuple[Value, Value]] = field(default_factory=list)
    # unresolved indirect call/spawn sites for on-the-fly resolution
    indirect_calls: list[tuple[Instruction, Value]] = field(default_factory=list)
    # objects by site uid, for cross-checking against the simulator
    objects: dict[int, AbstractObject] = field(default_factory=dict)
    functions_by_object: dict[AbstractObject, Function] = field(default_factory=dict)
    object_of_function: dict[Function, AbstractObject] = field(default_factory=dict)
    returns_of: dict[Function, list[Value]] = field(default_factory=dict)
    instructions_analyzed: int = 0

    def add_addr_of(self, node: Value, obj: AbstractObject) -> None:
        self.addr_of.setdefault(node, set()).add(obj)

    def add_copy(self, dst: Value, src: Value) -> None:
        if _is_trackable(src):
            self.copies.append((dst, src))


def _is_trackable(value: Value) -> bool:
    """Values that can carry addresses (constants and null cannot)."""
    return not isinstance(value, (Constant, NullPointer))


def generate_constraints(
    module: Module, executed_uids: set[int] | None = None
) -> ConstraintSystem:
    """Build the constraint system; ``executed_uids=None`` = whole program.

    With a scope, generation iterates the *executed uids* directly (uid
    order is program order) instead of walking the whole module and
    filtering — the hybrid analysis' cost is proportional to the trace,
    not the program.  Module-wide facts that ignore scope (return-value
    collection) come precomputed from the module index.
    """
    from repro.core.cache import module_index

    system = ConstraintSystem()
    for g in module.globals.values():
        obj = AbstractObject("global", g.uid, g.name)
        system.objects[g.uid] = obj
        system.add_addr_of(g, obj)
        if g.initializer is not None and _is_trackable(g.initializer):
            # global holding an address at startup: *g >= init
            system.stores.append((g, g.initializer))
    for fn in module.functions.values():
        fobj = AbstractObject("func", 0, fn.name)
        system.functions_by_object[fobj] = fn
        system.object_of_function[fn] = fobj
    # Returns are collected even outside the executed set: they only
    # matter if some executed call targets fn.  The index has them.
    for fn, rets in module_index(module).returns_of.items():
        system.returns_of[fn] = list(rets)
    if executed_uids is None:
        for fn in module.functions.values():
            for instr in fn.instructions():
                _constrain_instruction(system, instr)
                system.instructions_analyzed += 1
    else:
        # sorted uids = program order (uids are assigned in program order)
        for uid in sorted(executed_uids):
            instr = module.instruction_or_none(uid)
            if instr is None:
                continue
            _constrain_instruction(system, instr)
            system.instructions_analyzed += 1
    return system


def _function_object(system: ConstraintSystem, fn: Function) -> AbstractObject:
    obj = system.object_of_function.get(fn)
    if obj is not None:
        return obj
    for obj, f in system.functions_by_object.items():  # legacy systems
        if f is fn:
            return obj
    raise KeyError(fn.name)


def _constrain_operand(system: ConstraintSystem, value: Value) -> None:
    """Base facts for operand kinds that are address constants."""
    if isinstance(value, FunctionRef):
        system.add_addr_of(value, _function_object(system, value.function))


def _constrain_instruction(system: ConstraintSystem, instr: Instruction) -> None:
    for op in instr.operands:
        _constrain_operand(system, op)
    if isinstance(instr, Alloca):
        obj = AbstractObject("stack", instr.uid, instr.name)
        system.objects[instr.uid] = obj
        system.add_addr_of(instr, obj)
    elif isinstance(instr, Malloc):
        obj = AbstractObject("heap", instr.uid, instr.name)
        system.objects[instr.uid] = obj
        system.add_addr_of(instr, obj)
    elif isinstance(instr, (Cast, FieldAddr, IndexAddr)):
        # Field-insensitive: the derived pointer aliases the base object.
        base = instr.operands[0]
        system.add_copy(instr, base)
    elif isinstance(instr, BinOp):
        # Pointer arithmetic routed through integers: be conservative.
        system.add_copy(instr, instr.lhs)
        system.add_copy(instr, instr.rhs)
    elif isinstance(instr, Load):
        system.loads.append((instr, instr.pointer))
    elif isinstance(instr, Store):
        if _is_trackable(instr.value):
            system.stores.append((instr.pointer, instr.value))
    elif isinstance(instr, (Call, Spawn)):
        callee = instr.callee
        if isinstance(callee, FunctionRef):
            _bind_call(system, instr, callee.function)
        else:
            system.indirect_calls.append((instr, callee))


def _bind_call(system: ConstraintSystem, instr: Instruction, fn: Function) -> None:
    """Parameter and return copy edges for a resolved call/spawn."""
    args = instr.args  # type: ignore[attr-defined]
    for param, arg in zip(fn.params, args):
        if _is_trackable(arg):
            system.add_copy(param, arg)
    if isinstance(instr, Call):
        for ret_value in system.returns_of.get(fn, []):
            system.add_copy(instr, ret_value)


def bind_indirect_call(
    system: ConstraintSystem, instr: Instruction, fn: Function
) -> list[tuple[Value, Value]]:
    """Copy edges created when the solver resolves an indirect call.

    Returned (dst, src) pairs are fed back into the solver worklist.
    """
    new_edges: list[tuple[Value, Value]] = []
    args = instr.args  # type: ignore[attr-defined]
    for param, arg in zip(fn.params, args):
        if _is_trackable(arg):
            new_edges.append((param, arg))
    if isinstance(instr, Call):
        for ret_value in system.returns_of.get(fn, []):
            new_edges.append((instr, ret_value))
    return new_edges
