"""Type-based ranking: step 5 of Lazy Diagnosis (§4.3, Figure 4).

Given the failing instruction's pointer operand, collect every executed
instruction whose pointer operand may alias it (per the hybrid points-to
result) and rank them: rank 1 for instructions whose operand's declared
pointee type exactly matches the failing operand's, rank 2 otherwise.

Nothing is discarded — type casts mean an ``i32*`` can legitimately be
the ``Queue*`` involved in the bug — but pattern computation explores
rank-1 candidates first, which is where the paper's 4.6x diagnosis-
latency reduction comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.points_to import PointsToAnalysis
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.types import PointerType, Type
from repro.ir.values import Value


@dataclass(frozen=True)
class RankedCandidate:
    instr: Instruction
    rank: int  # 1 = exact type match, 2 = alias with different type
    access: str  # "read" | "write" | "lock" | "unlock"
    objects: frozenset = frozenset()  # may-point-to set of the operand

    @property
    def uid(self) -> int:
        return self.instr.uid


@dataclass
class RankingResult:
    failing_uid: int
    operand_type: Type | None
    candidates: list[RankedCandidate] = field(default_factory=list)
    considered: int = 0  # alias candidates before ranking

    def rank1(self) -> list[RankedCandidate]:
        return [c for c in self.candidates if c.rank == 1]

    def uids(self, max_rank: int = 2) -> list[int]:
        return [c.uid for c in self.candidates if c.rank <= max_rank]

    @property
    def reduction_factor(self) -> float:
        """How much rank-1 prioritization narrows the initial search."""
        r1 = len(self.rank1())
        if r1 == 0:
            return 1.0
        return len(self.candidates) / r1


def _access_kind(instr: Instruction) -> str | None:
    if instr.is_memory_read:
        return "read"
    if instr.is_memory_write:
        return "write"
    opcode = instr.opcode
    if opcode == "free":
        # Freeing mutates the object's liveness: a write for the purposes
        # of order/atomicity patterns (use-after-free is a W->R violation).
        return "write"
    if opcode in ("condwait", "semwait", "barrierwait"):
        # Waits *consume* the primitive's state (a signal, a permit, an
        # arrival quorum): reads for pattern purposes, so a lost wakeup
        # is a W->R order violation on the condvar object.
        return "read"
    if opcode in ("condnotify", "sempost"):
        return "write"
    if opcode in ("lock", "rwrdlock", "rwwrlock"):
        return "lock"
    if opcode in ("unlock", "rwunlock"):
        return "unlock"
    return None


def _pointee(ty: Type) -> Type | None:
    return ty.pointee if isinstance(ty, PointerType) else None


def rank_candidates(
    module: Module,
    analysis: PointsToAnalysis,
    executed_uids: set[int],
    failing_operands: list[Value],
    failing_uid: int,
    include_locks: bool = False,
) -> RankingResult:
    """Rank executed memory accesses that may alias the failing operand(s).

    For a crash the candidates are loads/stores seeded by the corrupt
    pointer; for a deadlock (``include_locks=True``) lock/unlock
    operations seeded by every lock in the reported cycle.
    """
    target_objs: frozenset = frozenset()
    for operand in failing_operands:
        target_objs |= analysis.points_to(operand)
    want_type = _pointee(failing_operands[0].ty) if failing_operands else None
    result = RankingResult(failing_uid=failing_uid, operand_type=want_type)
    if not target_objs:
        return result
    for uid in sorted(executed_uids):
        try:
            instr = module.instruction(uid)
        except Exception:
            continue
        access = _access_kind(instr)
        if access is None:
            continue
        if include_locks != (access in ("lock", "unlock")):
            continue
        pointer = instr.pointer_operand()
        if pointer is None:
            continue
        cand_objs = analysis.points_to(pointer)
        if not (cand_objs & target_objs):
            continue
        result.considered += 1
        have_type = _pointee(pointer.ty)
        rank = 1 if (want_type is not None and have_type == want_type) else 2
        result.candidates.append(RankedCandidate(instr, rank, access, cand_objs))
    result.candidates.sort(key=lambda c: (c.rank, c.uid))
    return result
