"""Bug pattern computation: step 6 of Lazy Diagnosis (§4.4).

Takes the type-ranked candidate instructions and the partially-ordered
dynamic trace, and generates the concrete concurrency-bug patterns of
Figure 1 that are consistent with this execution:

* **order violations** — two accesses to the same object from different
  threads, at least one a write, with a definite cross-thread order
  (Figure 1b; both WR and RW shapes, where "the write never executed"
  counts as the R->W shape, since a fail-stop crash can kill the writer);
* **single-variable atomicity violations** — RWR / WWR / RWW / WRW
  triples where the first and third access come from one thread and the
  middle access from another, interleaved between them (Figure 1c);
* **deadlocks** — circular hold/attempt shapes over lock operations
  (Figure 1a), built from the cycle the hang detector reports plus the
  lock acquisitions found in the trace.

Patterns are *anchored at the failing instruction* (the paper's §7
assumption) and identified by a uid-based signature so the statistical
stage can test each pattern's presence across many executions.

This is where partial flow sensitivity enters: candidates were computed
flow-insensitively, and only here do the dynamic instances get
"executes-before" edges from the trace's timing intervals (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trace_processing import ProcessedTrace
from repro.core.type_ranking import RankedCandidate, RankingResult
from repro.ir.module import Module
from repro.pt.decoder import DynamicInstruction

ORDER_KINDS = {"WR", "RW", "WW"}
ATOMICITY_KINDS = {"RWR", "WWR", "RWW", "WRW"}

_ROLE = {"read": "R", "write": "W", "lock": "L", "unlock": "U"}


@dataclass(frozen=True)
class PatternSignature:
    """The execution-independent identity of a pattern.

    ``events`` is the ordered tuple of (uid, role) pairs; ``shape``
    encodes which events share a thread (e.g. atomicity violations have
    shape "aba").  Two executions exhibit "the same pattern" iff their
    signatures are equal.
    """

    kind: str  # "WR" | "RW" | "WW" | "RWR" | ... | "deadlock"
    events: tuple[tuple[int, str], ...]
    shape: str

    def __str__(self) -> str:
        evs = " -> ".join(f"{role}@{uid}" for uid, role in self.events)
        return f"{self.kind}[{self.shape}]({evs})"


@dataclass
class PatternInstance:
    """A pattern observed (or inferred) in one specific execution."""

    signature: PatternSignature
    dynamics: tuple[DynamicInstruction | None, ...]  # None = did not execute
    rank: int  # best type rank among constituent candidates

    def gaps(self) -> list[int | None]:
        """Apparent time gaps between consecutive events (ns), None if
        an event is missing or the order is only partial."""
        out: list[int | None] = []
        for a, b in zip(self.dynamics, self.dynamics[1:]):
            if a is None or b is None:
                out.append(None)
            else:
                out.append(max(0, b.t_lo - a.t_hi))
        return out


@dataclass
class PatternComputation:
    """Step-6 output for one execution."""

    patterns: list[PatternInstance] = field(default_factory=list)
    candidates_explored: int = 0

    def signatures(self) -> set[PatternSignature]:
        return {p.signature for p in self.patterns}

    def summary(self) -> dict[str, int]:
        """Span-attribute-sized digest of one execution's step-6 work."""
        return {
            "patterns": len(self.patterns),
            "distinct_signatures": len(self.signatures()),
            "candidates_explored": self.candidates_explored,
        }


def compute_crash_patterns(
    trace: ProcessedTrace,
    ranking: RankingResult,
    anchor_role: str,
    max_patterns: int = 256,
    anchor: DynamicInstruction | None = None,
    derive_write_anchor: bool = True,
    anchor_objects: frozenset | None = None,
) -> PatternComputation:
    """Order-violation and atomicity patterns anchored at the failure.

    ``anchor_role`` is "R" or "W" — the access kind of the anchor
    instruction (the failing access, or the backing/chain load recovered
    by backward data-flow).  The ranking should be computed over the
    union of executed sets across all gathered traces, so that shapes
    whose later events never ran in the failing execution (the crash
    killed the other thread) still have those events among the
    candidates.

    When the anchor is a read whose corrupt value was produced by the
    anchoring thread's own earlier write (a lost-update shape like RWW),
    the pattern lives around that write, not the read: with
    ``derive_write_anchor`` the computation re-anchors once at the last
    same-thread candidate write before the anchor.
    """
    out = PatternComputation()
    anchors: list[tuple[DynamicInstruction, str, frozenset | None]] = []
    primary = anchor if anchor is not None else trace.anchor
    if primary is None:
        return out
    anchors.append((primary, anchor_role, anchor_objects))
    if derive_write_anchor and anchor_role == "R":
        derived = _derived_write_anchor(trace, ranking, primary, anchor_objects)
        if derived is not None:
            anchors.append(derived)
    for a, role, objs in anchors:
        _patterns_for_anchor(out, trace, ranking, a, role, max_patterns, objs)
    return out


def _derived_write_anchor(
    trace: ProcessedTrace,
    ranking: RankingResult,
    anchor: DynamicInstruction,
    anchor_objects: frozenset | None,
) -> tuple[DynamicInstruction, str, frozenset | None] | None:
    """The anchoring thread's last candidate write before the anchor."""
    best: DynamicInstruction | None = None
    best_objs: frozenset | None = None
    for cand in ranking.candidates:
        if _ROLE.get(cand.access) != "W":
            continue
        if anchor_objects and not (cand.objects & anchor_objects):
            continue
        for d in trace.instances(cand.uid):
            if d.tid != anchor.tid or not d.before(anchor):
                continue
            if best is None or best.before(d):
                best = d
                best_objs = cand.objects or anchor_objects
    if best is None:
        return None
    return (best, "W", best_objs)


def _patterns_for_anchor(
    out: PatternComputation,
    trace: ProcessedTrace,
    ranking: RankingResult,
    anchor: DynamicInstruction,
    anchor_role: str,
    max_patterns: int,
    anchor_objects: frozenset | None = None,
) -> None:
    # Only candidates that may touch the anchor's memory participate:
    # the anchor operand's points-to set is what step 5 seeded.
    if anchor_objects:
        candidates = [
            c for c in ranking.candidates if c.objects & anchor_objects
        ]
    else:
        candidates = list(ranking.candidates)
    # -- pairs: order violations ----------------------------------------
    for cand in candidates:
        if len(out.patterns) >= max_patterns:
            return
        role = _ROLE.get(cand.access)
        if role not in ("R", "W"):
            continue
        if role == "R" and anchor_role == "R":
            continue  # no write involved
        out.candidates_explored += 1
        inst = trace.last_instance_before(cand.uid, anchor)
        inst = _distinct_thread(inst, anchor)
        if inst is not None:
            # X -> anchor order violation (Figure 6a)
            sig = PatternSignature(
                kind=f"{role}{anchor_role}",
                events=((cand.uid, role), (anchor.uid, anchor_role)),
                shape="ab",
            )
            out.patterns.append(PatternInstance(sig, (inst, anchor), cand.rank))
        else:
            executed_after = any(
                anchor.before(d) and d.tid != anchor.tid
                for d in trace.instances(cand.uid)
            )
            never_ran = not trace.instances(cand.uid)
            if executed_after or never_ran:
                # anchor -> X shape; "X never executed" also matches (a
                # fail-stop crash can kill the other thread's access).
                sig = PatternSignature(
                    kind=f"{anchor_role}{role}",
                    events=((anchor.uid, anchor_role), (cand.uid, role)),
                    shape="ab",
                )
                after = _first_instance_after(trace, cand.uid, anchor)
                out.patterns.append(PatternInstance(sig, (anchor, after), cand.rank))
    # -- triples: atomicity violations --------------------------------------
    #
    # The opening and closing events of a single-variable atomicity
    # violation are the *adjacent* accesses of one thread around the
    # intruding access: anything of the same thread in between means the
    # "atomic section" was already over.  Enumeration is therefore
    # structural: the latest same-thread access before the anchor / the
    # earliest one after, never arbitrary pairs.
    role_of = {c.uid: _ROLE.get(c.access) for c in candidates}
    rank_of = {c.uid: c.rank for c in candidates}
    # anchor as the 3rd event: (d1*, d2, anchor) with d1* the anchoring
    # thread's latest candidate access before the anchor
    d1_star = _latest_by_thread_before(trace, candidates, anchor, anchor.tid, anchor)
    if d1_star is not None:
        first_role = role_of.get(d1_star.uid)
        for mid in candidates:
            if len(out.patterns) >= max_patterns:
                return
            mid_role = _ROLE.get(mid.access)
            if mid_role not in ("R", "W") or first_role not in ("R", "W"):
                continue
            kind = f"{first_role}{mid_role}{anchor_role}"
            if kind not in ATOMICITY_KINDS:
                continue
            out.candidates_explored += 1
            mid_inst = trace.last_instance_before(mid.uid, anchor)
            mid_inst = _distinct_thread(mid_inst, anchor)
            if mid_inst is None or not d1_star.before(mid_inst):
                continue
            sig = PatternSignature(
                kind=kind,
                events=(
                    (d1_star.uid, first_role),
                    (mid.uid, mid_role),
                    (anchor.uid, anchor_role),
                ),
                shape="aba",
            )
            out.patterns.append(
                PatternInstance(
                    sig,
                    (d1_star, mid_inst, anchor),
                    min(rank_of.get(d1_star.uid, 2), mid.rank),
                )
            )
    # anchor as the MIDDLE event (e.g. aget-style WRW: the torn read is
    # the failure; the completing write lands — or is killed — after it):
    # for each other thread, its latest access before the anchor opens
    # the pattern and its earliest write after the anchor closes it.
    for tid in sorted(trace.threads):
        if tid == anchor.tid:
            continue
        if len(out.patterns) >= max_patterns:
            return
        d1 = _latest_by_thread_before(trace, candidates, anchor, tid, anchor)
        if d1 is None:
            continue
        first_role = role_of.get(d1.uid)
        if first_role not in ("R", "W"):
            continue
        d3 = _earliest_write_after(trace, candidates, anchor, tid)
        if d3 is not None:
            third_uid, third_role, third_inst = d3
            kinds_closers = [(third_uid, third_role, third_inst)]
        else:
            # The closing write may have been killed by the fail-stop:
            # candidates that never executed in this trace qualify.
            kinds_closers = [
                (c.uid, "W", None)
                for c in candidates
                if _ROLE.get(c.access) == "W" and not trace.instances(c.uid)
            ]
        for third_uid, third_role, third_inst in kinds_closers:
            kind = f"{first_role}{anchor_role}{third_role}"
            if kind not in ATOMICITY_KINDS:
                continue
            out.candidates_explored += 1
            sig = PatternSignature(
                kind=kind,
                events=(
                    (d1.uid, first_role),
                    (anchor.uid, anchor_role),
                    (third_uid, third_role),
                ),
                shape="aba",
            )
            out.patterns.append(
                PatternInstance(
                    sig,
                    (d1, anchor, third_inst),
                    min(rank_of.get(d1.uid, 2), rank_of.get(third_uid, 2)),
                )
            )


def _latest_by_thread_before(
    trace: ProcessedTrace,
    candidates: list[RankedCandidate],
    anchor: DynamicInstruction,
    tid: int,
    exclude: DynamicInstruction,
) -> DynamicInstruction | None:
    """Thread ``tid``'s latest candidate access strictly before the anchor."""
    best: DynamicInstruction | None = None
    for cand in candidates:
        if _ROLE.get(cand.access) not in ("R", "W"):
            continue
        for d in trace.instances(cand.uid):
            if d.tid != tid or not d.before(anchor):
                continue
            if d.uid == exclude.uid and d.seq == exclude.seq and d.tid == exclude.tid:
                continue
            if best is None or best.before(d):
                best = d
    return best


def _earliest_write_after(
    trace: ProcessedTrace,
    candidates: list[RankedCandidate],
    anchor: DynamicInstruction,
    tid: int,
) -> tuple[int, str, DynamicInstruction] | None:
    best: DynamicInstruction | None = None
    for cand in candidates:
        if _ROLE.get(cand.access) != "W":
            continue
        for d in trace.instances(cand.uid):
            if d.tid != tid or not anchor.before(d):
                continue
            if best is None or d.before(best):
                best = d
    if best is None:
        return None
    return (best.uid, "W", best)


def _first_after_in_thread(
    trace: ProcessedTrace, uid: int, anchor: DynamicInstruction, tid: int
) -> DynamicInstruction | None:
    best: DynamicInstruction | None = None
    for d in trace.instances(uid):
        if d.tid != tid or not anchor.before(d):
            continue
        if best is None or d.before(best):
            best = d
    return best


def _distinct_thread(
    inst: DynamicInstruction | None, anchor: DynamicInstruction
) -> DynamicInstruction | None:
    return inst if inst is not None and inst.tid != anchor.tid else None


def _first_instance_after(
    trace: ProcessedTrace, uid: int, anchor: DynamicInstruction
) -> DynamicInstruction | None:
    best: DynamicInstruction | None = None
    for d in trace.instances(uid):
        if anchor.before(d) and d.tid != anchor.tid and (
            best is None or d.before(best)
        ):
            best = d
    return best


def _same_thread_before(
    trace: ProcessedTrace,
    uid: int,
    anchor: DynamicInstruction,
    mid: DynamicInstruction,
) -> DynamicInstruction | None:
    """Latest instance of ``uid`` in the anchor's thread, before ``mid``."""
    best: DynamicInstruction | None = None
    for d in trace.instances(uid):
        if d.tid != anchor.tid:
            continue
        if not d.before(mid):
            continue
        if d.uid == anchor.uid and d.seq == anchor.seq:
            continue
        if best is None or best.before(d):
            best = d
    return best


# -- deadlocks ---------------------------------------------------------------


@dataclass(frozen=True)
class LockEventPair:
    """One thread's contribution to a deadlock: hold then attempt."""

    hold_uid: int
    attempt_uid: int


def compute_deadlock_patterns(
    trace: ProcessedTrace,
    ranking: RankingResult,
    cycle_uids: list[tuple[int, int]] | None = None,
    max_patterns: int = 64,
) -> PatternComputation:
    """Deadlock patterns: pairs of (hold, attempt) lock sequences that
    interleave dangerously (Figure 1a).

    ``cycle_uids`` — (tid, blocked-lock uid) pairs from the hang
    detector's report, available for the failing execution.  For
    successful executions (no report), dangerous interleavings are
    searched among the ranked lock candidates directly.
    """
    out = PatternComputation()
    lock_cands = [c for c in ranking.candidates if c.access == "lock"]
    lock_uids = {c.uid for c in lock_cands}
    unlock_uids = {c.uid for c in ranking.candidates if c.access == "unlock"}
    rank_of = {c.uid: c.rank for c in lock_cands}
    out.candidates_explored = len(lock_cands)
    by_thread: dict[int, list[DynamicInstruction]] = {}
    for uid in lock_uids | unlock_uids:
        for d in trace.instances(uid):
            by_thread.setdefault(d.tid, []).append(d)
    for instances in by_thread.values():
        instances.sort(key=lambda d: d.seq)
    # A (hold, attempt) pair is one critical-section episode: a later
    # acquisition while the first is still held.  Any unlock between
    # them ends the episode, which kills cross-iteration false pairs.
    episodes: dict[int, list[tuple[DynamicInstruction, DynamicInstruction]]] = {}
    for tid, instances in by_thread.items():
        pairs: list[tuple[DynamicInstruction, DynamicInstruction]] = []
        for i, h in enumerate(instances):
            if h.uid not in lock_uids:
                continue
            for a in instances[i + 1 :]:
                if a.uid in unlock_uids:
                    break  # episode over
                if a.uid in lock_uids:
                    pairs.append((h, a))
                    break  # nearest nested acquisition only
        episodes[tid] = pairs
    # Failing execution: the hang detector already proved the circular
    # wait — the pattern is built from the reported cycle directly (each
    # thread's blocked attempt paired with its episode's hold), without
    # needing the timing intervals to re-establish the overlap.
    if cycle_uids:
        pairs = []
        for tid, attempt_uid in cycle_uids:
            match = None
            for h, a in episodes.get(tid, ()):  # the attempt closes an episode
                if a.uid == attempt_uid:
                    match = (h, a)
            if match is None:
                break
            pairs.append(match)
        if len(pairs) == len(cycle_uids) >= 2:
            (h1, a1), (h2, a2) = pairs[0], pairs[1]
            pair1 = LockEventPair(h1.uid, a1.uid)
            pair2 = LockEventPair(h2.uid, a2.uid)
            first, second = sorted(
                [(pair1, h1, a1), (pair2, h2, a2)],
                key=lambda p: (p[0].hold_uid, p[0].attempt_uid),
            )
            sig = PatternSignature(
                kind="deadlock",
                events=(
                    (first[0].hold_uid, "L"),
                    (second[0].hold_uid, "L"),
                    (first[0].attempt_uid, "L"),
                    (second[0].attempt_uid, "L"),
                ),
                shape="abab",
            )
            rank = min(rank_of.get(h1.uid, 2), rank_of.get(h2.uid, 2))
            out.patterns.append(
                PatternInstance(
                    sig, (first[1], second[1], first[2], second[2]), rank
                )
            )
    tids = sorted(episodes)
    for i, t1 in enumerate(tids):
        for t2 in tids[i + 1 :]:
            for h1, a1 in episodes[t1]:
                    for h2, a2 in episodes[t2]:
                            if len(out.patterns) >= max_patterns:
                                return out
                            if not (h1.before(a2) and h2.before(a1)):
                                continue
                            # Each thread held its first lock before the
                            # other attempted it: the circular-wait shape.
                            pair1 = LockEventPair(h1.uid, a1.uid)
                            pair2 = LockEventPair(h2.uid, a2.uid)
                            first, second = sorted(
                                [(pair1, h1, a1), (pair2, h2, a2)],
                                key=lambda p: (p[0].hold_uid, p[0].attempt_uid),
                            )
                            sig = PatternSignature(
                                kind="deadlock",
                                events=(
                                    (first[0].hold_uid, "L"),
                                    (second[0].hold_uid, "L"),
                                    (first[0].attempt_uid, "L"),
                                    (second[0].attempt_uid, "L"),
                                ),
                                shape="abab",
                            )
                            rank = min(
                                rank_of.get(h1.uid, 2),
                                rank_of.get(h2.uid, 2),
                            )
                            out.patterns.append(
                                PatternInstance(
                                    sig, (first[1], second[1], first[2], second[2]), rank
                                )
                            )
    return out


def synthesize_blocked_attempts(
    trace: ProcessedTrace,
    module: Module,
    cycle: list[tuple[int, int, int]],
) -> None:
    """Inject the blocked lock attempts of a deadlock into the trace.

    ``cycle`` holds (tid, instr uid, block time) from the failure
    report.  Blocked acquisitions never complete, so the decoder stops
    right before them; their context-switch timestamps give them exact
    dynamic instances, which is what lets pattern computation order the
    attempts (the dT of Table 1).
    """
    for tid, uid, since in cycle:
        already = any(d.tid == tid and d.uid == uid for d in trace.instances(uid))
        if already:
            continue
        seq = 1 + max((d.seq for d in trace.dynamic if d.tid == tid), default=-1)
        inst = DynamicInstruction(uid, tid, seq, since, since)
        # add_instance registers the blocked thread (its own trace may be
        # desynced) and the re-sort keeps instances() in (t_lo, seq) order.
        trace.add_instance(inst)
        trace.by_uid[uid].sort(key=lambda d: (d.t_lo, d.seq))
