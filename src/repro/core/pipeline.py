"""The Lazy Diagnosis pipeline: steps 2-7 of Figure 2, orchestrated.

``LazyDiagnosis`` is the server-side analysis.  Input: the failure
report plus the trace snapshots of the failing execution and of up to
10x as many successful executions collected at the failure location.
Output: a :class:`DiagnosisReport` naming the root-cause pattern — the
cross-thread order of target events — with its F1 evidence.

Every stage can be disabled through :class:`PipelineConfig`; the
Figure 7 bench uses that to measure each stage's contribution.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.core.checkpoints import checkpoint
from repro.core.patterns import (
    PatternComputation,
    compute_crash_patterns,
    compute_deadlock_patterns,
    synthesize_blocked_attempts,
)
from repro.core.points_to import PointsToAnalysis
from repro.core.report import DiagnosisReport, StageStats, describe_event
from repro.core.statistics import (
    ExecutionObservation,
    cap_successful,
    observation_breakdown,
    observe,
    score_patterns,
)
from repro.core.trace_processing import (
    ProcessedTrace,
    attach_anchor,
    process_snapshot,
)
from repro.core.type_ranking import RankedCandidate, RankingResult, rank_candidates
from repro.errors import DiagnosisError
from repro.ir.instructions import (
    Assert,
    Cast,
    FieldAddr,
    Free,
    IndexAddr,
    Instruction,
    Load,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Value
from repro.sim.failures import CrashReport, DeadlockReport, FailureReport


@dataclass
class PipelineConfig:
    scope_restriction: bool = True
    type_ranking: bool = True
    pattern_computation: bool = True
    statistical_diagnosis: bool = True
    algorithm: str = "andersen"  # or "steensgaard" (ablation)
    mtc_period_ns: int = 4096
    max_patterns: int = 256


@dataclass
class TraceSample:
    """One execution's evidence as it arrives at the server."""

    label: str
    failing: bool
    buffers: dict[int, bytes]  # tid -> snapshot bytes
    positions: dict[int, int] = field(default_factory=dict)
    failure: FailureReport | None = None
    snapshot_time: int = 0


class LazyDiagnosis:
    def __init__(
        self,
        module: Module,
        config: PipelineConfig | None = None,
        analysis_cache=None,
        trace_cache=None,
        obs=None,
    ):
        self.module = module
        self.config = config or PipelineConfig()
        self.analysis_cache = analysis_cache  # AnalysisCache | None
        self.trace_cache = trace_cache  # DecodedTraceCache | None
        self.obs = obs  # Observability | None
        self.last_analysis: PointsToAnalysis | None = None
        self.last_ranking: RankingResult | None = None
        self.last_traces: list[ProcessedTrace] = []
        self.last_root_span = None  # Span | None (when tracing is on)
        # per-diagnose() observability: cache hit/miss counts and wall
        # time per pipeline stage, consumed by the fleet metrics.
        self.last_cache_events: dict[str, int] = {}
        self.last_stage_seconds: dict[str, float] = {}

    # -- public API -----------------------------------------------------

    def diagnose(
        self, failing: list[TraceSample], successes: list[TraceSample]
    ) -> DiagnosisReport:
        if not failing:
            raise DiagnosisError("at least one failing trace is required")
        report_failure = failing[0].failure
        if report_failure is None:
            raise DiagnosisError("failing sample carries no failure report")
        from repro.obs import render_flight_recorder, resolve_obs

        obs = resolve_obs(self.obs)
        with obs.profiler() as prof:
            with obs.tracer.span(
                "diagnose",
                failure_kind=report_failure.kind,
                failing_uid=report_failure.failing_uid,
                failing_traces=len(failing),
                success_traces=len(successes),
            ) as root:
                report = self._diagnose_observed(
                    failing, successes, report_failure, obs
                )
                root.set(bug_kind=report.bug_kind, diagnosed=report.diagnosed)
        self.last_root_span = root if obs.enabled else None
        if obs.enabled:
            recorder = render_flight_recorder(obs.tracer, root)
            if prof is not None:
                root.set(**prof.summary())
                recorder += "\n" + prof.render()
            report.flight_recorder = recorder
        return report

    def _diagnose_observed(
        self,
        failing: list[TraceSample],
        successes: list[TraceSample],
        report_failure: FailureReport,
        obs,
    ) -> DiagnosisReport:
        started = _time.perf_counter()
        cfg = self.config
        tracer = obs.tracer
        self.last_cache_events = {
            "analysis_cache_hits": 0,
            "analysis_cache_misses": 0,
            "trace_cache_hits": 0,
            "trace_cache_misses": 0,
        }
        stages = self.last_stage_seconds = {}

        def close_stage(name: str, stage_start: float) -> None:
            stages[name] = _time.perf_counter() - stage_start
            obs.registry.observe(f"stage_{name}", stages[name])

        # operand recovery happens once per diagnosis — every sample's
        # trace processing reuses the same anchors.
        operands, anchors = self._recover_operands(report_failure)
        # steps 2+3: trace processing per execution
        with tracer.span(
            "trace_processing", samples=len(failing) + len(successes)
        ) as span:
            traces = [
                self._process(s, report_failure, anchors, tracer)
                for s in failing + successes
            ]
            self.last_traces = traces
            span.set(anchors=len(anchors))
        close_stage("trace_processing", started)
        executed: set[int] = set()
        for t in traces:
            executed |= t.executed_uids
        if report_failure.kind == "deadlock" and isinstance(
            report_failure, DeadlockReport
        ):
            for entry in report_failure.cycle:
                executed.add(entry.instr_uid)
        scope = executed if cfg.scope_restriction else None
        # step 4: hybrid points-to over the (restricted) scope
        stage_start = _time.perf_counter()
        with tracer.span(
            "points_to",
            scope="hybrid" if scope is not None else "whole-program",
            algorithm=cfg.algorithm,
            executed_instructions=len(executed),
        ) as span:
            analysis = PointsToAnalysis(
                self.module, scope, cfg.algorithm,
                cache=self.analysis_cache, obs=obs,
            ).run()
            span.set(constraints=analysis.stats.constraints)
        self.last_analysis = analysis
        checkpoint(
            "pipeline.points_to",
            analysis=analysis,
            module=self.module,
            executed=executed if scope is not None else None,
        )
        if self.analysis_cache is not None:
            outcome = analysis.stats.extra.get("cache")
            if outcome == "hit":
                self.last_cache_events["analysis_cache_hits"] += 1
            elif outcome == "miss":
                self.last_cache_events["analysis_cache_misses"] += 1
        close_stage("points_to", stage_start)
        # step 5: type-based ranking
        stage_start = _time.perf_counter()
        is_deadlock = report_failure.kind == "deadlock"
        with tracer.span("type_ranking", enabled=cfg.type_ranking) as span:
            ranking = rank_candidates(
                self.module,
                analysis,
                executed,
                operands,
                report_failure.failing_uid,
                include_locks=is_deadlock,
            )
            if not cfg.type_ranking:
                ranking = _flatten_ranks(ranking)
            span.set(
                candidates=len(ranking.candidates),
                rank1_candidates=len(ranking.rank1()),
            )
        self.last_ranking = ranking
        close_stage("type_ranking", stage_start)
        # step 6: per-execution bug pattern computation
        stage_start = _time.perf_counter()
        observations: list[ExecutionObservation] = []
        computations: list[PatternComputation] = []
        anchor_role = anchors[0][1] if anchors else "R"
        anchor_info = {
            uid: (role, analysis.points_to(operand))
            for uid, role, operand in anchors
        }
        with tracer.span(
            "pattern_computation", enabled=cfg.pattern_computation
        ) as span:
            if cfg.pattern_computation:
                for sample, trace in zip(failing + successes, traces):
                    comp = self._compute_patterns(
                        sample, trace, ranking, anchor_info, report_failure
                    )
                    computations.append(comp)
                    observations.append(
                        observe(sample.label, sample.failing, comp)
                    )
            if tracer.enabled:
                totals = PatternComputation(
                    patterns=[p for c in computations for p in c.patterns],
                    candidates_explored=sum(
                        c.candidates_explored for c in computations
                    ),
                )
                span.set(**totals.summary())
        close_stage("pattern_computation", stage_start)
        # step 7: statistical diagnosis
        stage_start = _time.perf_counter()
        with tracer.span(
            "statistical_diagnosis", enabled=cfg.statistical_diagnosis
        ) as span:
            if cfg.statistical_diagnosis and observations:
                capped = cap_successful(observations)
                scored = score_patterns(capped)
            elif observations:
                capped = observations[: len(failing)]
                scored = score_patterns(capped)
            else:
                capped = []
                scored = []
            if tracer.enabled:
                span.set(scored=len(scored), **observation_breakdown(capped))
        close_stage("statistical_diagnosis", stage_start)
        checkpoint("pipeline.scored", observations=capped, scored=scored)
        obs.registry.merge_counters(self.last_cache_events)
        elapsed = _time.perf_counter() - started
        report = self._build_report(
            report_failure, scored, traces, ranking, computations, elapsed, anchor_role
        )
        checkpoint("pipeline.report", report=report)
        return report

    # -- stages ---------------------------------------------------------------

    def _process(
        self,
        sample: TraceSample,
        failure: FailureReport,
        anchors: list[tuple[int, str, Value]],
        tracer=None,
    ) -> ProcessedTrace:
        thread_traces = {
            tid: self._decode(data, tid, tracer)
            for tid, data in sample.buffers.items()
        }
        trace = process_snapshot(sample.label, thread_traces, sample.failing)
        if (
            sample.failing
            and isinstance(failure, DeadlockReport)
            and failure.cycle
        ):
            synthesize_blocked_attempts(
                trace,
                self.module,
                [(e.tid, e.instr_uid, e.since) for e in failure.cycle],
            )
        if not isinstance(failure, DeadlockReport):
            if sample.failing:
                tid, time = failure.failing_tid, failure.time
            else:
                tid = self._stop_thread(sample, failure.failing_uid)
                time = sample.snapshot_time
                if tid is None:
                    # A fallback (predecessor-PC) snapshot: no thread was
                    # at the failure location, so there is no anchor to
                    # attach — the trace honestly shows no pattern.
                    return trace
            for uid, _role, _operand in anchors:
                attach_anchor(
                    trace, uid, tid, time, prefer_decoded=uid != failure.failing_uid
                )
        elif not sample.failing:
            tid = self._stop_thread(sample, failure.failing_uid)
            if tid is not None:
                attach_anchor(
                    trace,
                    failure.failing_uid,
                    tid,
                    sample.snapshot_time,
                    prefer_decoded=False,
                )
        checkpoint("pipeline.trace", trace=trace, sample=sample)
        return trace

    def _decode(self, data: bytes, tid: int, tracer=None):
        """Decode one PT buffer, via the shared trace cache when present."""
        if self.trace_cache is not None:
            return self.trace_cache.get_or_decode(
                self.module,
                data,
                tid,
                self.config.mtc_period_ns,
                self.last_cache_events,
                tracer=tracer,
            )
        from repro.pt.decoder import decode_thread_trace

        return decode_thread_trace(self.module, data, tid, self.config.mtc_period_ns)

    def _stop_thread(
        self, sample: TraceSample, breakpoint_uid: int
    ) -> int | None:
        # the thread whose stop position is the breakpoint PC
        for tid, uid in sample.positions.items():
            if uid and uid == breakpoint_uid:
                return tid
        return None

    def _backing_load(self, instr: Assert) -> Load | None:
        """Mini backward data-flow: the load feeding an assert condition.

        Mirrors RETracer-style operand recovery: the failing value is
        traced back to the memory read that produced it.
        """
        seen: set[int] = set()
        work: list[Value] = [instr.cond]
        while work:
            v = work.pop()
            if id(v) in seen:
                continue
            seen.add(id(v))
            if isinstance(v, Load):
                return v
            if isinstance(v, Instruction):
                work.extend(v.operands)
        return None

    def _recover_operands(
        self, failure: FailureReport
    ) -> tuple[list[Value], list[tuple[int, str, Value]]]:
        """RETracer-style operand recovery.

        Returns the operand values that seed the points-to queries, and
        the anchors — (uid, access role, operand) triples — pattern
        computation runs from.  For a crash the corrupt pointer is walked backward
        through address arithmetic to the load that produced it: that
        load is a second anchor (the stale read of e.g. a published
        pointer *is* the target event of read-before-init bugs).  For an
        assert the backing load of the checked value is the anchor.
        """
        instr = self.module.instruction(failure.failing_uid)
        if isinstance(failure, DeadlockReport):
            operands: list[Value] = []
            for entry in failure.cycle:
                lock_instr = self.module.instruction(entry.instr_uid)
                pointer = lock_instr.pointer_operand()
                if pointer is not None:
                    operands.append(pointer)
            return operands, []
        if isinstance(instr, Assert):
            load = self._backing_load(instr)
            if load is not None:
                return [load.pointer], [(load.uid, "R", load.pointer)]
            return [], []
        pointer = instr.pointer_operand()
        if pointer is None:
            return [], []
        role = "W" if isinstance(instr, (Store, Free)) else "R"
        operands = [pointer]
        anchors = [(instr.uid, role, pointer)]
        chain_load = self._chain_load(pointer)
        if chain_load is not None:
            operands.append(chain_load.pointer)
            anchors.append((chain_load.uid, "R", chain_load.pointer))
        return operands, anchors

    def _chain_load(self, pointer: Value) -> Load | None:
        """Walk a pointer's def chain through address arithmetic to the
        load that produced it (the provenance of the corrupt value)."""
        v = pointer
        for _ in range(16):
            if isinstance(v, Load):
                return v
            if isinstance(v, (FieldAddr, IndexAddr, Cast)):
                v = v.operands[0]
                continue
            return None
        return None

    def _compute_patterns(
        self,
        sample: TraceSample,
        trace: ProcessedTrace,
        ranking: RankingResult,
        anchor_info: dict[int, tuple[str, frozenset]],
        failure: FailureReport,
    ) -> PatternComputation:
        if failure.kind == "deadlock":
            cycle = None
            if sample.failing and isinstance(failure, DeadlockReport):
                cycle = [(e.tid, e.instr_uid) for e in failure.cycle]
            return compute_deadlock_patterns(
                trace, ranking, cycle, self.config.max_patterns
            )
        merged = PatternComputation()
        for anchor_inst in trace.anchors:
            role, objs = anchor_info.get(anchor_inst.uid, ("R", frozenset()))
            comp = compute_crash_patterns(
                trace,
                ranking,
                role,
                self.config.max_patterns,
                anchor=anchor_inst,
                anchor_objects=objs,
            )
            merged.patterns.extend(comp.patterns)
            merged.candidates_explored += comp.candidates_explored
        return merged

    # -- report assembly ---------------------------------------------------------

    def _build_report(
        self,
        failure: FailureReport,
        scored,
        traces: list[ProcessedTrace],
        ranking: RankingResult,
        computations: list[PatternComputation],
        elapsed: float,
        anchor_role: str,
    ) -> DiagnosisReport:
        # A root cause must actually correlate with failure: a top score
        # of 0 means no pattern discriminated failing from successful
        # runs (e.g. the events interleave too finely for the trace's
        # timing to order them — §7).
        root = scored[0] if scored and scored[0].f1 > 0 else None
        bug_kind = _bug_kind(failure, root)
        report = DiagnosisReport(
            bug_kind=bug_kind,
            failing_uid=failure.failing_uid,
            root_cause=root,
            ranked_patterns=scored,
        )
        if root is None:
            # §7 fallback: report the likely-involved events unordered.
            role_by_access = {"read": "R", "write": "W", "lock": "L", "unlock": "U"}
            for cand in ranking.candidates:
                if len(report.unordered_candidates) >= 16:
                    break
                report.unordered_candidates.append(
                    describe_event(
                        self.module,
                        cand.uid,
                        role_by_access.get(cand.access, "?"),
                        0,
                    )
                )
        if root is not None:
            slots = {"a": 0, "b": 1}
            for (uid, role), slot_char in zip(
                root.signature.events, root.signature.shape
            ):
                report.target_events.append(
                    describe_event(self.module, uid, role, slots.get(slot_char, 0))
                )
        from repro.core.cache import module_index

        st = report.stage_stats
        st.program_instructions = module_index(self.module).instruction_count
        executed: set[int] = set()
        for t in traces:
            executed |= t.executed_uids
        st.executed_instructions = len(executed)
        st.alias_candidates = len(ranking.candidates)
        st.rank1_candidates = len(ranking.rank1())
        all_sigs = set()
        for comp in computations:
            all_sigs |= comp.signatures()
        st.patterns_generated = len(all_sigs)
        if scored:
            top = scored[0]
            # Count patterns still tied after the full tie-break key
            # (F1, simplicity, type rank) — the number a developer would
            # actually have to inspect manually.
            st.patterns_top_f1 = sum(
                1
                for s in scored
                if s.f1 == top.f1
                and len(s.signature.events) == len(top.signature.events)
                and s.rank == top.rank
            )
        st.analysis_seconds = elapsed
        st.candidates_explored = sum(c.candidates_explored for c in computations)
        gap = max((t.max_timing_gap for t in traces), default=0)
        report.notes.append(
            f"max gap between timing packets (incl. blocked/off-CPU spans): "
            f"{gap / 1000:.1f} us"
        )
        if not report.unambiguous and root is not None:
            report.notes.append(
                "multiple patterns tie at the top F1 score; manual inspection needed"
            )
        return report


def _flatten_ranks(ranking: RankingResult) -> RankingResult:
    """Ablation: disable type-based ranking (everything rank 2)."""
    flat = RankingResult(ranking.failing_uid, ranking.operand_type)
    flat.considered = ranking.considered
    flat.candidates = [
        RankedCandidate(c.instr, 2, c.access, c.objects) for c in ranking.candidates
    ]
    return flat


def _bug_kind(failure: FailureReport, root) -> str:
    if failure.kind == "deadlock":
        return "deadlock"
    if root is None:
        return "undiagnosed"
    kind = root.signature.kind
    if kind in ("WR", "RW", "WW"):
        return "order-violation"
    if kind in ("RWR", "WWR", "RWW", "WRW"):
        return "atomicity-violation"
    if kind == "deadlock":
        return "deadlock"
    return kind
