"""Statistical diagnosis: step 7 of Lazy Diagnosis (§4.5).

Scores every pattern signature by its F1 across the gathered
executions: precision = fraction of executions exhibiting the pattern
that failed; recall = fraction of failing executions that exhibit it.
A pattern present in every failing execution and no successful one gets
F1 = 1.0 and is reported as the root cause.

Unlike cooperative-bug-isolation work the paper cites, there is no
sampling here: every failing execution contributes (Snorlax diagnoses
after a *single* failure), and successful executions are capped at 10x
the failing ones — the paper's empirically determined bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.checkpoints import checkpoint
from repro.core.patterns import PatternInstance, PatternSignature

SUCCESS_TRACE_CAP_FACTOR = 10
"""Max successful traces per failing trace (paper §5)."""


@dataclass
class ExecutionObservation:
    """One execution's pattern evidence."""

    label: str
    failing: bool
    signatures: set[PatternSignature] = field(default_factory=set)
    instances: dict[PatternSignature, PatternInstance] = field(default_factory=dict)


@dataclass
class ScoredPattern:
    signature: PatternSignature
    precision: float
    recall: float
    f1: float
    failing_support: int  # failing executions exhibiting the pattern
    success_support: int
    rank: int  # best type rank seen for this signature
    example: PatternInstance | None = None

    def __str__(self) -> str:
        return (
            f"{self.signature}  F1={self.f1:.3f} "
            f"(P={self.precision:.2f}, R={self.recall:.2f}, "
            f"fail {self.failing_support}, ok {self.success_support})"
        )


def observe(
    label: str, failing: bool, computation
) -> ExecutionObservation:
    obs = ExecutionObservation(label, failing)
    for inst in computation.patterns:
        obs.signatures.add(inst.signature)
        prev = obs.instances.get(inst.signature)
        if prev is None or inst.rank < prev.rank:
            obs.instances[inst.signature] = inst
    return obs


def observation_breakdown(
    observations: list[ExecutionObservation],
) -> dict[str, int]:
    """Span-attribute-sized digest of the step-7 evidence base."""
    failing = sum(1 for o in observations if o.failing)
    return {
        "observations": len(observations),
        "failing_observations": failing,
        "success_observations": len(observations) - failing,
        "distinct_signatures": len(
            {sig for o in observations for sig in o.signatures}
        ),
    }


def score_patterns(observations: list[ExecutionObservation]) -> list[ScoredPattern]:
    """F1-rank all signatures seen in any observation.

    Ties break toward better (lower) type rank — that is how type-based
    ranking reduces diagnosis latency without discarding candidates —
    then toward higher failing support.
    """
    failing_total = sum(1 for o in observations if o.failing)
    if failing_total == 0:
        return []
    all_sigs: set[PatternSignature] = set()
    for o in observations:
        all_sigs |= o.signatures
    scored: list[ScoredPattern] = []
    for sig in all_sigs:
        fail_support = sum(1 for o in observations if o.failing and sig in o.signatures)
        ok_support = sum(
            1 for o in observations if not o.failing and sig in o.signatures
        )
        present_total = fail_support + ok_support
        precision = fail_support / present_total if present_total else 0.0
        recall = fail_support / failing_total
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        # best_rank is the true minimum over every instance of this
        # signature; the example prefers failing runs (they carry the
        # real gaps), then better type rank, then an instance whose
        # dynamics are actually populated.
        witnessed = [
            (o, o.instances[sig]) for o in observations if sig in o.instances
        ]
        best_rank = min((inst.rank for _, inst in witnessed), default=0)
        example: PatternInstance | None = None
        if witnessed:
            _, example = min(
                witnessed,
                key=lambda pair: (
                    not pair[0].failing,
                    pair[1].rank,
                    not any(d is not None for d in pair[1].dynamics),
                ),
            )
        scored.append(
            ScoredPattern(
                sig, precision, recall, f1, fail_support, ok_support, best_rank, example
            )
        )
    # Ties break toward: (a) fewer events — a pair that explains the
    # failure beats a triple that merely embeds it (the UAF read has a
    # previous-iteration read before every free, making an RWR triple
    # exactly as correlated as the true WR pair); then (b) better type
    # rank; then (c) higher failing support.
    scored.sort(
        key=lambda s: (
            -s.f1,
            len(s.signature.events),
            s.rank,
            -s.failing_support,
            str(s.signature),
        )
    )
    checkpoint(
        "statistics.score_patterns", observations=observations, scored=scored
    )
    return scored


@dataclass
class StabilityStopRule:
    """Adaptive stopping for step-8 collection: stop once the evidence is
    statistically sufficient instead of at a fixed trace count.

    The paper collects a fixed ~10x successful traces per failure; its own
    F1 framing suggests a lazier rule: if the top-ranked pattern signature
    has not changed across ``window`` consecutive successful samples, more
    samples are overwhelmingly likely to re-rank nothing — stop.  The
    fixed ``success_traces_wanted`` count stays as the cap (and as the
    fallback mode when the rule is disabled), so adaptive collection can
    only ever gather *fewer* traces than the fixed policy, never more.

    ``evaluate`` maps the successful samples gathered so far to the
    current top signature (or ``None`` when no diagnosis emerges yet);
    it must be a pure function of the sample prefix, which makes the stop
    decision — and therefore the collected evidence — identical across
    serial, thread-parallel, and batched transports.
    """

    evaluate: Callable[[list], object]
    window: int = 3
    min_samples: int = 4
    satisfied: bool = False
    evaluations: int = 0
    _top: object = None
    _streak: int = 0

    def observe(self, samples: list) -> None:
        """Feed the successful-sample prefix after each consumed sample."""
        if self.satisfied:
            return
        # evaluations earlier than this can never complete a streak that
        # also satisfies the min-samples floor, so skip their cost
        first_useful = max(1, self.min_samples - self.window + 1)
        if len(samples) < first_useful:
            return
        top = self.evaluate(list(samples))
        self.evaluations += 1
        if top is not None and top == self._top:
            self._streak += 1
        else:
            self._streak = 1 if top is not None else 0
        self._top = top
        if (
            top is not None
            and self._streak >= self.window
            and len(samples) >= self.min_samples
        ):
            self.satisfied = True

    def lookahead(self) -> int:
        """How many more stable samples could satisfy the rule — the
        useful speculation depth for a batched transport."""
        if self.satisfied:
            return 0
        return max(1, self.window - self._streak)


def cap_successful(observations: list[ExecutionObservation]) -> list[ExecutionObservation]:
    """Apply the paper's 10x cap on successful executions."""
    failing = [o for o in observations if o.failing]
    ok = [o for o in observations if not o.failing]
    cap = SUCCESS_TRACE_CAP_FACTOR * max(1, len(failing))
    return failing + ok[:cap]
