"""Hybrid points-to analysis: step 4 of Lazy Diagnosis.

"Hybrid" means the interprocedural inclusion-based analysis is *lazily
bound* to dynamic information: it runs only when a trace arrives, and
its scope is restricted to the instructions that trace shows executed
(§4.2).  Scope restriction is what turns an unscalable whole-program
analysis into one whose cost is a function of the trace size, not the
program size — the source of Table 4's speedups.

The analysis is flow-insensitive on purpose: in a multithreaded program
instructions from different threads interleave arbitrarily, so program
order proves nothing about pointer contents; flow insensitivity models
that conservatively.  Flow sensitivity is reintroduced *partially*, only
across target instructions, by bug pattern computation (§4.4) using the
trace's timing information.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.core.andersen import (
    AndersenResult,
    solve as andersen_solve,
    solve_naive as andersen_solve_naive,
)
from repro.core.cache import AnalysisCache, CachedAnalysis, module_index
from repro.core.constraints import (
    AbstractObject,
    ConstraintSystem,
    generate_constraints,
)
from repro.core.steensgaard import SteensgaardResult, solve as steensgaard_solve
from repro.ir.module import Module

_ALGORITHMS = ("andersen", "andersen-naive", "steensgaard")


@dataclass
class PointsToStats:
    scope: str  # "hybrid" | "whole-program"
    algorithm: str  # "andersen" | "steensgaard"
    instructions_total: int = 0
    instructions_analyzed: int = 0
    constraints: int = 0
    analysis_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def scope_reduction(self) -> float:
        """How many times fewer instructions than the whole program."""
        if self.instructions_analyzed == 0:
            return float(self.instructions_total) if self.instructions_total else 1.0
        return self.instructions_total / self.instructions_analyzed


class PointsToAnalysis:
    """One configured analysis over a module.

    ``executed_uids=None`` gives the eager whole-program analysis (the
    Table 4 baseline); passing the trace's executed set gives the lazy,
    scope-restricted hybrid analysis.
    """

    def __init__(
        self,
        module: Module,
        executed_uids: set[int] | None = None,
        algorithm: str = "andersen",
        cache: AnalysisCache | None = None,
        obs=None,
    ):
        if algorithm not in _ALGORITHMS:
            raise ValueError(f"unknown points-to algorithm {algorithm!r}")
        self.module = module
        self.executed_uids = executed_uids
        self.algorithm = algorithm
        self.cache = cache
        self.obs = obs  # Observability | None
        self.result: AndersenResult | SteensgaardResult | None = None
        self.system: ConstraintSystem | None = None
        self.stats = PointsToStats(
            scope="whole-program" if executed_uids is None else "hybrid",
            algorithm=algorithm,
        )

    def run(self) -> "PointsToAnalysis":
        from repro.obs import resolve_obs

        obs = resolve_obs(self.obs)
        start = _time.perf_counter()
        key = None
        if self.cache is not None:
            key = AnalysisCache.key_for(
                self.module, self.executed_uids, self.algorithm
            )
            with obs.tracer.span("analysis_cache_lookup") as span:
                # a store-backed cache hydrates from disk on a memory
                # miss, which needs the live module to rebind the
                # fixpoint — prefer its richer hook when it has one
                get_for_module = getattr(self.cache, "get_for_module", None)
                if get_for_module is not None:
                    cached = get_for_module(key, self.module, self.executed_uids)
                else:
                    cached = self.cache.get(key)
                span.set(outcome="hit" if cached is not None else "miss")
            if cached is not None:
                assert isinstance(cached, CachedAnalysis)
                self.system = cached.system  # type: ignore[assignment]
                self.result = cached.result  # type: ignore[assignment]
                self.stats.extra["cache"] = "hit"
                self._finish_stats(start)
                return self
            self.stats.extra["cache"] = "miss"
        seed = None
        if self.cache is not None and self.algorithm == "andersen":
            # incremental seeding: a cached solve of a *sub-scope* of
            # this trace's executed set replays as the starting point,
            # so the worklist only derives the facts the wider scope
            # adds.  Store-backed caches may not expose the scan.
            seed_candidate = getattr(self.cache, "seed_candidate", None)
            if seed_candidate is not None:
                cached_sub = seed_candidate(
                    self.module, self.executed_uids, self.algorithm
                )
                if cached_sub is not None:
                    seed = cached_sub.result
                    self.stats.extra["seeded"] = True
        with obs.tracer.span("generate_constraints", scope=self.stats.scope) as span:
            self.system = generate_constraints(self.module, self.executed_uids)
            span.set(instructions=self.system.instructions_analyzed)
        with obs.tracer.span("solve", algorithm=self.algorithm) as span:
            if self.algorithm == "andersen":
                self.result = andersen_solve(self.system, seed=seed)
            elif self.algorithm == "andersen-naive":
                self.result = andersen_solve_naive(self.system)
            else:
                self.result = steensgaard_solve(self.system)
            span.set(**self.result.stats.as_counters())
        obs.registry.absorb_solver_stats(self.result.stats)
        if self.cache is not None and key is not None:
            self.cache.put(key, CachedAnalysis(self.system, self.result))
        self._finish_stats(start)
        return self

    def _finish_stats(self, start: float) -> None:
        assert self.system is not None
        self.stats.analysis_seconds = _time.perf_counter() - start
        self.stats.instructions_total = module_index(self.module).instruction_count
        self.stats.instructions_analyzed = self.system.instructions_analyzed
        self.stats.constraints = (
            len(self.system.copies)
            + len(self.system.loads)
            + len(self.system.stores)
            + sum(len(v) for v in self.system.addr_of.values())
        )

    # -- queries used by later stages --------------------------------------

    def points_to(self, value) -> frozenset[AbstractObject]:
        self._require_run()
        return self.result.points_to(value)  # type: ignore[union-attr]

    def may_alias(self, a, b) -> bool:
        self._require_run()
        return self.result.may_alias(a, b)  # type: ignore[union-attr]

    def object_for_site(self, uid: int) -> AbstractObject | None:
        self._require_run()
        return self.system.objects.get(uid)  # type: ignore[union-attr]

    def _require_run(self) -> None:
        if self.result is None:
            raise RuntimeError("call run() before querying the analysis")
