"""Diagnosis reports: the pipeline's user-facing output.

A report names the bug class, the ordered target events (the root
cause, per the paper's definition: the execution order of target events
across threads), their source locations, the F1 evidence, and per-stage
statistics for the efficiency benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.statistics import ScoredPattern
from repro.ir.module import Module


@dataclass
class TargetEventReport:
    uid: int
    role: str  # R/W/L
    location: str  # "file.c:123" or "<uid N>"
    function: str
    thread_slot: int


@dataclass
class StageStats:
    """Per-stage instruction counts: the Figure 7 accuracy-contribution
    inputs (each stage narrows what a developer must look at)."""

    program_instructions: int = 0
    executed_instructions: int = 0  # after trace processing (step 2)
    alias_candidates: int = 0  # after hybrid points-to (step 4)
    rank1_candidates: int = 0  # after type-based ranking (step 5)
    patterns_generated: int = 0  # after bug pattern computation (step 6)
    patterns_top_f1: int = 0  # tied-at-top patterns after statistics (step 7)
    analysis_seconds: float = 0.0
    candidates_explored: int = 0

    def reductions(self) -> dict[str, float]:
        """Stage-over-stage reduction factors (>= 1.0)."""

        def ratio(a: int, b: int) -> float:
            return a / b if b else float(a) if a else 1.0

        return {
            "trace_processing": ratio(
                self.program_instructions, self.executed_instructions
            ),
            "points_to": ratio(self.executed_instructions, self.alias_candidates),
            "type_ranking": ratio(self.alias_candidates, self.rank1_candidates),
            "patterns": ratio(self.alias_candidates, self.patterns_generated),
            "statistics": ratio(self.patterns_generated, self.patterns_top_f1),
        }


@dataclass
class DiagnosisReport:
    bug_kind: str  # "order-violation" | "atomicity-violation" | "deadlock" | ...
    failing_uid: int
    root_cause: ScoredPattern | None
    ranked_patterns: list[ScoredPattern] = field(default_factory=list)
    target_events: list[TargetEventReport] = field(default_factory=list)
    stage_stats: StageStats = field(default_factory=StageStats)
    notes: list[str] = field(default_factory=list)
    # §7 fallback: when the coarse interleaving hypothesis does not hold
    # (no pattern correlates with failure — the trace could not order the
    # events), the likely-involved events are still reported, unordered.
    unordered_candidates: list[TargetEventReport] = field(default_factory=list)
    # graceful degradation: the collection deadline expired before the
    # wanted number of successful traces arrived; the diagnosis ran on
    # thinner evidence and says so rather than failing outright
    degraded: bool = False
    # observability: the human-readable span tree for this job, set when
    # the diagnosis ran with tracing enabled.  Timing-dependent, so it
    # must stay out of report digests (fleet vs. in-process comparison).
    flight_recorder: str | None = None
    # repro.validate outcome (ValidationOutcome.as_dict()): the forced
    # replay of the diagnosed order plus its inverse, stamping the
    # report "validated"/"refuted"/"inconclusive".  None until the
    # validation loop has run.
    validation: dict | None = None

    @property
    def validated(self) -> bool:
        return bool(self.validation) and self.validation.get("status") == "validated"

    @property
    def diagnosed(self) -> bool:
        return self.root_cause is not None

    @property
    def unambiguous(self) -> bool:
        """Exactly one pattern wins after tie-breaking.

        The paper reports never seeing equal-F1 ties that required manual
        resolution; our scorer additionally breaks F1 ties toward the
        simplest pattern, so ambiguity means two patterns share both the
        top F1 *and* the event count.
        """
        if not self.ranked_patterns:
            return False
        top = self.ranked_patterns[0]
        return (
            sum(
                1
                for p in self.ranked_patterns
                if p.f1 == top.f1
                and len(p.signature.events) == len(top.signature.events)
                and p.rank == top.rank
            )
            == 1
        )

    def ordered_target_uids(self) -> list[int]:
        return [e.uid for e in self.target_events]

    def render(self) -> str:
        lines = [
            f"=== Lazy Diagnosis report ===",
            f"bug kind:      {self.bug_kind}",
            f"failing instr: uid={self.failing_uid}",
        ]
        if self.root_cause is None:
            lines.append("root cause:    NOT DIAGNOSED")
            if self.unordered_candidates:
                lines.append(
                    "events likely involved (ordering could not be "
                    "established; coarse interleaving hypothesis may not "
                    "hold for this bug):"
                )
                for ev in self.unordered_candidates:
                    lines.append(
                        f"  - [{ev.role}] {ev.function} at {ev.location} "
                        f"(uid={ev.uid})"
                    )
        else:
            lines.append(f"root cause:    {self.root_cause.signature}")
            lines.append(
                f"evidence:      F1={self.root_cause.f1:.3f} "
                f"(P={self.root_cause.precision:.2f}, R={self.root_cause.recall:.2f})"
            )
            lines.append("target events (in diagnosed order):")
            for i, ev in enumerate(self.target_events, 1):
                lines.append(
                    f"  {i}. [{ev.role}] T{ev.thread_slot} {ev.function} "
                    f"at {ev.location} (uid={ev.uid})"
                )
        if len(self.ranked_patterns) > 1:
            lines.append("runner-up patterns:")
            for p in self.ranked_patterns[1:4]:
                lines.append(f"  - {p}")
        st = self.stage_stats
        lines.append(
            "stage funnel:  "
            f"{st.program_instructions} program -> "
            f"{st.executed_instructions} executed -> "
            f"{st.alias_candidates} aliasing -> "
            f"{st.rank1_candidates} rank-1 -> "
            f"{st.patterns_generated} patterns -> "
            f"{st.patterns_top_f1} top-F1"
        )
        lines.append(f"analysis time: {st.analysis_seconds * 1000:.1f} ms")
        if self.degraded:
            lines.append("evidence:      DEGRADED (collection deadline hit)")
        if self.validation:
            status = self.validation.get("status", "?")
            lines.append(f"validation:    {status.upper()}")
            for witness in self.validation.get("witnesses", []):
                lines.append(
                    f"  {witness.get('mode', '?'):7s} "
                    f"[{witness.get('directive', '?')}] -> "
                    f"{witness.get('outcome', '?')}"
                )
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.flight_recorder:
            lines.append(self.flight_recorder)
        return "\n".join(lines)


def describe_event(module: Module, uid: int, role: str, slot: int) -> TargetEventReport:
    try:
        instr = module.instruction(uid)
    except Exception:
        return TargetEventReport(uid, role, f"<uid {uid}>", "?", slot)
    loc = str(instr.loc) if instr.loc else f"<uid {uid}>"
    fn = instr.parent.function.name if instr.parent and instr.parent.function else "?"
    return TargetEventReport(uid, role, loc, fn, slot)
