"""Trace processing: steps 2 and 3 of Lazy Diagnosis (Figure 2).

Consumes a decoded trace snapshot and produces the two artifacts the
rest of the pipeline runs on:

* the **executed instruction set** — static uids that appear in any
  thread's decoded trace (step 2; an instruction executed many times
  counts once).  Hybrid points-to analysis restricts its scope to this
  set.
* the **partially-ordered dynamic instruction trace** (step 3) — every
  decoded dynamic instruction with its ``[t_lo, t_hi)`` interval.  Two
  dynamic instructions from different threads are ordered iff their
  intervals are disjoint; same-thread instructions are totally ordered
  by program order.  The timing granularity of the trace (the MTC
  period) is far coarser than instruction execution, which is exactly
  why a partial — not total — order is all the hardware can give us,
  and, per the coarse interleaving hypothesis, all that diagnosis needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.checkpoints import checkpoint
from repro.pt.decoder import DynamicInstruction, ThreadTrace


@dataclass
class ProcessedTrace:
    """The per-execution artifact every later pipeline stage consumes."""

    label: str  # e.g. "failure" or "success-3"
    failing: bool
    executed_uids: set[int] = field(default_factory=set)
    dynamic: list[DynamicInstruction] = field(default_factory=list)
    by_uid: dict[int, list[DynamicInstruction]] = field(default_factory=dict)
    threads: set[int] = field(default_factory=set)
    anchor: DynamicInstruction | None = None  # the failure / breakpoint hit
    anchors: list[DynamicInstruction] = field(default_factory=list)
    snapshot_time: int = 0
    max_timing_gap: int = 0

    def add_instance(self, inst: DynamicInstruction) -> None:
        self.dynamic.append(inst)
        self.by_uid.setdefault(inst.uid, []).append(inst)
        self.executed_uids.add(inst.uid)
        self.threads.add(inst.tid)

    def instances(self, uid: int) -> list[DynamicInstruction]:
        return self.by_uid.get(uid, [])

    def ordered_before(self, a: DynamicInstruction, b: DynamicInstruction) -> bool:
        """a definitely executed before b (partial order of §4.1)."""
        return a.before(b)

    def concurrent(self, a: DynamicInstruction, b: DynamicInstruction) -> bool:
        """Neither ordering is certain (overlapping intervals, two threads)."""
        return not a.before(b) and not b.before(a)

    def last_instance_before(
        self, uid: int, bound: DynamicInstruction
    ) -> DynamicInstruction | None:
        """Latest dynamic instance of ``uid`` ordered before ``bound``."""
        best: DynamicInstruction | None = None
        for d in self.instances(uid):
            if d.before(bound) and (best is None or best.before(d)):
                best = d
        return best


def process_snapshot(
    label: str,
    thread_traces: dict[int, ThreadTrace],
    failing: bool,
    anchor_uid: int | None = None,
    anchor_tid: int | None = None,
    anchor_time: int | None = None,
) -> ProcessedTrace:
    """Build a :class:`ProcessedTrace` from decoded per-thread traces.

    ``anchor_uid`` is the failure PC (for failing executions) or the
    breakpoint PC (for successful executions collected at the previous
    failure location, step 8).  The anchor instruction itself usually is
    not in the decoded stream — it is the stop position — so a precise
    dynamic instance is synthesized for it at ``anchor_time`` (the
    failure/snapshot timestamp the error tracker reports).
    """
    pt = ProcessedTrace(label=label, failing=failing)
    for tid, trace in thread_traces.items():
        if trace.desync:
            continue
        pt.threads.add(tid)
        pt.executed_uids |= trace.executed_uids
        pt.dynamic.extend(trace.instructions)
        pt.max_timing_gap = max(pt.max_timing_gap, trace.max_timing_gap())
        pt.snapshot_time = max(pt.snapshot_time, trace.end_time)
    for d in pt.dynamic:
        pt.by_uid.setdefault(d.uid, []).append(d)
    for instances in pt.by_uid.values():
        instances.sort(key=lambda d: (d.t_lo, d.seq))
    if anchor_uid is not None:
        t = anchor_time if anchor_time is not None else pt.snapshot_time
        tid = anchor_tid if anchor_tid is not None else _position_thread(
            thread_traces, anchor_uid
        )
        seq = 1 + max(
            (d.seq for d in pt.dynamic if d.tid == tid), default=-1
        )
        anchor = DynamicInstruction(anchor_uid, tid, seq, t, t)
        pt.anchor = anchor
        # add_instance registers the anchor's thread too — essential when
        # the anchoring thread's own trace was fully desynced and skipped
        # above, so the anchor is its only dynamic evidence.
        pt.add_instance(anchor)
        # Restore the per-uid (t_lo, seq) order: the anchor's timestamp
        # can precede decoded instances of the same uid, and instances()
        # consumers (attach_anchor's "last instance" pick) rely on it.
        pt.by_uid[anchor_uid].sort(key=lambda d: (d.t_lo, d.seq))
    checkpoint("trace_processing.process_snapshot", trace=pt)
    return pt


def _position_thread(thread_traces: dict[int, ThreadTrace], uid: int) -> int:
    for tid, trace in thread_traces.items():
        if trace.stop_uid == uid:
            return tid
    return min(thread_traces) if thread_traces else 0


def attach_anchor(
    trace: ProcessedTrace,
    uid: int,
    tid: int | None,
    time: int | None,
    prefer_decoded: bool = True,
) -> DynamicInstruction:
    """Resolve an anchor instruction to a dynamic instance.

    If the anchor was decoded in the anchoring thread (e.g. a backing
    load recovered by backward data-flow — it *did* execute before the
    failure), its last decoded instance is the anchor.  Otherwise a
    precise instance is synthesized at ``time`` (the failure / snapshot
    timestamp from the error tracker), which covers the failing
    instruction itself: the decoder stops right before it.
    """
    if tid is None:
        tid = min(trace.threads) if trace.threads else 0
    if prefer_decoded:
        decoded = [d for d in trace.instances(uid) if d.tid == tid]
        if decoded:
            anchor = decoded[-1]
            trace.anchors.append(anchor)
            if trace.anchor is None:
                trace.anchor = anchor
            return anchor
    t = time if time is not None else trace.snapshot_time
    seq = 1 + max((d.seq for d in trace.dynamic if d.tid == tid), default=-1)
    anchor = DynamicInstruction(uid, tid, seq, t, t)
    trace.add_instance(anchor)
    trace.by_uid[uid].sort(key=lambda d: (d.t_lo, d.seq))
    trace.anchors.append(anchor)
    if trace.anchor is None:
        trace.anchor = anchor
    return anchor
