"""IR values: constants, globals, function arguments.

Anything an instruction can read is a :class:`Value`.  Instructions that
produce results are themselves values (defined in ``instructions.py``),
mirroring LLVM's def-use model.  Cross-basic-block dataflow in this IR
goes through memory (``alloca`` slots), matching the un-optimized code
clang emits, so there are no phi nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import IRTypeError
from repro.ir.types import IntType, PointerType, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.ir.function import Function


class Value:
    """Base class of everything that can appear as an operand."""

    def __init__(self, ty: Type, name: str = ""):
        self.ty = ty
        self.name = name

    def short(self) -> str:
        """Render this value the way an operand position prints it."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.short()}: {self.ty}>"


class Constant(Value):
    """An integer or float literal."""

    def __init__(self, ty: Type, value: int | float):
        super().__init__(ty)
        if isinstance(ty, IntType) and not isinstance(value, int):
            raise IRTypeError(f"integer constant with non-int value {value!r}")
        self.value = value

    def short(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.ty == self.ty
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("const", self.ty, self.value))


class NullPointer(Value):
    """The null pointer constant for a given pointer type."""

    def __init__(self, ty: PointerType):
        if not isinstance(ty, PointerType):
            raise IRTypeError(f"null must have a pointer type, got {ty}")
        super().__init__(ty)

    def short(self) -> str:
        return "null"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullPointer) and other.ty == self.ty

    def __hash__(self) -> int:
        return hash(("null", self.ty))


class GlobalVariable(Value):
    """A module-level variable.

    Like in LLVM, the *value* of a global is the **address** of its
    storage, so ``self.ty`` is a pointer to ``value_type``.  Globals are
    zero/null-initialized unless ``initializer`` is given.
    """

    def __init__(self, name: str, value_type: Type, initializer: Value | None = None):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer
        self.uid: int = -1  # assigned by Module.finalize()

    def short(self) -> str:
        return f"@{self.name}"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, name: str, ty: Type, function: "Function | None" = None, index: int = -1):
        super().__init__(ty, name)
        self.function = function
        self.index = index


class FunctionRef(Value):
    """A function used as a first-class value (for indirect calls/spawn).

    The ``Function`` object itself is not a Value to keep the class
    hierarchy simple; taking a function's address yields a FunctionRef.
    """

    def __init__(self, function: "Function"):
        super().__init__(function.type, function.name)
        self.function = function

    def short(self) -> str:
        return f"@{self.function.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FunctionRef) and other.function is self.function

    def __hash__(self) -> int:
        return hash(("fnref", id(self.function)))
