"""Fluent IR construction API.

``IRBuilder`` keeps a current insertion point (function + block) and
offers one method per instruction, plus structured control-flow helpers
(``if_then``, ``if_else``, ``while_``, ``for_range``) so corpus programs
read like the C they model instead of raw CFG plumbing.

Example::

    m = Module("demo")
    b = IRBuilder(m)
    b.begin_function("main", VOID, [])
    i = b.alloca_slot(I64, "i")
    with b.for_range(i, 0, 10):
        b.delay(b.i64(100))
    b.ret()
    m.finalize()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Assert,
    BarrierInit,
    BarrierWait,
    BinOp,
    Br,
    Call,
    Cast,
    Cmp,
    CondBr,
    CondInit,
    CondNotify,
    CondWait,
    Delay,
    FieldAddr,
    Free,
    IndexAddr,
    Instruction,
    Join,
    Load,
    Lock,
    LockInit,
    Malloc,
    Ret,
    RwInit,
    RwRdLock,
    RwUnlock,
    RwWrLock,
    SemInit,
    SemPost,
    SemWait,
    SourceLoc,
    Spawn,
    Store,
    Unlock,
)
from repro.ir.module import Module
from repro.ir.types import F64, I1, I64, FloatType, IntType, PointerType, Type
from repro.ir.values import Constant, FunctionRef, NullPointer, Value


class IRBuilder:
    def __init__(self, module: Module):
        self.module = module
        self.function: Function | None = None
        self.block: BasicBlock | None = None
        self._loc: SourceLoc | None = None
        self._fresh = 0

    # -- positioning -----------------------------------------------------

    def begin_function(
        self, name: str, ret: Type, params: Sequence[tuple[str, Type]]
    ) -> Function:
        fn = self.module.add_function(name, ret, params)
        self.function = fn
        self.block = fn.add_block("entry")
        return fn

    def add_block(self, name: str | None = None) -> BasicBlock:
        fn = self._require_function()
        if name is None:
            name = self._fresh_name("bb")
        return fn.add_block(name)

    def position(self, block: BasicBlock) -> None:
        self.block = block
        self.function = block.function

    def set_location(self, file: str, line: int) -> None:
        """Attach (file, line) to subsequently emitted instructions."""
        self._loc = SourceLoc(file, line)

    def clear_location(self) -> None:
        self._loc = None

    @contextmanager
    def at_location(self, file: str, line: int) -> Iterator[None]:
        prev = self._loc
        self._loc = SourceLoc(file, line)
        try:
            yield
        finally:
            self._loc = prev

    def param(self, name: str) -> Value:
        return self._require_function().param(name)

    # -- constants --------------------------------------------------------

    def const(self, ty: Type, value: int | float) -> Constant:
        return Constant(ty, value)

    def i64(self, value: int) -> Constant:
        return Constant(I64, value)

    def i1(self, value: bool) -> Constant:
        return Constant(I1, 1 if value else 0)

    def f64(self, value: float) -> Constant:
        return Constant(F64, float(value))

    def null(self, pointee: Type) -> NullPointer:
        return NullPointer(PointerType(pointee))

    def funcref(self, name: str) -> FunctionRef:
        return FunctionRef(self.module.function(name))

    # -- instruction emitters ----------------------------------------------

    def alloca(self, ty: Type, name: str = "") -> Alloca:
        return self._emit(Alloca(ty, name or self._fresh_name("slot")))

    # alias that reads better at call sites building locals
    alloca_slot = alloca

    def malloc(self, ty: Type, count: Value | None = None, name: str = "") -> Malloc:
        return self._emit(Malloc(ty, count, name or self._fresh_name("obj")))

    def free(self, pointer: Value) -> Free:
        return self._emit(Free(pointer))

    def load(self, pointer: Value, name: str = "") -> Load:
        return self._emit(Load(pointer, name or self._fresh_name("v")))

    def store(self, value: Value | int, pointer: Value) -> Store:
        value = self._coerce(value, pointer)
        return self._emit(Store(value, pointer))

    def fieldaddr(self, pointer: Value, field: str, name: str = "") -> FieldAddr:
        return self._emit(FieldAddr(pointer, field, name or self._fresh_name("fld")))

    def indexaddr(self, pointer: Value, index: Value | int, name: str = "") -> IndexAddr:
        if isinstance(index, int):
            index = self.i64(index)
        return self._emit(IndexAddr(pointer, index, name or self._fresh_name("elt")))

    def load_field(self, pointer: Value, field: str, name: str = "") -> Load:
        """fieldaddr followed by load: ``p->field``."""
        return self.load(self.fieldaddr(pointer, field), name)

    def store_field(self, value: Value | int, pointer: Value, field: str) -> Store:
        """fieldaddr followed by store: ``p->field = value``."""
        addr = self.fieldaddr(pointer, field)
        return self.store(value, addr)

    def binop(self, op: str, lhs: Value, rhs: Value | int, name: str = "") -> BinOp:
        if isinstance(rhs, int):
            rhs = Constant(lhs.ty, rhs)
        return self._emit(BinOp(op, lhs, rhs, name or self._fresh_name("t")))

    def add(self, lhs: Value, rhs: Value | int, name: str = "") -> BinOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value | int, name: str = "") -> BinOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value | int, name: str = "") -> BinOp:
        return self.binop("mul", lhs, rhs, name)

    def mod(self, lhs: Value, rhs: Value | int, name: str = "") -> BinOp:
        return self.binop("mod", lhs, rhs, name)

    def cmp(self, op: str, lhs: Value, rhs: Value | int, name: str = "") -> Cmp:
        if isinstance(rhs, int):
            rhs = Constant(lhs.ty, rhs)
        return self._emit(Cmp(op, lhs, rhs, name or self._fresh_name("c")))

    def cast(self, value: Value, to_type: Type, name: str = "") -> Cast:
        return self._emit(Cast(value, to_type, name or self._fresh_name("cast")))

    def is_null(self, pointer: Value, name: str = "") -> Cmp:
        as_int = self.cast(pointer, I64)
        return self.cmp("eq", as_int, 0, name)

    def br(self, target: BasicBlock) -> Br:
        return self._emit(Br(target))

    def cbr(self, cond: Value, then_block: BasicBlock, else_block: BasicBlock) -> CondBr:
        return self._emit(CondBr(cond, then_block, else_block))

    def ret(self, value: Value | None = None) -> Ret:
        return self._emit(Ret(value))

    def call(self, callee: str | Value, args: Sequence[Value] = (), name: str = "") -> Call:
        if isinstance(callee, str):
            callee = self.funcref(callee)
        return self._emit(Call(callee, list(args), name or self._fresh_name("r")))

    def lock_init(self, pointer: Value) -> LockInit:
        return self._emit(LockInit(pointer))

    def lock(self, pointer: Value) -> Lock:
        return self._emit(Lock(pointer))

    def unlock(self, pointer: Value) -> Unlock:
        return self._emit(Unlock(pointer))

    def cond_init(self, pointer: Value) -> CondInit:
        return self._emit(CondInit(pointer))

    def cond_wait(self, pointer: Value) -> CondWait:
        return self._emit(CondWait(pointer))

    def cond_notify(self, pointer: Value) -> CondNotify:
        return self._emit(CondNotify(pointer))

    def rw_init(self, pointer: Value) -> RwInit:
        return self._emit(RwInit(pointer))

    def rw_rdlock(self, pointer: Value) -> RwRdLock:
        return self._emit(RwRdLock(pointer))

    def rw_wrlock(self, pointer: Value) -> RwWrLock:
        return self._emit(RwWrLock(pointer))

    def rw_unlock(self, pointer: Value) -> RwUnlock:
        return self._emit(RwUnlock(pointer))

    def sem_init(self, pointer: Value, count: Value | int) -> SemInit:
        if isinstance(count, int):
            count = self.i64(count)
        return self._emit(SemInit(pointer, count))

    def sem_wait(self, pointer: Value) -> SemWait:
        return self._emit(SemWait(pointer))

    def sem_post(self, pointer: Value) -> SemPost:
        return self._emit(SemPost(pointer))

    def barrier_init(self, pointer: Value, parties: Value | int) -> BarrierInit:
        if isinstance(parties, int):
            parties = self.i64(parties)
        return self._emit(BarrierInit(pointer, parties))

    def barrier_wait(self, pointer: Value) -> BarrierWait:
        return self._emit(BarrierWait(pointer))

    def spawn(self, callee: str | Value, args: Sequence[Value] = (), name: str = "") -> Spawn:
        if isinstance(callee, str):
            callee = self.funcref(callee)
        return self._emit(Spawn(callee, list(args), name or self._fresh_name("tid")))

    def join(self, handle: Value) -> Join:
        return self._emit(Join(handle))

    def delay(self, duration: Value | int) -> Delay:
        if isinstance(duration, int):
            duration = self.i64(duration)
        return self._emit(Delay(duration))

    def assert_(self, cond: Value, message: str = "assertion failed") -> Assert:
        return self._emit(Assert(cond, message))

    # -- structured control flow -------------------------------------------

    @contextmanager
    def if_then(self, cond: Value) -> Iterator[None]:
        """``if (cond) { body }``; positions at the continuation after."""
        then_block = self.add_block(self._fresh_name("then"))
        cont_block = self.add_block(self._fresh_name("endif"))
        self.cbr(cond, then_block, cont_block)
        self.position(then_block)
        yield
        if not self._current().is_terminated:
            self.br(cont_block)
        self.position(cont_block)

    @contextmanager
    def if_else(self, cond: Value) -> Iterator["ElseArm"]:
        """``if (cond) { then-body } else { else-body }``.

        Usage::

            with b.if_else(cond) as otherwise:
                ...then body...
                with otherwise:
                    ...else body...
        """
        then_block = self.add_block(self._fresh_name("then"))
        else_block = self.add_block(self._fresh_name("else"))
        cont_block = self.add_block(self._fresh_name("endif"))
        self.cbr(cond, then_block, else_block)
        self.position(then_block)
        arm = ElseArm(self, else_block, cont_block)
        yield arm
        if not arm.entered:
            raise IRError("if_else used without entering the else arm")
        self.position(cont_block)

    @contextmanager
    def while_(self, cond_builder) -> Iterator[None]:
        """``while (cond) { body }``; ``cond_builder()`` runs in the header."""
        header = self.add_block(self._fresh_name("while"))
        body = self.add_block(self._fresh_name("body"))
        exit_block = self.add_block(self._fresh_name("endwhile"))
        self.br(header)
        self.position(header)
        cond = cond_builder()
        self.cbr(cond, body, exit_block)
        self.position(body)
        yield
        if not self._current().is_terminated:
            self.br(header)
        self.position(exit_block)

    @contextmanager
    def for_range(
        self, slot: Value, start: Value | int, stop: Value | int
    ) -> Iterator[Value]:
        """``for (slot = start; slot < stop; slot++) { body }``.

        ``slot`` must be a ``ptr<iN>`` (usually an alloca); yields the
        loaded induction value for use in the body.
        """
        elem = slot.ty.pointee  # type: ignore[attr-defined]
        if isinstance(start, int):
            start = Constant(elem, start)
        if isinstance(stop, int):
            stop = Constant(elem, stop)
        stop_slot = self.alloca(elem, self._fresh_name("stop"))
        self.store(stop, stop_slot)
        self.store(start, slot)
        header = self.add_block(self._fresh_name("for"))
        body = self.add_block(self._fresh_name("body"))
        exit_block = self.add_block(self._fresh_name("endfor"))
        self.br(header)
        self.position(header)
        idx = self.load(slot)
        bound = self.load(stop_slot)
        self.cbr(self.cmp("lt", idx, bound), body, exit_block)
        self.position(body)
        yield self.load(slot)
        if not self._current().is_terminated:
            cur = self.load(slot)
            self.store(self.add(cur, 1), slot)
            self.br(header)
        self.position(exit_block)

    # -- internals -----------------------------------------------------------

    def _emit(self, instr: Instruction) -> Instruction:
        block = self._current()
        block.append(instr)
        if self._loc is not None:
            instr.loc = self._loc
        return instr

    def _current(self) -> BasicBlock:
        if self.block is None:
            raise IRError("builder has no insertion point; call begin_function")
        return self.block

    def _require_function(self) -> Function:
        if self.function is None:
            raise IRError("builder has no current function")
        return self.function

    def _coerce(self, value: Value | int | float, pointer: Value) -> Value:
        if isinstance(value, Value):
            return value
        pointee = pointer.ty.pointee  # type: ignore[attr-defined]
        if isinstance(pointee, IntType) and isinstance(value, int):
            return Constant(pointee, value)
        if isinstance(pointee, FloatType):
            return Constant(pointee, float(value))
        raise IRError(f"cannot coerce literal {value!r} for store to {pointer.ty}")

    def _fresh_name(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"


class ElseArm:
    """Context manager for the else branch inside ``IRBuilder.if_else``."""

    def __init__(self, builder: IRBuilder, else_block: BasicBlock, cont_block: BasicBlock):
        self._builder = builder
        self._else_block = else_block
        self._cont_block = cont_block
        self.entered = False

    def __enter__(self) -> None:
        b = self._builder
        if not b._current().is_terminated:
            b.br(self._cont_block)
        b.position(self._else_block)
        self.entered = True

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        b = self._builder
        if not b._current().is_terminated:
            b.br(self._cont_block)
