"""Module verifier: structural invariants checked before finalization.

Checks (each produces a :class:`repro.errors.VerifierError` naming the
offending function/block):

* every block ends in exactly one terminator, which is its last
  instruction;
* branch targets belong to the same function;
* instruction operands that are themselves instructions belong to the
  same function and their definition dominates the use (same-block uses
  must be defined earlier; cross-block uses require the defining block
  to dominate the using block — there are no phis, so values that merge
  across paths must go through allocas);
* direct calls/spawns reference functions that exist in the module;
* opaque structs are never allocated.
"""

from __future__ import annotations

from repro.errors import VerifierError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    Br,
    Call,
    CondBr,
    Instruction,
    Malloc,
    Ret,
    Spawn,
)
from repro.ir.module import Module
from repro.ir.types import StructType
from repro.ir.values import Argument, FunctionRef, GlobalVariable


def verify_module(module: Module) -> None:
    for fn in module.functions.values():
        _verify_function(module, fn)


def _verify_function(module: Module, fn: Function) -> None:
    if not fn.blocks:
        raise VerifierError(f"function {fn.name} has no blocks")
    from repro.ir.cfg import dominators

    block_set = set(fn.blocks)
    # Terminator checks must pass before dominator analysis can run.
    for block in fn.blocks:
        if not block.instructions:
            raise VerifierError(f"empty block in {block.label()}")
        if not block.instructions[-1].is_terminator:
            raise VerifierError(f"block does not end in a terminator in {block.label()}")
    dom = dominators(fn)
    for block in fn.blocks:
        _verify_block(module, fn, block, block_set, dom)


def _verify_block(
    module: Module,
    fn: Function,
    block: BasicBlock,
    block_set: set[BasicBlock],
    dom: dict[BasicBlock, set[BasicBlock]],
) -> None:
    where = f"in {block.label()}"
    defined: set[Instruction] = set()
    for i, instr in enumerate(block.instructions):
        if instr.is_terminator and i != len(block.instructions) - 1:
            raise VerifierError(f"terminator {instr.opcode} not at block end {where}")
        _verify_operands(module, fn, block, instr, defined, dom)
        _verify_targets(fn, block, instr, block_set)
        _verify_allocation(instr, where)
        defined.add(instr)


def _verify_operands(
    module: Module,
    fn: Function,
    block: BasicBlock,
    instr: Instruction,
    defined: set[Instruction],
    dom: dict[BasicBlock, set[BasicBlock]],
) -> None:
    where = f"{instr.opcode} in {block.label()}"
    for op in instr.operands:
        if isinstance(op, Instruction):
            def_block = op.parent
            if def_block is None or def_block.function is not fn:
                raise VerifierError(
                    f"operand {op.short()} of {where} belongs to another function"
                )
            if def_block is block:
                if op not in defined:
                    raise VerifierError(
                        f"use of {op.short()} before definition in {where}"
                    )
            elif block in dom and def_block not in dom[block]:
                raise VerifierError(
                    f"operand {op.short()} of {where} does not dominate its use; "
                    f"route merging dataflow through an alloca"
                )
        elif isinstance(op, Argument):
            if op.function is not None and op.function is not fn:
                raise VerifierError(
                    f"argument {op.short()} of another function used in {where}"
                )
        elif isinstance(op, GlobalVariable):
            if module.globals.get(op.name) is not op:
                raise VerifierError(f"foreign global {op.short()} used in {where}")
        elif isinstance(op, FunctionRef):
            if module.functions.get(op.function.name) is not op.function:
                raise VerifierError(f"foreign function {op.short()} used in {where}")


def _verify_targets(
    fn: Function, block: BasicBlock, instr: Instruction, block_set: set[BasicBlock]
) -> None:
    where = f"in {block.label()}"
    if isinstance(instr, Br):
        targets = [instr.target]
    elif isinstance(instr, CondBr):
        targets = [instr.then_block, instr.else_block]
    else:
        return
    for t in targets:
        if t not in block_set:
            raise VerifierError(
                f"branch to block {t.name!r} of another function {where}"
            )


def _verify_allocation(instr: Instruction, where: str) -> None:
    if isinstance(instr, (Alloca, Malloc)):
        ty = instr.allocated_type
        if isinstance(ty, StructType) and ty.is_opaque:
            raise VerifierError(f"allocation of opaque struct {ty.name} {where}")
    if isinstance(instr, Ret):
        fn = instr.parent.function if instr.parent else None
        if fn is not None:
            want = fn.return_type
            got = instr.value.ty if instr.value is not None else None
            if instr.value is None:
                from repro.ir.types import VoidType

                if not isinstance(want, VoidType):
                    raise VerifierError(f"ret without value in non-void {fn.name}")
            elif got != want:
                raise VerifierError(
                    f"ret type mismatch in {fn.name}: {got} vs declared {want}"
                )
    if isinstance(instr, (Call, Spawn)) and isinstance(instr.callee, FunctionRef):
        # arity/types were checked at construction; nothing more needed here
        pass
